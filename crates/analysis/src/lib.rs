//! Analytical companions to the epidemic protocols — the closed forms,
//! differential equations and recurrences of Demers et al. (PODC 1987).
//!
//! * [`ode`] — the rumor-spreading ODE system of §1.4 and its closed-form
//!   solution `i(s)`;
//! * [`residue`] — the residue laws: `s = e^{-(k+1)(1-s)}`, `s = e^{-m}`
//!   and the connection-limited variants;
//! * [`recurrence`] — the §1.3 anti-entropy recurrences (`p² ` for pull,
//!   `p·(1-1/n)^{n(1-p)}` for push) and the `log₂n + ln n` epidemic time;
//! * [`scaling`] — the §3 link-traffic scaling `T(n)` for `d^-a` spatial
//!   distributions on a line, both asymptotic class and exact expectation.
//!
//! These are used by the benchmark harness to print the paper's predicted
//! curves next to the simulated ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ode;
pub mod recurrence;
pub mod residue;
pub mod scaling;

pub use ode::RumorOde;
pub use recurrence::{pull_cycles_until, push_cycles_until, push_epidemic_time};
pub use residue::{
    pull_connection_limited_residue, push_connection_limited_residue, remail_worst_case,
    residue_for_counter, residue_from_traffic,
};
pub use scaling::{line_link_traffic, mean_line_traffic, traffic_class, TrafficClass};
