//! The rumor-spreading differential equations (paper §1.4).
//!
//! With `s`, `i`, `r` the susceptible/infective/removed fractions
//! (`s + i + r = 1`) and the feedback-coin removal rule, §1.4 models rumor
//! spreading as
//!
//! ```text
//! ds/dt = -s·i
//! di/dt = +s·i - (1/k)(1-s)·i
//! ```
//!
//! Eliminating `t` gives the closed form
//! `i(s) = ((k+1)/k)(1-s) + (1/k)·ln s`, whose zero is the epidemic's
//! final residue.

/// The §1.4 rumor ODE system for loss parameter `k`.
///
/// # Example
///
/// ```
/// use epidemic_analysis::RumorOde;
/// let ode = RumorOde::new(1);
/// // §1.4: "at k = 1 this formula suggests that 20% will miss the rumor".
/// let s_final = ode.final_residue();
/// assert!((s_final - 0.20).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RumorOde {
    k: u32,
}

/// One point on an integrated trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OdePoint {
    /// Time (in units where one contact per individual per unit time).
    pub t: f64,
    /// Susceptible fraction.
    pub s: f64,
    /// Infective fraction.
    pub i: f64,
}

impl RumorOde {
    /// Creates the system for a given `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "k must be positive");
        RumorOde { k }
    }

    /// The closed-form phase curve `i(s)` with the initial condition
    /// `i(1-ε) = ε`, `ε → 0`.
    pub fn i_of_s(&self, s: f64) -> f64 {
        let k = f64::from(self.k);
        (k + 1.0) / k * (1.0 - s) + s.ln() / k
    }

    /// The residue: the zero of [`RumorOde::i_of_s`] in `(0, 1)`, i.e. the
    /// solution of `s = e^{-(k+1)(1-s)}` (§1.4). Solved by bisection.
    pub fn final_residue(&self) -> f64 {
        // i(s) > 0 on (s*, 1) and < 0 on (0, s*): bisect on i's sign.
        let mut lo = 1e-12; // i(lo) < 0
        let mut hi = 1.0 - 1e-12; // i(hi) ~ 0+ from inside the epidemic
        debug_assert!(self.i_of_s(lo) < 0.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.i_of_s(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Integrates the system with classic RK4 from `(s, i) = (1-eps, eps)`
    /// until the infective fraction falls below `eps/10` (or `t_max`),
    /// returning the sampled trajectory.
    pub fn integrate(&self, eps: f64, dt: f64, t_max: f64) -> Vec<OdePoint> {
        assert!(eps > 0.0 && eps < 1.0 && dt > 0.0);
        let k = f64::from(self.k);
        let deriv = |s: f64, i: f64| -> (f64, f64) {
            let ds = -s * i;
            let di = s * i - (1.0 - s) * i / k;
            (ds, di)
        };
        let mut s = 1.0 - eps;
        let mut i = eps;
        let mut t = 0.0;
        let mut out = vec![OdePoint { t, s, i }];
        while i > eps / 10.0 && t < t_max {
            let (k1s, k1i) = deriv(s, i);
            let (k2s, k2i) = deriv(s + 0.5 * dt * k1s, i + 0.5 * dt * k1i);
            let (k3s, k3i) = deriv(s + 0.5 * dt * k2s, i + 0.5 * dt * k2i);
            let (k4s, k4i) = deriv(s + dt * k3s, i + dt * k3i);
            s += dt / 6.0 * (k1s + 2.0 * k2s + 2.0 * k3s + k4s);
            i += dt / 6.0 * (k1i + 2.0 * k2i + 2.0 * k3i + k4i);
            i = i.max(0.0);
            s = s.clamp(0.0, 1.0);
            t += dt;
            out.push(OdePoint { t, s, i });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_residues() {
        // §1.4: 20% at k = 1, 6% at k = 2.
        assert!((RumorOde::new(1).final_residue() - 0.2032).abs() < 1e-3);
        assert!((RumorOde::new(2).final_residue() - 0.0595).abs() < 1e-3);
    }

    #[test]
    fn residue_decreases_exponentially_in_k() {
        let r: Vec<f64> = (1..=6).map(|k| RumorOde::new(k).final_residue()).collect();
        for w in r.windows(2) {
            assert!(w[1] < w[0] * 0.5, "{w:?}");
        }
    }

    #[test]
    fn residue_satisfies_fixed_point_equation() {
        for k in 1..=8 {
            let s = RumorOde::new(k).final_residue();
            let rhs = (-(f64::from(k) + 1.0) * (1.0 - s)).exp();
            assert!((s - rhs).abs() < 1e-9, "k={k}: {s} vs {rhs}");
        }
    }

    #[test]
    fn integration_matches_closed_form_residue() {
        for k in 1..=4 {
            let ode = RumorOde::new(k);
            let traj = ode.integrate(1e-6, 0.01, 500.0);
            let s_end = traj.last().unwrap().s;
            let s_closed = ode.final_residue();
            assert!(
                (s_end - s_closed).abs() < 0.01,
                "k={k}: integrated {s_end} vs closed {s_closed}"
            );
        }
    }

    #[test]
    fn phase_curve_respects_initial_condition() {
        let ode = RumorOde::new(3);
        // i(1) = 0 by construction (epsilon -> 0 limit).
        assert!(ode.i_of_s(1.0).abs() < 1e-12);
        // The curve has a positive interior maximum.
        assert!(ode.i_of_s(0.5) > 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        RumorOde::new(0);
    }
}
