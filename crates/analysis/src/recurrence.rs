//! Anti-entropy convergence recurrences (paper §1.3).
//!
//! Once only a few sites remain susceptible, §1.3 models the per-cycle
//! susceptible probability `p_i` as
//!
//! * **pull:** `p_{i+1} = p_i²` — doubly exponential convergence;
//! * **push:** `p_{i+1} = p_i (1 - 1/n)^{n(1-p_i)}` ≈ `p_i e^{-1}` for
//!   small `p_i` — merely exponential.
//!
//! This asymmetry is why anti-entropy used as a backup should run pull or
//! push-pull. For a full epidemic from a single source, push infects the
//! population in expected time `log₂n + ln n + O(1)` \[Pi].

/// One step of the pull recurrence: `p² `.
pub fn pull_step(p: f64) -> f64 {
    p * p
}

/// One step of the push recurrence: `p (1-1/n)^{n(1-p)}`.
pub fn push_step(p: f64, n: f64) -> f64 {
    p * (1.0 - 1.0 / n).powf(n * (1.0 - p))
}

/// Number of pull cycles for the susceptible probability to fall from `p0`
/// to at most `target`.
///
/// # Panics
///
/// Panics unless `0 < target < p0 < 1`.
pub fn pull_cycles_until(p0: f64, target: f64) -> u32 {
    assert!(0.0 < target && target < p0 && p0 < 1.0);
    let mut p = p0;
    let mut cycles = 0;
    while p > target {
        p = pull_step(p);
        cycles += 1;
    }
    cycles
}

/// Number of push cycles for the susceptible probability to fall from `p0`
/// to at most `target`, with population size `n`.
///
/// # Panics
///
/// Panics unless `0 < target < p0 < 1` and `n > 1`.
pub fn push_cycles_until(p0: f64, target: f64, n: f64) -> u32 {
    assert!(0.0 < target && target < p0 && p0 < 1.0 && n > 1.0);
    let mut p = p0;
    let mut cycles = 0;
    while p > target {
        p = push_step(p, n);
        cycles += 1;
        assert!(cycles < 100_000, "push recurrence failed to converge");
    }
    cycles
}

/// The expected time for a push epidemic from one infected site to cover
/// the population: `log₂ n + ln n` (§1.3, citing Pittel).
pub fn push_epidemic_time(n: f64) -> f64 {
    n.log2() + n.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pull_is_doubly_exponential() {
        // From p = 0.5 (binary-exact): 0.25, 0.0625, ~3.9e-3, ~1.5e-5,
        // ~2.3e-10 — five cycles to fall below 1e-9.
        assert_eq!(pull_cycles_until(0.5, 1e-9), 5);
        // Doubling the exponent costs only one more cycle.
        assert_eq!(pull_cycles_until(0.5, 1e-18), 6);
    }

    #[test]
    fn push_is_singly_exponential() {
        // For small p, each push cycle multiplies p by about e^-1, so
        // reaching 1e-8 from 0.1 takes ≈ ln(1e7) ≈ 16 cycles.
        let cycles = push_cycles_until(0.1, 1e-8, 1000.0);
        assert!((14..=20).contains(&cycles), "{cycles}");
    }

    #[test]
    fn pull_beats_push_from_the_same_start() {
        let pull = pull_cycles_until(0.2, 1e-9);
        let push = push_cycles_until(0.2, 1e-9, 1000.0);
        assert!(pull < push, "pull {pull} vs push {push}");
    }

    #[test]
    fn push_step_approaches_e_inverse_for_small_p() {
        let p = 1e-6;
        let ratio = push_step(p, 10_000.0) / p;
        assert!((ratio - (-1.0f64).exp()).abs() < 1e-3, "{ratio}");
    }

    #[test]
    fn epidemic_time_matches_known_values() {
        // n = 1000: log2(1000) + ln(1000) ≈ 9.97 + 6.91 ≈ 16.87 — compare
        // t_last ≈ 16.8–17.7 in Table 1.
        let t = push_epidemic_time(1000.0);
        assert!((t - 16.87).abs() < 0.05, "{t}");
    }

    #[test]
    fn epidemic_time_grows_logarithmically() {
        let t1 = push_epidemic_time(1_000.0);
        let t2 = push_epidemic_time(1_000_000.0);
        assert!(t2 < 2.1 * t1, "doubling exponents only doubles time");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_arguments() {
        pull_cycles_until(0.5, 0.9);
    }
}
