//! Residue laws (paper §1.4).
//!
//! All push variants share the fundamental trade-off `s = e^{-m}` between
//! residue `s` and per-site traffic `m`; §1.4 derives two refinements for
//! connection-limited operation:
//!
//! * push with connection limit 1: `s = e^{-λm}` with `λ = 1/(1-e^{-1})` —
//!   push gets *better*;
//! * pull with connection-failure probability `δ`: `s = δ^m = e^{-λm}` with
//!   `λ = -ln δ` — pull gets *worse*.

/// The residue predicted by the §1.4 counter/coin analysis: the solution of
/// `s = e^{-(k+1)(1-s)}` in `(0, 1)`.
///
/// # Example
///
/// ```
/// use epidemic_analysis::residue_for_counter;
/// assert!((residue_for_counter(1) - 0.20).abs() < 0.01); // "20% will miss"
/// assert!((residue_for_counter(2) - 0.06).abs() < 0.01); // "only 6%"
/// ```
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn residue_for_counter(k: u32) -> f64 {
    crate::ode::RumorOde::new(k).final_residue()
}

/// The fundamental push relationship `s = e^{-m}` (§1.4): the chance a
/// site misses all `n·m` uniformly addressed updates.
pub fn residue_from_traffic(m: f64) -> f64 {
    (-m).exp()
}

/// Push with connection limit 1 (§1.4): `s = e^{-λm}`, `λ = 1/(1-e^{-1})`.
/// Rejected connections shorten useless contacts, so push *improves*.
pub fn push_connection_limited_residue(m: f64) -> f64 {
    let lambda = 1.0 / (1.0 - (-1.0f64).exp());
    (-lambda * m).exp()
}

/// Pull with per-cycle connection-failure probability `delta` (§1.4):
/// `s = δ^m`. Pull's advantage collapses once connections can fail.
///
/// # Panics
///
/// Panics unless `0 < delta < 1`.
pub fn pull_connection_limited_residue(m: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    delta.powf(m)
}

/// The probability that a site has exactly `j` inbound connections in a
/// cycle under uniform random selection: `e^{-1}/j!` (§1.4's Poisson(1)
/// approximation, used to argue that modest connection limits suffice).
pub fn inbound_connection_probability(j: u32) -> f64 {
    let mut fact = 1.0;
    for x in 1..=j {
        fact *= f64::from(x);
    }
    (-1.0f64).exp() / fact
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_residue_law_is_monotone() {
        assert!(residue_from_traffic(1.0) > residue_from_traffic(2.0));
        assert!((residue_from_traffic(0.0) - 1.0).abs() < 1e-12);
        // Table 1 cross-check: k=5 has m = 6.7 and s = 0.0012; e^-6.7 ≈ 0.0012.
        assert!((residue_from_traffic(6.7) - 0.0012).abs() < 3e-4);
    }

    #[test]
    fn connection_limited_push_beats_unlimited() {
        for m in [1.0, 2.0, 4.0] {
            assert!(push_connection_limited_residue(m) < residue_from_traffic(m));
        }
    }

    #[test]
    fn lambda_matches_paper_value() {
        // λ = 1/(1-e^-1) ≈ 1.582.
        let s = push_connection_limited_residue(1.0);
        assert!((s.ln() + 1.0 / (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn pull_with_failures_decays_like_delta_power() {
        let s = pull_connection_limited_residue(3.0, 0.1);
        assert!((s - 1e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn pull_rejects_invalid_delta() {
        pull_connection_limited_residue(1.0, 1.5);
    }

    #[test]
    fn inbound_connections_are_poisson_one() {
        // Σ_j e^-1/j! = 1.
        let total: f64 = (0..20).map(inbound_connection_probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // P(j=0) = P(j=1) = e^-1.
        assert!(
            (inbound_connection_probability(0) - inbound_connection_probability(1)).abs() < 1e-12
        );
    }
}

/// Worst-case mail volume of the original Clearinghouse *remail* step
/// (§0.1): when anti-entropy finds disagreement, the value was re-mailed
/// to all `n` sites — so a domain stored at `n` sites with widespread
/// disagreement generates up to `n²` messages per night. The paper: "for
/// a domain stored at 300 sites, 90,000 mail messages might be introduced
/// each night".
///
/// # Example
///
/// ```
/// use epidemic_analysis::residue::remail_worst_case;
/// assert_eq!(remail_worst_case(300), 90_000);
/// ```
pub fn remail_worst_case(n: u64) -> u64 {
    n * n
}

#[cfg(test)]
mod remail_tests {
    use super::*;

    #[test]
    fn paper_headline_number() {
        assert_eq!(remail_worst_case(300), 90_000);
        assert_eq!(remail_worst_case(0), 0);
    }
}
