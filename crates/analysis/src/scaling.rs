//! Link-traffic scaling for spatial distributions on a line (paper §3).
//!
//! For sites on a line choosing partners with probability proportional to
//! `d^{-a}`, §3 gives the expected traffic per link per cycle:
//!
//! ```text
//! T(n) = O(n)          a < 1
//!        O(n / log n)  a = 1
//!        O(n^{2-a})    1 < a < 2
//!        O(log n)      a = 2
//!        O(1)          a > 2
//! ```
//!
//! while convergence time flips from polylogarithmic (a < 2) to polynomial
//! (a > 2) — making `a = 2` the sweet spot. [`line_link_traffic`] computes
//! the *exact* finite-n expectation so simulations can be checked against
//! the asymptotics.

/// The asymptotic class of `T(n)` for a given exponent `a` (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// `O(n)` — too flat: most partners are far away.
    Linear,
    /// `O(n / log n)` at exactly `a = 1`.
    NearLinear,
    /// `O(n^{2-a})` for `1 < a < 2`.
    Polynomial,
    /// `O(log n)` at exactly `a = 2` — the paper's recommendation.
    Logarithmic,
    /// `O(1)` for `a > 2` — but convergence becomes polynomial in `n`.
    Constant,
}

/// Classifies the exponent `a` into its §3 traffic regime.
///
/// # Example
///
/// ```
/// use epidemic_analysis::{traffic_class, TrafficClass};
/// assert_eq!(traffic_class(2.0), TrafficClass::Logarithmic);
/// assert_eq!(traffic_class(0.5), TrafficClass::Linear);
/// ```
pub fn traffic_class(a: f64) -> TrafficClass {
    const EPS: f64 = 1e-9;
    if a < 1.0 - EPS {
        TrafficClass::Linear
    } else if (a - 1.0).abs() <= EPS {
        TrafficClass::NearLinear
    } else if a < 2.0 - EPS {
        TrafficClass::Polynomial
    } else if (a - 2.0).abs() <= EPS {
        TrafficClass::Logarithmic
    } else {
        TrafficClass::Constant
    }
}

/// Exact expected traffic per link per cycle on a line of `n` sites where
/// every site contacts one partner chosen with probability `∝ d^{-a}`.
///
/// Entry `l` of the result is the expected number of conversations
/// crossing the link between sites `l` and `l+1`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn line_link_traffic(n: usize, a: f64) -> Vec<f64> {
    assert!(n >= 2);
    // Per-site normalizers: Z_i = Σ_{j≠i} |i-j|^-a.
    let pow: Vec<f64> = (0..n)
        .map(|d| if d == 0 { 0.0 } else { (d as f64).powf(-a) })
        .collect();
    let z: Vec<f64> = (0..n)
        .map(|i| {
            let mut zi = 0.0;
            for j in 0..n {
                zi += pow[i.abs_diff(j)];
            }
            zi
        })
        .collect();
    // Link l sits between site l and l+1; a conversation i→j crosses it
    // iff min(i,j) ≤ l < max(i,j). Accumulate with a difference array so
    // the whole computation is O(n²) rather than O(n³).
    let mut diff = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let p = pow[i.abs_diff(j)] / z[i];
            let (lo, hi) = (i.min(j), i.max(j));
            diff[lo] += p;
            diff[hi] -= p;
        }
    }
    let mut load = Vec::with_capacity(n - 1);
    let mut acc = 0.0;
    for d in &diff[..n - 1] {
        acc += d;
        load.push(acc);
    }
    load
}

/// Mean of [`line_link_traffic`] — the `T(n)` the table tracks.
pub fn mean_line_traffic(n: usize, a: f64) -> f64 {
    let load = line_link_traffic(n, a);
    load.iter().sum::<f64>() / load.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_the_exponent_axis() {
        assert_eq!(traffic_class(0.0), TrafficClass::Linear);
        assert_eq!(traffic_class(1.0), TrafficClass::NearLinear);
        assert_eq!(traffic_class(1.5), TrafficClass::Polynomial);
        assert_eq!(traffic_class(2.0), TrafficClass::Logarithmic);
        assert_eq!(traffic_class(3.0), TrafficClass::Constant);
    }

    #[test]
    fn uniform_traffic_grows_linearly() {
        // a = 0 is the uniform distribution: T(n) = Θ(n).
        let t1 = mean_line_traffic(100, 0.0);
        let t2 = mean_line_traffic(200, 0.0);
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn a2_traffic_grows_logarithmically() {
        let t1 = mean_line_traffic(100, 2.0);
        let t2 = mean_line_traffic(10_000, 2.0);
        // log(10000)/log(100) = 2: traffic roughly doubles, certainly
        // nowhere near the 100x of linear growth.
        let ratio = t2 / t1;
        assert!(ratio < 3.0, "ratio {ratio}");
        assert!(ratio > 1.2, "ratio {ratio}");
    }

    #[test]
    fn a3_traffic_is_bounded() {
        let t1 = mean_line_traffic(100, 3.0);
        let t2 = mean_line_traffic(10_000, 3.0);
        assert!(t2 / t1 < 1.3, "ratio {}", t2 / t1);
    }

    #[test]
    fn intermediate_exponent_is_polynomial() {
        // a = 1.5 → T(n) = Θ(n^0.5): quadrupling n doubles traffic.
        let t1 = mean_line_traffic(250, 1.5);
        let t2 = mean_line_traffic(1_000, 1.5);
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn middle_link_is_the_hottest_under_uniform() {
        let load = line_link_traffic(50, 0.0);
        let mid = load[24];
        assert!(mid >= load[0] && mid >= load[48]);
    }

    #[test]
    fn per_site_probabilities_sum_to_one() {
        // Total traffic equals Σ_i Σ_j p_ij · |i-j| = expected total link
        // crossings; with n sites each making one call the per-site
        // distribution must be normalized: check via a = 0 total.
        let n = 20;
        let load = line_link_traffic(n, 0.0);
        let total: f64 = load.iter().sum();
        // Under uniform choice on a line the mean distance is (n+1)/3.
        let expected = n as f64 * (n as f64 + 1.0) / 3.0 / (n as f64 - 1.0) * (n as f64 - 1.0);
        assert!(
            (total - expected).abs() / expected < 0.02,
            "{total} vs {expected}"
        );
    }
}
