//! Microbenchmarks of one anti-entropy conversation per §1.3 comparison
//! strategy, on the two regimes that bracket steady-state behaviour:
//!
//! * **converged** — both replicas hold identical databases. This is the
//!   common case in a running fleet and the tentpole's zero-allocation
//!   path: the exchange must decide "nothing to do" without cloning a
//!   single entry. The pair is reused across iterations because a
//!   converged exchange is a no-op by definition.
//! * **divergent** — one side holds fresh updates the other lacks, so the
//!   conversation actually ships entries. Pairs are rebuilt per batch
//!   (cloned from a template) since the exchange mutates them.
//!
//! Both regimes thread one reused [`ExchangeScratch`] through
//! `exchange_with`, exactly as the steady-state sim drivers do.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_db::SiteId;

const SHARED: u32 = 1_000;
const FRESH: u32 = 20;
/// Window comfortably covering the fresh updates' ages.
const TAU: u64 = 1_000_000;

fn strategies() -> [(&'static str, Comparison); 4] {
    [
        ("full", Comparison::Full),
        ("checksum", Comparison::Checksum),
        ("recent_list", Comparison::RecentList { tau: TAU }),
        ("peel_back", Comparison::PeelBack),
    ]
}

/// A pair that has fully converged on `SHARED` entries, with clocks close
/// enough that the tail of the shared history sits inside the recent
/// window (so `recent_list` does real list work, not an empty walk).
fn converged_pair() -> (Replica<u32, u64>, Replica<u32, u64>) {
    let mut a: Replica<u32, u64> = Replica::new(SiteId::new(0));
    let mut b: Replica<u32, u64> = Replica::new(SiteId::new(1));
    for key in 0..SHARED {
        a.client_update(key, u64::from(key));
    }
    AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
    (a, b)
}

/// A converged pair plus `FRESH` updates known only to `a`.
fn divergent_pair() -> (Replica<u32, u64>, Replica<u32, u64>) {
    let (mut a, b) = converged_pair();
    for key in 0..FRESH {
        a.client_update(SHARED + key, 2);
    }
    (a, b)
}

fn bench_converged(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_converged_1k");
    for (label, comparison) in strategies() {
        group.bench_function(BenchmarkId::from_parameter(label), |bench| {
            let protocol = AntiEntropy::new(Direction::PushPull, comparison);
            let (mut a, mut b) = converged_pair();
            let mut scratch = ExchangeScratch::new();
            bench.iter(|| black_box(protocol.exchange_with(&mut a, &mut b, &mut scratch)))
        });
    }
    group.finish();
}

fn bench_divergent(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_divergent_1k_20_fresh");
    for (label, comparison) in strategies() {
        group.bench_function(BenchmarkId::from_parameter(label), |bench| {
            let protocol = AntiEntropy::new(Direction::PushPull, comparison);
            let template = divergent_pair();
            let mut scratch = ExchangeScratch::new();
            bench.iter_batched(
                || template.clone(),
                |(mut a, mut b)| black_box(protocol.exchange_with(&mut a, &mut b, &mut scratch)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = exchange;
    config = Criterion::default().sample_size(10);
    targets = bench_converged, bench_divergent
}
criterion_main!(exchange);
