//! Microbenchmarks of one megascale contact cycle at `n = 10⁴`: the
//! legacy eager path (every site materialized up front, whole-roster
//! scan per cycle) against the fast path (active-set scan, counter RNG,
//! lazy materialization).
//!
//! Each sample runs `max_cycles(1)` from a cold start, so it prices
//! exactly what the fast path optimizes: site materialization plus one
//! cycle's contact loop. At cycle 1 only the origin site is hot, which
//! makes the asymmetry stark — the legacy path still pays O(n) to build
//! replicas and scan the roster, while the fast path pays three bitsets
//! and a single contact. Legacy runs on both storage backends; the fast
//! path has no backend axis (its only storage is the lazy table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use epidemic_db::Backend;
use epidemic_net::DegreeGraph;
use epidemic_sim::MegascaleSim;

const N: usize = 10_000;

fn bench_one_cycle(c: &mut Criterion) {
    let sim = MegascaleSim::new().max_cycles(1).workers(1);
    let graph = DegreeGraph::scale_free(N, 2, 1987);

    let mut group = c.benchmark_group("megascale_one_cycle_n10k/uniform");
    for (label, backend) in [
        ("legacy_btree", Backend::BTree),
        ("legacy_flat", Backend::Flat),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(sim.run_uniform(N, seed, backend))
            })
        });
    }
    group.bench_function(BenchmarkId::from_parameter("fast"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(sim.run_uniform_fast(N, seed))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("megascale_one_cycle_n10k/scale_free_m2");
    for (label, backend) in [
        ("legacy_btree", Backend::BTree),
        ("legacy_flat", Backend::Flat),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(sim.run_scale_free(&graph, seed, backend))
            })
        });
    }
    group.bench_function(BenchmarkId::from_parameter("fast"), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(sim.run_scale_free_fast(&graph, seed))
        })
    });
    group.finish();
}

criterion_group! {
    name = megascale;
    config = Criterion::default().sample_size(10);
    targets = bench_one_cycle
}
criterion_main!(megascale);
