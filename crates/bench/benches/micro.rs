//! Microbenchmarks of the substrate operations: store updates, incremental
//! checksums, anti-entropy comparison strategies and partner sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use epidemic_core::{AntiEntropy, Comparison, Direction, Feedback, Removal, Replica, RumorConfig};
use epidemic_db::{Database, SimClock, SiteId};
use epidemic_net::{topologies, PartnerSampler, Routes, Spatial};
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_trace::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.bench_function("update", |b| {
        let mut clock = SimClock::new(SiteId::new(0));
        let mut db: Database<u32, u64> = Database::new();
        let mut key = 0u32;
        b.iter(|| {
            key = key.wrapping_add(1) % 10_000;
            db.update(key, u64::from(key), &mut clock)
        })
    });
    group.bench_function("checksum_recompute_10k", |b| {
        let mut clock = SimClock::new(SiteId::new(0));
        let mut db: Database<u32, u64> = Database::new();
        for key in 0..10_000u32 {
            db.update(key, 1, &mut clock);
        }
        b.iter(|| black_box(db.recompute_checksum()))
    });
    group.finish();
}

fn diverged_pair(shared: u32, fresh: u32) -> (Replica<u32, u64>, Replica<u32, u64>) {
    let mut a: Replica<u32, u64> = Replica::new(SiteId::new(0));
    let mut b: Replica<u32, u64> = Replica::new(SiteId::new(1));
    for key in 0..shared {
        a.client_update(key, 1);
    }
    AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
    a.advance_clock(1_000_000);
    b.advance_clock(1_000_000);
    for key in 0..fresh {
        a.client_update(1_000_000 + key, 2);
    }
    (a, b)
}

fn bench_anti_entropy(c: &mut Criterion) {
    let mut group = c.benchmark_group("anti_entropy_10k_shared_10_fresh");
    for (label, comparison) in [
        ("full", Comparison::Full),
        ("checksum", Comparison::Checksum),
        ("recent_list", Comparison::RecentList { tau: 10_000 }),
        ("peel_back", Comparison::PeelBack),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |bench| {
            let protocol = AntiEntropy::new(Direction::PushPull, comparison);
            bench.iter_batched(
                || diverged_pair(10_000, 10),
                |(mut a, mut b)| black_box(protocol.exchange(&mut a, &mut b)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("partner_sampling");
    let net = topologies::cin(&topologies::CinConfig::default());
    let routes = Routes::compute(&net.topology);
    for (label, spatial) in [
        ("uniform", Spatial::Uniform),
        ("qs_power_2", Spatial::QsPower { a: 2.0 }),
    ] {
        let sampler = PartnerSampler::new(&net.topology, &routes, spatial);
        let from = net.topology.sites()[0];
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(sampler.sample(from, &mut rng)))
        });
    }
    group.bench_function("build_tables_cin", |b| {
        b.iter(|| {
            black_box(PartnerSampler::new(
                &net.topology,
                &routes,
                Spatial::QsPower { a: 2.0 },
            ))
        })
    });
    group.finish();
}

/// The tentpole's zero-cost claim: a full mixing epidemic through the
/// instrumented engine with the no-op sink `()` must cost the same as the
/// pre-instrumentation hot path (the sink monomorphizes away), while the
/// recording `Registry` sink pays only a few map updates per *run*.
fn bench_metrics_sink(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_sink_mixing_n500");
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 3 },
    ));
    group.bench_function("noop", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(driver.run_metered(500, seed, &mut (), &mut ()))
        })
    });
    group.bench_function("registry", |b| {
        let mut registry = Registry::new();
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(driver.run_metered(500, seed, &mut (), &mut registry))
        })
    });
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let net = topologies::cin(&topologies::CinConfig::default());
    c.bench_function("routing/all_pairs_bfs_cin", |b| {
        b.iter(|| black_box(Routes::compute(&net.topology)))
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10);
    targets = bench_store, bench_anti_entropy, bench_sampling, bench_metrics_sink, bench_routing
}
criterion_main!(micro);
