//! Criterion benches that regenerate the paper's tables and figures.
//!
//! Each bench first prints the table at reduced trial counts (so `cargo
//! bench` output contains the paper-shaped rows), then times a single
//! representative trial. Full-fidelity runs live in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use epidemic_bench::figures;
use epidemic_bench::tables::{
    print_mixing, print_spatial, table1, table2, table3, table45, PAPER_TABLE1, PAPER_TABLE2,
    PAPER_TABLE3,
};
use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_net::topologies::{cin, CinConfig};
use epidemic_net::Spatial;
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::spatial_ae::AntiEntropySim;

const N: usize = 1000;
const TRIALS: u64 = 30;
const SPATIAL_TRIALS: u64 = 30;

fn bench_table1(c: &mut Criterion) {
    print_mixing(
        "Table 1: push, feedback, counter, n=1000",
        &table1(N, TRIALS),
        &PAPER_TABLE1,
    );
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 3 },
    ));
    c.bench_function("table1/one_trial_k3", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(driver.run(N, seed))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    print_mixing(
        "Table 2: push, blind, coin, n=1000",
        &table2(N, TRIALS),
        &PAPER_TABLE2,
    );
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Blind,
        Removal::Coin { k: 3 },
    ));
    c.bench_function("table2/one_trial_k3", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(driver.run(N, seed))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    print_mixing(
        "Table 3: pull, feedback, counter, n=1000",
        &table3(N, TRIALS),
        &PAPER_TABLE3,
    );
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Pull,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    ));
    c.bench_function("table3/one_trial_k2", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(driver.run(N, seed))
        })
    });
}

fn bench_table4(c: &mut Criterion) {
    print_spatial(
        "Table 4: push-pull anti-entropy on the synthetic CIN, no connection limit",
        &table45(SPATIAL_TRIALS, None),
    );
    let net = cin(&CinConfig::default());
    let sim = AntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 });
    c.bench_function("table4/one_run_a2", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed, None))
        })
    });
}

fn bench_table5(c: &mut Criterion) {
    print_spatial(
        "Table 5: anti-entropy with connection limit 1, hunt limit 0",
        &table45(SPATIAL_TRIALS, Some(1)),
    );
    let net = cin(&CinConfig::default());
    let sim =
        AntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 }).connection_limit(Some(1));
    c.bench_function("table5/one_run_a2", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed, None))
        })
    });
}

fn bench_figures(c: &mut Criterion) {
    figures::print_rumor_ode(N, TRIALS);
    figures::print_residue_traffic(N, TRIALS);
    figures::print_ae_convergence(10);
    figures::print_line_traffic();
    figures::print_figure1(100);
    figures::print_figure2(100);
    figures::print_death_certificates();
    figures::print_dc_scaling(20);
    figures::print_spatial_rumor(10, 20);
    figures::print_ablation_counter_reset(N, TRIALS);
    figures::print_ablation_hunting(N, TRIALS);
    figures::print_ablation_comparison();
    figures::print_ablation_redistribution(5);
    figures::print_checksum_window();
    figures::print_sir_curve(N, TRIALS);
    figures::print_async_ablation(10);
    figures::print_hierarchy(10);
    figures::print_cin_steady(3);
    figures::print_weighted_cin(5);
    figures::print_churn(5);
    figures::print_topology_robustness(5);
    figures::print_pull_vs_push_rate(3);
    c.bench_function("figures/rumor_ode_residue", |b| {
        b.iter(|| black_box(epidemic_analysis::RumorOde::new(4).final_residue()))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4, bench_table5, bench_figures
}
criterion_main!(tables);
