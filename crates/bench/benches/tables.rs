//! Criterion benches that regenerate the paper's tables and figures.
//!
//! Each bench first prints the table at reduced trial counts (so `cargo
//! bench` output contains the paper-shaped rows), then times a single
//! representative trial. Full-fidelity runs live in the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use epidemic_bench::figures;
use epidemic_bench::tables::{
    print_mixing, print_spatial, table1, table2, table3, table45, PAPER_TABLE1, PAPER_TABLE2,
    PAPER_TABLE3,
};
use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_net::topologies::{cin, CinConfig};
use epidemic_net::Spatial;
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::spatial_ae::AntiEntropySim;

const N: usize = 1000;
const TRIALS: u64 = 30;
const SPATIAL_TRIALS: u64 = 30;

fn bench_table1(c: &mut Criterion) {
    print_mixing(
        "Table 1: push, feedback, counter, n=1000",
        &table1(N, TRIALS),
        &PAPER_TABLE1,
    );
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 3 },
    ));
    c.bench_function("table1/one_trial_k3", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(driver.run(N, seed))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    print_mixing(
        "Table 2: push, blind, coin, n=1000",
        &table2(N, TRIALS),
        &PAPER_TABLE2,
    );
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Blind,
        Removal::Coin { k: 3 },
    ));
    c.bench_function("table2/one_trial_k3", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(driver.run(N, seed))
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    print_mixing(
        "Table 3: pull, feedback, counter, n=1000",
        &table3(N, TRIALS),
        &PAPER_TABLE3,
    );
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Pull,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    ));
    c.bench_function("table3/one_trial_k2", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(driver.run(N, seed))
        })
    });
}

fn bench_table4(c: &mut Criterion) {
    print_spatial(
        "Table 4: push-pull anti-entropy on the synthetic CIN, no connection limit",
        &table45(SPATIAL_TRIALS, None),
    );
    let net = cin(&CinConfig::default());
    let sim = AntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 });
    c.bench_function("table4/one_run_a2", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed, None))
        })
    });
}

fn bench_table5(c: &mut Criterion) {
    print_spatial(
        "Table 5: anti-entropy with connection limit 1, hunt limit 0",
        &table45(SPATIAL_TRIALS, Some(1)),
    );
    let net = cin(&CinConfig::default());
    let sim =
        AntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 }).connection_limit(Some(1));
    c.bench_function("table5/one_run_a2", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(seed, None))
        })
    });
}

fn bench_figures(c: &mut Criterion) {
    // The dispatcher (`figures::print_figure`) pins full-fidelity trial
    // counts, so figures whose count the bench reduces call their table
    // builders directly and print the same `FigTable`s.
    figures::print_figure("fig-rumor-ode", N, TRIALS);
    figures::print_figure("fig-residue-traffic", N, TRIALS);
    figures::print_figure("fig-ae-convergence", N, TRIALS);
    figures::line_traffic_table().print();
    figures::figure1_table(100).print();
    figures::figure2_table(100).print();
    for table in figures::death_certificates_tables() {
        table.print();
    }
    figures::dc_scaling_table(20).print();
    figures::spatial_rumor_table(figures::spatial_rumor(10, 20)).print();
    figures::counter_reset_table(N, TRIALS).print();
    figures::hunting_table(N, TRIALS).print();
    figures::comparison_table().print();
    figures::redistribution_table(5).print();
    figures::checksum_window_table().print();
    figures::sir_curve_table(N, TRIALS).print();
    figures::async_ablation_table(10).print();
    figures::hierarchy_table(10).print();
    figures::cin_steady_table(3).print();
    figures::weighted_cin_table(5).print();
    figures::churn_table(5).print();
    figures::topology_robustness_table(5).print();
    figures::pull_vs_push_rate_table(3).print();
    c.bench_function("figures/rumor_ode_residue", |b| {
        b.iter(|| black_box(epidemic_analysis::RumorOde::new(4).final_residue()))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4, bench_table5, bench_figures
}
criterion_main!(tables);
