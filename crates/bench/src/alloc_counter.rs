//! Feature-gated counting global allocator.
//!
//! The tentpole claim for the zero-copy exchange path is *no per-contact heap
//! allocation* in steady state — a claim timings alone cannot verify, since a
//! fast clone storm and a clone-free path can land within noise of each other
//! on small workloads. This module wraps the system allocator with a relaxed
//! atomic counter so the claim becomes a measurable number.
//!
//! The counter and its accessors always compile (a few instructions and one
//! static), but they only observe anything when a binary or test registers
//! [`CountingAlloc`] as its `#[global_allocator]`. The [`GlobalAlloc`]
//! implementation — the crate's sole unsafe code — exists only under the
//! `count-allocs` feature, so default builds stay `forbid(unsafe_code)` and
//! keep the stock allocator. Consumers register it like so:
//!
//! ```ignore
//! #[cfg(feature = "count-allocs")]
//! #[global_allocator]
//! static ALLOC: epidemic_bench::alloc_counter::CountingAlloc =
//!     epidemic_bench::alloc_counter::CountingAlloc;
//! ```
//!
//! Counts are process-wide and monotone: callers measure a region by
//! differencing [`allocations`] snapshots around it. With
//! `EPIDEMIC_THREADS=1` a difference is attributable to the measured code;
//! with parallel trials it still bounds the fleet's total allocation work.
//!
//! [`GlobalAlloc`]: std::alloc::GlobalAlloc

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// An allocator that forwards to [`std::alloc::System`] and counts every
/// allocation-producing call (`alloc`, `alloc_zeroed`, `realloc`).
/// Deallocations are not counted: the interesting signal for the hot-path
/// audit is "how many times did we ask the allocator for memory", and every
/// dealloc is paired with an alloc already counted.
pub struct CountingAlloc;

#[cfg(feature = "count-allocs")]
#[allow(unsafe_code)]
mod imp {
    use super::{CountingAlloc, ALLOCATIONS};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }
}

/// Total allocation-producing calls observed so far in this process.
///
/// Returns 0 forever unless [`CountingAlloc`] is the registered global
/// allocator; check [`enabled`] before interpreting the number.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Whether this crate was built with the `count-allocs` feature — i.e.
/// whether binaries following the registration convention above are actually
/// counting.
pub const fn enabled() -> bool {
    cfg!(feature = "count-allocs")
}

#[cfg(test)]
mod tests {
    // Registering a second global allocator from a unit test would conflict
    // with the host harness, so the counter's end-to-end behaviour is pinned
    // by the dedicated `zero_alloc` integration test (which owns its own
    // binary and registers `CountingAlloc` there). Here we only check the
    // passive properties.
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let a = allocations();
        let v: Vec<u64> = (0..64).collect();
        let b = allocations();
        assert!(b >= a);
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn enabled_mirrors_feature() {
        assert_eq!(enabled(), cfg!(feature = "count-allocs"));
    }
}
