//! Consumers for the run-analytics artifacts: the `.agg.json` percentile
//! report and the `BENCH_repro.json` regression gate.
//!
//! Both consumers parse their inputs with the dependency-free
//! [`epidemic_trace::json`] parser, so they accept exactly what the
//! producers ([`crate::trace::agg_json`] and `repro --bench`) emit.
//!
//! * [`report`] renders one `.agg.json` file as a human-readable
//!   percentile report: per-entry contact totals, delay quantiles
//!   (p50/p90/p99/max), link-traffic summary, and predicted-vs-observed
//!   lines against the closed forms in `epidemic-analysis`.
//! * [`bench_diff`] compares two `BENCH_repro.json` records experiment by
//!   experiment and flags ratio blowups in seconds, allocations, and
//!   peak RSS, subject to [`DiffThresholds`]. The `epidemic-analyze`
//!   binary exits non-zero when any regression is flagged.

use epidemic_analysis::residue_from_traffic;
use epidemic_trace::json::{parse, Value};

/// Ratio thresholds for [`bench_diff`]. A candidate metric regresses when
/// `candidate / baseline` exceeds the matching ratio; the `min_seconds`
/// noise floor exempts experiments whose candidate wall-clock is too small
/// to measure reliably from the seconds gate.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffThresholds {
    /// Maximum allowed `candidate.seconds / baseline.seconds`.
    pub max_seconds_ratio: f64,
    /// Maximum allowed `candidate.allocations / baseline.allocations`.
    pub max_alloc_ratio: f64,
    /// Maximum allowed candidate/baseline memory ratio. Memory per row is
    /// `rss_delta_kb` (the experiment's own push on the process peak)
    /// when both records carry it, else the legacy process-wide
    /// `peak_rss_kb`.
    pub max_rss_ratio: f64,
    /// Seconds gate noise floor: experiments where both sides run faster
    /// than this are never flagged on wall-clock (timer jitter dominates).
    pub min_seconds: f64,
    /// Memory gate noise floor in kB: experiments where both sides'
    /// attributable RSS is below this are never flagged on memory — an
    /// experiment that fits inside an earlier experiment's peak reports
    /// a delta of 0, and ratios of small deltas are allocator jitter.
    pub min_rss_kb: f64,
}

impl Default for DiffThresholds {
    /// Gate only on 3x blowups, ignoring sub-quarter-second wall-clocks
    /// and sub-10MB memory deltas.
    fn default() -> Self {
        DiffThresholds {
            max_seconds_ratio: 3.0,
            max_alloc_ratio: 3.0,
            max_rss_ratio: 3.0,
            min_seconds: 0.25,
            min_rss_kb: 10_000.0,
        }
    }
}

/// Outcome of a [`bench_diff`] comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// Human-readable comparison table plus any regression lines.
    pub rendered: String,
    /// One line per flagged regression; empty means the gate passes.
    pub regressions: Vec<String>,
}

impl BenchDiff {
    /// `true` when no metric breached its threshold.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

fn require_num(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    num(v, key).ok_or_else(|| format!("{ctx}: missing numeric field {key:?}"))
}

/// One experiment row from a `BENCH_repro.json` record.
#[derive(Debug, Clone, PartialEq)]
struct BenchRow {
    name: String,
    seconds: f64,
    allocations: Option<f64>,
    /// Attributable memory: how far this experiment pushed the process
    /// peak (new format).
    rss_delta_kb: Option<f64>,
    /// Process-wide high-water mark after the experiment (legacy format
    /// and context column).
    peak_rss_kb: Option<f64>,
}

fn parse_bench(text: &str, ctx: &str) -> Result<(f64, Vec<BenchRow>), String> {
    let root = parse(text).map_err(|e| format!("{ctx}: {e}"))?;
    let total = require_num(&root, "total_seconds", ctx)?;
    let experiments = root
        .get("experiments")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"experiments\" array"))?;
    let mut rows = Vec::with_capacity(experiments.len());
    for e in experiments {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: experiment without a \"name\""))?
            .to_string();
        rows.push(BenchRow {
            seconds: require_num(e, "seconds", &format!("{ctx}: {name}"))?,
            allocations: num(e, "allocations"),
            rss_delta_kb: num(e, "rss_delta_kb"),
            peak_rss_kb: num(e, "peak_rss_kb"),
            name,
        });
    }
    Ok((total, rows))
}

fn ratio(base: f64, cand: f64) -> f64 {
    if base <= 0.0 {
        if cand <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cand / base
    }
}

/// Compares two `BENCH_repro.json` records (baseline first). Experiments
/// present on only one side are reported but never flagged — the gate
/// exists to catch perf blowups, not roster drift.
pub fn bench_diff(
    baseline: &str,
    candidate: &str,
    thresholds: &DiffThresholds,
) -> Result<BenchDiff, String> {
    let (base_total, base_rows) = parse_bench(baseline, "baseline")?;
    let (cand_total, cand_rows) = parse_bench(candidate, "candidate")?;
    let mut out = String::new();
    let mut regressions = Vec::new();
    out.push_str(&format!(
        "bench-diff: total_seconds {base_total:.3} -> {cand_total:.3} ({:.2}x)\n",
        ratio(base_total, cand_total)
    ));
    out.push_str(&format!(
        "{:<24} {:>10} {:>10} {:>7}  {:>9} {:>9}\n",
        "experiment", "base s", "cand s", "s x", "alloc x", "rss x"
    ));
    for cand in &cand_rows {
        let Some(base) = base_rows.iter().find(|b| b.name == cand.name) else {
            out.push_str(&format!("{:<24} (new experiment, not gated)\n", cand.name));
            continue;
        };
        let s_ratio = ratio(base.seconds, cand.seconds);
        let alloc_ratio = match (base.allocations, cand.allocations) {
            (Some(b), Some(c)) => Some(ratio(b, c)),
            _ => None,
        };
        // Prefer the per-experiment delta when both records carry it; fall
        // back to the monotone process peak for legacy baselines.
        let (rss_field, base_rss, cand_rss) = match (base.rss_delta_kb, cand.rss_delta_kb) {
            (Some(b), Some(c)) => ("rss_delta_kb", Some(b), Some(c)),
            _ => ("peak_rss_kb", base.peak_rss_kb, cand.peak_rss_kb),
        };
        let rss_ratio = match (base_rss, cand_rss) {
            (Some(b), Some(c)) => Some(ratio(b, c)),
            _ => None,
        };
        let opt = |r: Option<f64>| r.map_or_else(|| "-".to_string(), |x| format!("{x:.2}"));
        out.push_str(&format!(
            "{:<24} {:>10.3} {:>10.3} {:>6.2}x {:>9} {:>9}\n",
            cand.name,
            base.seconds,
            cand.seconds,
            s_ratio,
            opt(alloc_ratio),
            opt(rss_ratio),
        ));
        let above_floor =
            base.seconds >= thresholds.min_seconds || cand.seconds >= thresholds.min_seconds;
        if above_floor && s_ratio > thresholds.max_seconds_ratio {
            regressions.push(format!(
                "{}: seconds {:.3} -> {:.3} ({s_ratio:.2}x > {:.2}x)",
                cand.name, base.seconds, cand.seconds, thresholds.max_seconds_ratio
            ));
        }
        if let Some(r) = alloc_ratio {
            if r > thresholds.max_alloc_ratio {
                regressions.push(format!(
                    "{}: allocations {:.0} -> {:.0} ({r:.2}x > {:.2}x)",
                    cand.name,
                    base.allocations.unwrap_or(0.0),
                    cand.allocations.unwrap_or(0.0),
                    thresholds.max_alloc_ratio
                ));
            }
        }
        if let Some(r) = rss_ratio {
            let rss_above_floor = base_rss.unwrap_or(0.0) >= thresholds.min_rss_kb
                || cand_rss.unwrap_or(0.0) >= thresholds.min_rss_kb;
            if rss_above_floor && r > thresholds.max_rss_ratio {
                regressions.push(format!(
                    "{}: {rss_field} {:.0} -> {:.0} ({r:.2}x > {:.2}x)",
                    cand.name,
                    base_rss.unwrap_or(0.0),
                    cand_rss.unwrap_or(0.0),
                    thresholds.max_rss_ratio
                ));
            }
        }
    }
    for base in &base_rows {
        if !cand_rows.iter().any(|c| c.name == base.name) {
            out.push_str(&format!(
                "{:<24} (missing from candidate, not gated)\n",
                base.name
            ));
        }
    }
    if regressions.is_empty() {
        out.push_str("PASS: no metric exceeded its threshold\n");
    } else {
        out.push_str(&format!("FAIL: {} regression(s)\n", regressions.len()));
        for r in &regressions {
            out.push_str(&format!("  {r}\n"));
        }
    }
    Ok(BenchDiff {
        rendered: out,
        regressions,
    })
}

fn push_line(out: &mut String, s: &str) {
    out.push_str(s);
    out.push('\n');
}

fn fmt_pairs(v: &Value) -> String {
    v.as_object().map_or_else(String::new, |fields| {
        fields
            .iter()
            .map(|(k, val)| match val {
                Value::Str(s) => format!("{k}={s}"),
                Value::Num(x) => format!("{k}={}", crate::render::fmt(*x)),
                other => format!("{k}={other:?}"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn report_entry(out: &mut String, entry: &Value, ctx: &str) -> Result<(), String> {
    let label = entry
        .get("label")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: aggregate entry without a \"label\""))?;
    push_line(out, &format!("## {label}"));
    if let Some(params) = entry.get("params") {
        let rendered = fmt_pairs(params);
        if !rendered.is_empty() {
            push_line(out, &format!("  params: {rendered}"));
        }
    }
    let agg = entry
        .get("aggregate")
        .ok_or_else(|| format!("{ctx}: {label}: missing \"aggregate\""))?;
    let runs = require_num(agg, "runs", ctx)?;
    let sites = require_num(agg, "sites", ctx)?;
    push_line(
        out,
        &format!(
            "  runs={runs} sites={sites} max_cycle={}",
            require_num(agg, "max_cycle", ctx)?
        ),
    );
    let totals = agg
        .get("totals")
        .ok_or_else(|| format!("{ctx}: {label}: missing \"totals\""))?;
    let sent = require_num(totals, "sent", ctx)?;
    push_line(
        out,
        &format!(
            "  contacts={} sent={sent} useful={} fruitless={}",
            require_num(totals, "contacts", ctx)?,
            require_num(totals, "useful", ctx)?,
            require_num(totals, "fruitless", ctx)?
        ),
    );
    let delay = agg
        .get("delay")
        .ok_or_else(|| format!("{ctx}: {label}: missing \"delay\""))?;
    push_line(
        out,
        &format!(
            "  delay: count={} mean={:.3} p50={:.3} p90={:.3} p99={:.3} max={}",
            require_num(delay, "count", ctx)?,
            require_num(delay, "mean", ctx)?,
            require_num(delay, "p50", ctx)?,
            require_num(delay, "p90", ctx)?,
            require_num(delay, "p99", ctx)?,
            require_num(delay, "max", ctx)?
        ),
    );
    if let Some(links) = agg.get("links") {
        let link_totals = links
            .get("totals")
            .ok_or_else(|| format!("{ctx}: {label}: links without \"totals\""))?;
        let truncated = links
            .get("truncated")
            .and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            })
            .unwrap_or(false);
        push_line(
            out,
            &format!(
                "  links: tracked_pairs={} contacts={} sent={}{}",
                require_num(links, "tracked_pairs", ctx)?,
                require_num(link_totals, "contacts", ctx)?,
                require_num(link_totals, "sent", ctx)?,
                if truncated { " (truncated)" } else { "" }
            ),
        );
    }
    if let Some(observed) = entry.get("observed") {
        let rendered = fmt_pairs(observed);
        if !rendered.is_empty() {
            push_line(out, &format!("  observed: {rendered}"));
        }
        // Predicted-vs-observed against the paper's closed forms. The
        // e^-m residue law applies whenever the aggregate saw traffic;
        // producer-embedded predictions (ode_residue, predicted_log2_ln)
        // pair with their observed columns when present.
        if runs > 0.0 && sites > 0.0 {
            let m = sent / (runs * sites);
            let observed_residue =
                num(observed, "residue").or_else(|| num(observed, "residue_mean"));
            push_line(
                out,
                &format!(
                    "  residue vs e^-m: m={m:.4} predicted={:.6} observed={}",
                    residue_from_traffic(m),
                    observed_residue.map_or_else(|| "-".to_string(), |r| format!("{r:.6}"))
                ),
            );
        }
        if let (Some(pred), Some(obs)) = (
            num(observed, "predicted_log2_ln"),
            num(observed, "cycles_mean"),
        ) {
            push_line(
                out,
                &format!("  push cover time: predicted log2(n)+ln(n)={pred:.3} observed={obs:.3}"),
            );
        }
        if let (Some(pred), Some(obs)) = (num(observed, "ode_residue"), num(observed, "residue")) {
            push_line(
                out,
                &format!("  rumor ODE residue: predicted={pred:.6} observed={obs:.6}"),
            );
        }
    }
    Ok(())
}

/// Renders one `.agg.json` document (as produced by `repro --trace` /
/// `--json`) as a percentile report with predicted-vs-observed lines.
pub fn report(text: &str) -> Result<String, String> {
    let root = parse(text).map_err(|e| format!("agg.json: {e}"))?;
    let experiment = root
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or_else(|| "agg.json: missing \"experiment\"".to_string())?;
    let kind = root
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| "agg.json: missing \"kind\"".to_string())?;
    let entries = root
        .get("aggregates")
        .and_then(Value::as_array)
        .ok_or_else(|| "agg.json: missing \"aggregates\" array".to_string())?;
    let mut out = String::new();
    push_line(
        &mut out,
        &format!("# {experiment} ({kind}) — {} aggregate(s)", entries.len()),
    );
    for entry in entries {
        report_entry(&mut out, entry, experiment)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{agg_json, AggEntry};
    use epidemic_trace::{AggregatingSink, Sir};

    fn bench(total: f64, rows: &[(&str, f64, f64, f64)]) -> String {
        let rows: Vec<String> = rows
            .iter()
            .map(|(name, s, a, r)| {
                format!(
                    r#"{{"name": "{name}", "seconds": {s}, "allocations": {a}, "peak_rss_kb": {r}}}"#
                )
            })
            .collect();
        format!(
            r#"{{"threads": 1, "total_seconds": {total}, "experiments": [{}], "phases": []}}"#,
            rows.join(", ")
        )
    }

    #[test]
    fn identical_benches_pass() {
        let text = bench(10.0, &[("table1", 1.0, 1000.0, 5000.0)]);
        let diff = bench_diff(&text, &text, &DiffThresholds::default()).unwrap();
        assert!(diff.passed(), "{}", diff.rendered);
        assert!(diff.rendered.contains("PASS"));
    }

    #[test]
    fn injected_seconds_regression_is_flagged() {
        let base = bench(10.0, &[("table1", 1.0, 1000.0, 5000.0)]);
        let cand = bench(40.0, &[("table1", 4.0, 1000.0, 5000.0)]);
        let diff = bench_diff(&base, &cand, &DiffThresholds::default()).unwrap();
        assert!(!diff.passed());
        assert_eq!(diff.regressions.len(), 1);
        assert!(diff.regressions[0].contains("table1: seconds"), "{diff:?}");
        assert!(diff.rendered.contains("FAIL: 1 regression(s)"));
    }

    #[test]
    fn sub_floor_wall_clock_jitter_is_not_flagged() {
        // 10x blowup, but both sides are under the noise floor.
        let base = bench(0.1, &[("fig-line-traffic", 0.001, 100.0, 500.0)]);
        let cand = bench(0.1, &[("fig-line-traffic", 0.010, 100.0, 500.0)]);
        let diff = bench_diff(&base, &cand, &DiffThresholds::default()).unwrap();
        assert!(diff.passed(), "{}", diff.rendered);
    }

    #[test]
    fn alloc_and_rss_regressions_are_flagged_independently() {
        let base = bench(10.0, &[("table1", 1.0, 1000.0, 5000.0)]);
        let cand = bench(10.0, &[("table1", 1.0, 9000.0, 25000.0)]);
        let diff = bench_diff(&base, &cand, &DiffThresholds::default()).unwrap();
        assert_eq!(diff.regressions.len(), 2, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("allocations"));
        assert!(diff.regressions[1].contains("peak_rss_kb"));
    }

    /// New-format rows: peak_rss_kb plus the attributable rss_delta_kb.
    fn bench_with_delta(total: f64, rows: &[(&str, f64, f64, f64, f64)]) -> String {
        let rows: Vec<String> = rows
            .iter()
            .map(|(name, s, a, d, r)| {
                format!(
                    r#"{{"name": "{name}", "seconds": {s}, "allocations": {a}, "rss_delta_kb": {d}, "peak_rss_kb": {r}}}"#
                )
            })
            .collect();
        format!(
            r#"{{"threads": 1, "total_seconds": {total}, "experiments": [{}], "phases": []}}"#,
            rows.join(", ")
        )
    }

    #[test]
    fn rss_delta_is_preferred_over_the_monotone_peak() {
        // The candidate's process peak is inherited from an earlier
        // experiment (monotone VmHWM), but its own delta is unchanged —
        // gating on the delta must not flag it.
        let base = bench_with_delta(10.0, &[("table1", 1.0, 1000.0, 20000.0, 25000.0)]);
        let inherited = bench_with_delta(10.0, &[("table1", 1.0, 1000.0, 20000.0, 300000.0)]);
        let diff = bench_diff(&base, &inherited, &DiffThresholds::default()).unwrap();
        assert!(diff.passed(), "{}", diff.rendered);

        // A genuine delta blowup is flagged under the new field name.
        let blowup = bench_with_delta(10.0, &[("table1", 1.0, 1000.0, 90000.0, 300000.0)]);
        let diff = bench_diff(&base, &blowup, &DiffThresholds::default()).unwrap();
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("rss_delta_kb"), "{diff:?}");
    }

    #[test]
    fn legacy_baselines_without_deltas_gate_on_the_peak() {
        let base = bench(10.0, &[("table1", 1.0, 1000.0, 25000.0)]);
        let cand = bench_with_delta(10.0, &[("table1", 1.0, 1000.0, 1000.0, 90000.0)]);
        let diff = bench_diff(&base, &cand, &DiffThresholds::default()).unwrap();
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("peak_rss_kb"), "{diff:?}");
    }

    #[test]
    fn sub_floor_rss_delta_jitter_is_not_flagged() {
        // 0 -> 3MB is an infinite ratio, but both sides are below the
        // memory noise floor: an experiment that fits inside an earlier
        // peak reports a delta of 0.
        let base = bench_with_delta(10.0, &[("table2", 1.0, 1000.0, 0.0, 25000.0)]);
        let cand = bench_with_delta(10.0, &[("table2", 1.0, 1000.0, 3000.0, 25000.0)]);
        let diff = bench_diff(&base, &cand, &DiffThresholds::default()).unwrap();
        assert!(diff.passed(), "{}", diff.rendered);
    }

    #[test]
    fn roster_drift_is_reported_but_not_gated() {
        let base = bench(10.0, &[("old-exp", 1.0, 1000.0, 5000.0)]);
        let cand = bench(10.0, &[("new-exp", 1.0, 1000.0, 5000.0)]);
        let diff = bench_diff(&base, &cand, &DiffThresholds::default()).unwrap();
        assert!(diff.passed(), "{}", diff.rendered);
        assert!(diff.rendered.contains("new-exp"));
        assert!(diff.rendered.contains("missing from candidate"));
    }

    #[test]
    fn custom_thresholds_tighten_the_gate() {
        let base = bench(10.0, &[("table1", 1.0, 1000.0, 5000.0)]);
        let cand = bench(10.0, &[("table1", 1.5, 1000.0, 5000.0)]);
        let tight = DiffThresholds {
            max_seconds_ratio: 1.2,
            ..DiffThresholds::default()
        };
        assert!(!bench_diff(&base, &cand, &tight).unwrap().passed());
        assert!(bench_diff(&base, &cand, &DiffThresholds::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn malformed_bench_json_is_a_readable_error() {
        let err = bench_diff("{nope", "{}", &DiffThresholds::default()).unwrap_err();
        assert!(err.starts_with("baseline:"), "{err}");
        let err = bench_diff(
            &bench(1.0, &[]),
            r#"{"total_seconds": 1.0}"#,
            &DiffThresholds::default(),
        )
        .unwrap_err();
        assert!(err.contains("candidate"), "{err}");
    }

    /// Builds a small real aggregate: 2 runs over 4 sites, with one
    /// useful contact each so the delay histogram is non-empty.
    fn sample_entry() -> AggEntry {
        let mut sink = AggregatingSink::new();
        for run in 0..2u32 {
            sink.run_start(Sir {
                susceptible: 3,
                infective: 1,
                removed: 0,
            });
            sink.contact(1, 0, 1, 2, 1);
            sink.cycle(
                1,
                Sir {
                    susceptible: 2,
                    infective: 2,
                    removed: 0,
                },
            );
            sink.contact(2, 1, 2, 1, u64::from(run));
            sink.cycle(
                2,
                Sir {
                    susceptible: 1,
                    infective: 3,
                    removed: 0,
                },
            );
        }
        AggEntry {
            label: "k=1".to_string(),
            params: vec![("k".to_string(), "1".to_string())],
            observed: vec![
                ("residue".to_string(), 0.25),
                ("ode_residue".to_string(), 0.2032),
            ],
            agg: sink.finish(),
        }
    }

    #[test]
    fn report_prints_percentiles_and_predicted_vs_observed() {
        let text = agg_json("fig-rumor-ode", "figure", &[sample_entry()]);
        let rendered = report(&text).unwrap();
        assert!(
            rendered.starts_with("# fig-rumor-ode (figure) — 1 aggregate(s)"),
            "{rendered}"
        );
        assert!(rendered.contains("## k=1"), "{rendered}");
        assert!(rendered.contains("p50="), "{rendered}");
        assert!(rendered.contains("p99="), "{rendered}");
        assert!(rendered.contains("residue vs e^-m: m="), "{rendered}");
        assert!(rendered.contains("observed=0.250000"), "{rendered}");
        assert!(
            rendered.contains("rumor ODE residue: predicted=0.203200 observed=0.250000"),
            "{rendered}"
        );
        assert!(rendered.contains("links: tracked_pairs="), "{rendered}");
    }

    #[test]
    fn report_rejects_malformed_documents() {
        assert!(report("[]").unwrap_err().contains("experiment"));
        assert!(report("{oops").unwrap_err().starts_with("agg.json:"));
        let no_aggs = r#"{"experiment": "x", "kind": "table"}"#;
        assert!(report(no_aggs).unwrap_err().contains("aggregates"));
    }
}
