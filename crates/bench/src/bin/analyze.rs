//! `epidemic-analyze` — consumers for the run-analytics artifacts.
//!
//! ```text
//! epidemic-analyze report <file.agg.json>...
//! epidemic-analyze bench-diff <baseline.json> <candidate.json> [flags]
//! ```
//!
//! `report` renders each `.agg.json` (written by `repro --trace` /
//! `--json`) as a percentile report with predicted-vs-observed lines
//! against the paper's closed forms.
//!
//! `bench-diff` compares two `BENCH_repro.json` records and exits with
//! status 1 when any experiment's seconds / allocations / peak RSS blew
//! past its ratio threshold (default 3x, tunable per metric with
//! `--max-seconds-ratio`, `--max-alloc-ratio`, `--max-rss-ratio`; the
//! `--min-seconds` noise floor exempts sub-threshold wall-clocks).
//! Usage or parse errors exit with status 2.

use std::process::ExitCode;

use epidemic_bench::analyze::{bench_diff, report, DiffThresholds};

const USAGE: &str = "usage: epidemic-analyze <command>\n\
  report <file.agg.json>...\n\
      Render percentile reports (delay p50/p90/p99/max, link traffic,\n\
      predicted-vs-observed) for each aggregate file.\n\
  bench-diff <baseline.json> <candidate.json>\n\
      [--max-seconds-ratio X] [--max-alloc-ratio X] [--max-rss-ratio X]\n\
      [--min-seconds S]\n\
      Compare two BENCH_repro.json records; exit 1 on any regression.\n";

fn fail(message: &str) -> ExitCode {
    eprintln!("epidemic-analyze: {message}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// Pulls `--flag <value>` out of `args` (mutating it), parsing the value
/// as f64. `Ok(None)` when the flag is absent.
fn take_f64_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<f64>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    value
        .parse::<f64>()
        .map(Some)
        .map_err(|_| format!("{flag}: not a number: {value:?}"))
}

fn run_report(files: &[String]) -> Result<(), String> {
    if files.is_empty() {
        return Err("report: no input files".to_string());
    }
    for path in files {
        let rendered = report(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
        print!("{rendered}");
    }
    Ok(())
}

fn run_bench_diff(mut args: Vec<String>) -> Result<bool, String> {
    let mut thresholds = DiffThresholds::default();
    if let Some(x) = take_f64_flag(&mut args, "--max-seconds-ratio")? {
        thresholds.max_seconds_ratio = x;
    }
    if let Some(x) = take_f64_flag(&mut args, "--max-alloc-ratio")? {
        thresholds.max_alloc_ratio = x;
    }
    if let Some(x) = take_f64_flag(&mut args, "--max-rss-ratio")? {
        thresholds.max_rss_ratio = x;
    }
    if let Some(x) = take_f64_flag(&mut args, "--min-seconds")? {
        thresholds.min_seconds = x;
    }
    let [baseline, candidate] = args.as_slice() else {
        return Err(format!(
            "bench-diff takes exactly two files, got {}",
            args.len()
        ));
    };
    let diff = bench_diff(&read(baseline)?, &read(candidate)?, &thresholds)?;
    print!("{}", diff.rendered);
    Ok(diff.passed())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "report" => match run_report(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        Some((cmd, rest)) if cmd == "bench-diff" => match run_bench_diff(rest.to_vec()) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(1),
            Err(e) => fail(&e),
        },
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
