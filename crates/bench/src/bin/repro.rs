//! `repro` — regenerates every table and figure of the paper at full
//! trial counts.
//!
//! ```text
//! cargo run -p epidemic-bench --release --bin repro -- all
//! cargo run -p epidemic-bench --release --bin repro -- table1 table4
//! cargo run -p epidemic-bench --release --bin repro -- --timings all
//! cargo run -p epidemic-bench --release --bin repro -- --list
//! cargo run -p epidemic-bench --release --bin repro -- --only table
//! cargo run -p epidemic-bench --release --bin repro -- --only table1 --trace out/
//! ```
//!
//! `--list` prints every experiment name, one per line, grouped under
//! `[tables]` / `[figures]` / `[scenarios]` headers, and exits.
//! `--only <selector>` runs the experiments whose name equals or starts
//! with the selector — `--only table` runs the five tables, `--only fig`
//! the figures, `--only scenario-` the bundled declarative scenarios,
//! `--only table4` exactly one experiment.
//!
//! `--trace <dir>` writes structured artifacts for **every** experiment:
//! a summary record (`<name>.summary.json`) and a streaming-aggregate
//! report (`<name>.agg.json` — mergeable delay histograms with
//! quantiles, the bounded link-traffic matrix, S/I/R curves and contact
//! totals; see `epidemic_trace::RunAggregate`). Tables and scenarios
//! additionally write a per-contact run trace (`<name>.jsonl`, one JSON
//! object per line); figures have no per-contact trace and skip the
//! file. `--json <dir>` writes the machine-readable rows
//! (`<name>.rows.json`) plus the same `<name>.agg.json`. Both modes add
//! a top-level `manifest.json` naming the experiments run and the
//! threads / storage-backend / shard configuration. No artifact carries
//! wall-clock fields, so every written byte is identical at any
//! `EPIDEMIC_THREADS`. `epidemic-analyze` consumes these artifacts.
//!
//! `--timings [PATH]` additionally records per-experiment wall-clock
//! seconds, per-experiment memory (`rss_delta_kb`, the experiment's own
//! push on the process high-water mark, plus the raw monotone
//! `peak_rss_kb` — see `epidemic_bench::rss`), a per-phase breakdown
//! (legacy engine setup / contact loop / end-of-cycle, fast-path
//! active_setup / active_contact_loop / active_apply, trial fan-out /
//! aggregation) and the worker-thread count to a JSON file
//! (`BENCH_repro.json` by default). Thread count is controlled by the
//! `EPIDEMIC_THREADS` environment variable (see `epidemic_sim::runner`).

use epidemic_bench::alloc_counter;
use epidemic_bench::figures;
use epidemic_bench::scenarios::{print_scenarios, scenario_artifacts};
use epidemic_bench::tables::{
    print_mixing, print_spatial, table1, table2, table3, table45, PAPER_TABLE1, PAPER_TABLE2,
    PAPER_TABLE3, TITLE_TABLE1, TITLE_TABLE2, TITLE_TABLE3, TITLE_TABLE4, TITLE_TABLE5,
};
use epidemic_bench::trace::table_artifacts;
use epidemic_sim::runner::TrialRunner;
use epidemic_trace::json::{array_of, JsonObject};
use epidemic_trace::profile;

// With the `count-allocs` feature, every heap allocation in this process is
// counted and `--timings` reports a per-experiment allocation column (see
// `alloc_counter`). Default builds keep the stock allocator.
#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

const N: usize = 1000;

fn run(experiment: &str, mix_trials: u64, spatial_trials: u64) -> bool {
    #[allow(non_snake_case)]
    let MIX_TRIALS = mix_trials;
    #[allow(non_snake_case)]
    let SPATIAL_TRIALS = spatial_trials;
    match experiment {
        "table1" => print_mixing(TITLE_TABLE1, &table1(N, MIX_TRIALS), &PAPER_TABLE1),
        "table2" => print_mixing(TITLE_TABLE2, &table2(N, MIX_TRIALS), &PAPER_TABLE2),
        "table3" => print_mixing(TITLE_TABLE3, &table3(N, MIX_TRIALS), &PAPER_TABLE3),
        "table4" => print_spatial(TITLE_TABLE4, &table45(SPATIAL_TRIALS, None)),
        "table5" => print_spatial(TITLE_TABLE5, &table45(SPATIAL_TRIALS, Some(1))),
        // Figure experiments (one dispatcher, fixed per-figure trial
        // counts) and scenario experiments (fig-scenarios and
        // scenario-<name>); unknown names return false and surface the
        // usual error.
        other => {
            return figures::print_figure(other, N, MIX_TRIALS)
                || print_scenarios(other, scenario_trials(MIX_TRIALS))
        }
    }
    true
}

/// Scenario sweeps carry full fault timelines per trial, so they run far
/// fewer seeds than the mixing tables: capped at 10 unless `--trials`
/// asks for less.
fn scenario_trials(mix_trials: u64) -> u64 {
    mix_trials.min(10)
}

/// Experiment grouping for `--list`: tables (numbered paper tables),
/// scenarios (declarative `.scenario` sweeps), figures (everything else,
/// including ablations).
fn kind(name: &str) -> &'static str {
    if name.starts_with("table") {
        "tables"
    } else if name == "fig-scenarios" || name.starts_with("scenario-") {
        "scenarios"
    } else {
        "figures"
    }
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig-rumor-ode",
    "fig-residue-traffic",
    "fig-ae-convergence",
    "fig-line-traffic",
    "fig1-pathology",
    "fig2-pathology",
    "death-certs",
    "fig-dc-scaling",
    "fig-spatial-rumor",
    "fig-sir-curve",
    "fig-checksum-window",
    "fig-async",
    "fig-cin-steady",
    "fig-cin-steady-sharded",
    "fig-megascale",
    "ablation-hierarchy",
    "ablation-weighted-cin",
    "ablation-churn",
    "fig-topology-robustness",
    "fig-pull-vs-push-rate",
    "ablation-counter-reset",
    "ablation-hunting",
    "ablation-comparison",
    "ablation-redistribution",
    "fig-scenarios",
    "scenario-clearinghouse",
    "scenario-dormant-death",
    "scenario-partition",
    "scenario-crash",
    "scenario-churn",
    "scenario-flash-crowd-lossy",
    "scenario-churn-partition-heal",
];

/// Writes `contents` (with a guaranteed trailing newline) to
/// `<dir>/<file>`, creating the directory as needed. Exits on I/O errors:
/// a user who asked for artifacts should not silently get none.
fn write_artifact(dir: &str, file: &str, contents: &str) {
    let path = std::path::Path::new(dir).join(file);
    if let Some(parent) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("failed to create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    let mut text = String::with_capacity(contents.len() + 1);
    text.push_str(contents);
    if !text.ends_with('\n') {
        text.push('\n');
    }
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("[wrote {}]", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The top-level `manifest.json` written to every `--trace`/`--json`
/// directory: which experiments ran (in order) and the deterministic run
/// configuration — worker threads, storage backend, shard count. The
/// thread count documents the parallelism used; the artifacts themselves
/// are byte-identical at any value of it.
fn manifest_json(experiments: &[&str]) -> String {
    let backend = match epidemic_db::Backend::from_env() {
        epidemic_db::Backend::BTree => "btree",
        epidemic_db::Backend::Flat => "flat",
    };
    let mut o = JsonObject::new();
    // Experiment names come from the fixed in-tree list: no escaping.
    o.field_raw(
        "experiments",
        &array_of(experiments.iter().map(|name| format!("\"{name}\""))),
    )
    .field_u64("threads", epidemic_sim::runner::default_threads() as u64)
    .field_str("backend", backend)
    .field_u64("shards", epidemic_sim::engine::default_shards() as u64);
    o.finish()
}

/// One experiment's row in the `--timings` report.
struct ExperimentTiming {
    name: String,
    seconds: f64,
    allocations: u64,
    /// How far this experiment pushed the process peak RSS (`VmHWM`
    /// delta across the experiment, kB). 0 when the experiment fit
    /// inside an earlier experiment's peak — per-experiment, unlike the
    /// monotone process-wide mark.
    rss_delta_kb: u64,
    /// The process high-water mark right after the experiment (kB) —
    /// monotone across rows, kept for context.
    peak_rss_kb: u64,
}

/// Writes the timing report as JSON (hand-rolled: experiment and phase
/// names come from fixed in-tree lists and need no escaping). When the
/// `count-allocs` feature is active each experiment row additionally
/// carries its heap-allocation count. Memory per row is `rss_delta_kb`
/// (attributable to the experiment) plus the monotone `peak_rss_kb`
/// context reading — both 0 on platforms without `/proc` (see
/// `epidemic_bench::rss`).
fn write_timings(
    path: &str,
    threads: usize,
    timings: &[ExperimentTiming],
    phases: &[epidemic_trace::PhaseStat],
) {
    let total: f64 = timings.iter().map(|t| t.seconds).sum();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    json.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let allocs = if alloc_counter::enabled() {
            format!(", \"allocations\": {}", t.allocations)
        } else {
            String::new()
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seconds\": {:.3}{allocs}, \
             \"rss_delta_kb\": {}, \"peak_rss_kb\": {}}}{comma}\n",
            t.name, t.seconds, t.rss_delta_kb, t.peak_rss_kb
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"calls\": {}, \"seconds\": {:.3}}}{comma}\n",
            p.name,
            p.calls,
            p.seconds()
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("[timings written to {path}]"),
        Err(e) => eprintln!("[failed to write {path}: {e}]"),
    }
}

/// Extracts the directory argument of `flag` (e.g. `--trace out/`),
/// removing both tokens from `args`.
fn take_dir_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    let dir = args.get(pos + 1).cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs an output directory");
        std::process::exit(2);
    });
    args.drain(pos..=pos + 1);
    Some(dir)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for group in ["tables", "figures", "scenarios"] {
            println!("[{group}]");
            for name in ALL.iter().filter(|name| kind(name) == group) {
                println!("{name}");
            }
        }
        return;
    }
    let mut mix_trials: u64 = 100;
    let mut spatial_trials: u64 = 250;
    if let Some(pos) = args.iter().position(|a| a == "--trials") {
        let value = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--trials needs a positive integer");
                std::process::exit(2);
            });
        mix_trials = value;
        spatial_trials = value;
        args.drain(pos..=pos + 1);
    }
    let mut timings_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--timings") {
        // An optional path follows; anything that is not an experiment
        // name or flag is treated as the output file.
        let path = match args.get(pos + 1) {
            Some(next)
                if next != "all" && !next.starts_with('-') && !ALL.contains(&next.as_str()) =>
            {
                let p = next.clone();
                args.drain(pos..=pos + 1);
                p
            }
            _ => {
                args.remove(pos);
                String::from("BENCH_repro.json")
            }
        };
        timings_path = Some(path);
    }
    let trace_dir = take_dir_flag(&mut args, "--trace");
    let json_dir = take_dir_flag(&mut args, "--json");
    let mut selectors: Vec<String> = Vec::new();
    while let Some(pos) = args.iter().position(|a| a == "--only") {
        let selector = args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("--only needs a selector (an experiment name or prefix)");
            std::process::exit(2);
        });
        selectors.push(selector);
        args.drain(pos..=pos + 1);
    }
    if (args.is_empty() && selectors.is_empty()) || args.iter().any(|a| a == "--help" || a == "-h")
    {
        eprintln!(
            "usage: repro [--trials N] [--timings [PATH]] [--trace DIR] [--json DIR] \
             [--only SELECTOR]... [--list] <experiment>... | all\nexperiments: {}",
            ALL.join(" ")
        );
        std::process::exit(2);
    }
    let mut list: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for selector in &selectors {
        let matched: Vec<&str> = ALL
            .iter()
            .copied()
            .filter(|name| name == selector || name.starts_with(selector.as_str()))
            .collect();
        if matched.is_empty() {
            eprintln!(
                "--only {selector} matches no experiment\nknown: {}",
                ALL.join(" ")
            );
            std::process::exit(2);
        }
        list.extend(matched);
    }
    if timings_path.is_some() {
        profile::enable();
    }
    let mut timings: Vec<ExperimentTiming> = Vec::new();
    let mut ran: Vec<&str> = Vec::new();
    for experiment in list {
        let allocs_before = alloc_counter::allocations();
        let rss_before = epidemic_bench::rss::peak_rss_kb();
        let start = std::time::Instant::now();
        let handled = if trace_dir.is_some() || json_dir.is_some() {
            // Every experiment kind has an artifact writer: traced tables,
            // scenario sweeps, figures. A None from all three means the
            // name is unknown.
            match table_artifacts(
                TrialRunner::new(),
                experiment,
                N,
                mix_trials,
                spatial_trials,
            )
            .or_else(|| {
                scenario_artifacts(TrialRunner::new(), experiment, scenario_trials(mix_trials))
            })
            .or_else(|| figures::figure_artifacts(TrialRunner::new(), experiment, N, mix_trials))
            {
                Some(artifacts) => {
                    print!("{}", artifacts.rendered);
                    if let Some(dir) = &trace_dir {
                        // Figures have no per-contact trace; skip the
                        // empty .jsonl rather than writing a blank file.
                        if !artifacts.jsonl.is_empty() {
                            write_artifact(dir, &format!("{experiment}.jsonl"), &artifacts.jsonl);
                        }
                        write_artifact(
                            dir,
                            &format!("{experiment}.summary.json"),
                            &artifacts.summary,
                        );
                        write_artifact(dir, &format!("{experiment}.agg.json"), &artifacts.agg);
                    }
                    if let Some(dir) = &json_dir {
                        write_artifact(dir, &format!("{experiment}.rows.json"), &artifacts.rows);
                        write_artifact(dir, &format!("{experiment}.agg.json"), &artifacts.agg);
                    }
                    true
                }
                None => false,
            }
        } else {
            run(experiment, mix_trials, spatial_trials)
        };
        if !handled {
            eprintln!("unknown experiment: {experiment}\nknown: {}", ALL.join(" "));
            std::process::exit(2);
        }
        ran.push(experiment);
        let seconds = start.elapsed().as_secs_f64();
        let allocations = alloc_counter::allocations() - allocs_before;
        let peak_rss_kb = epidemic_bench::rss::peak_rss_kb();
        let rss_delta_kb = peak_rss_kb.saturating_sub(rss_before);
        if alloc_counter::enabled() {
            eprintln!("[{experiment}: {seconds:.1}s, {allocations} allocations]");
        } else {
            eprintln!("[{experiment}: {seconds:.1}s]");
        }
        timings.push(ExperimentTiming {
            name: experiment.to_string(),
            seconds,
            allocations,
            rss_delta_kb,
            peak_rss_kb,
        });
    }
    if trace_dir.is_some() || json_dir.is_some() {
        let manifest = manifest_json(&ran);
        for dir in [&trace_dir, &json_dir].into_iter().flatten() {
            write_artifact(dir, "manifest.json", &manifest);
        }
    }
    if let Some(path) = timings_path {
        let phases = profile::take();
        if !phases.is_empty() {
            eprintln!("[phases]");
            for p in &phases {
                eprintln!(
                    "  {:<22} {:>9.3}s over {} spans",
                    p.name,
                    p.seconds(),
                    p.calls
                );
            }
        }
        write_timings(
            &path,
            epidemic_sim::runner::default_threads(),
            &timings,
            &phases,
        );
    }
}
