//! Reproductions of the paper's figures, displayed equations and ablation
//! studies (everything in the evaluation that is not a numbered table).

use epidemic_analysis::{
    mean_line_traffic, pull_cycles_until, push_epidemic_time, residue_from_traffic, RumorOde,
};
use epidemic_core::anti_entropy::{AntiEntropy, Comparison};
use epidemic_core::{Direction, Feedback, Removal, Replica, RumorConfig};
use epidemic_db::SiteId;
use epidemic_net::topologies::{self, cin, CinConfig};
use epidemic_net::Spatial;
use epidemic_sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::scenario::legacy::{
    resurrection_without_certificates, ClearinghouseScenario, DormantDeathScenario,
};
use epidemic_sim::spatial_rumor::{failure_probability, minimum_k_with, SpatialRumorSim};

use crate::render::{fmt, print_table};
use crate::tables::mixing_sweep;
use crate::{parallel_trials, parallel_trials_with};

/// §1.4 rumor ODE: predicted residue `s = e^{-(k+1)(1-s)}` versus the
/// simulated feedback+coin epidemic.
pub fn rumor_ode(n: usize, trials: u64) -> Vec<Vec<String>> {
    let ks = [1, 2, 3, 4, 5, 6, 7, 8];
    let sim = mixing_sweep(n, trials, &ks, |k| {
        RumorEpidemic::new(RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Coin { k },
        ))
    });
    ks.iter()
        .zip(&sim)
        .map(|(&k, row)| {
            vec![
                k.to_string(),
                fmt(RumorOde::new(k).final_residue()),
                fmt(row.residue),
                fmt(row.traffic),
            ]
        })
        .collect()
}

/// Prints [`rumor_ode`].
pub fn print_rumor_ode(n: usize, trials: u64) {
    let rows = rumor_ode(n, trials);
    print_table(
        "Fig: rumor ODE residue s = e^-(k+1)(1-s) vs simulation (push, feedback, coin)",
        &["k", "ODE residue", "sim residue", "sim traffic m"],
        &rows,
    );
}

/// §1.4 `s = e^{-m}` law: measured (m, s) pairs for several push variants
/// against the prediction, including the connection-limited λ variants.
pub fn residue_traffic(n: usize, trials: u64) -> Vec<Vec<String>> {
    let variants: Vec<(&str, RumorConfig, Option<u32>)> = vec![
        (
            "feedback+counter",
            RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ),
            None,
        ),
        (
            "blind+coin",
            RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Coin { k: 3 }),
            None,
        ),
        (
            "feedback+counter, climit 1",
            RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ),
            Some(1),
        ),
        (
            "minimization (push-pull)",
            RumorConfig::new(
                Direction::PushPull,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            )
            .with_minimization(),
            None,
        ),
    ];
    variants
        .into_iter()
        .map(|(label, cfg, climit)| {
            let driver = RumorEpidemic::new(cfg).connection_limit(climit);
            let (s, m) = parallel_trials(
                trials,
                |seed| {
                    let r = driver.run(n, seed ^ 0xABCD);
                    (r.residue, r.traffic)
                },
                (0.0, 0.0),
                |a, r| (a.0 + r.0, a.1 + r.1),
            );
            let (s, m) = (s / trials as f64, m / trials as f64);
            vec![
                label.to_string(),
                fmt(m),
                fmt(s),
                fmt(residue_from_traffic(m)),
                fmt(epidemic_analysis::push_connection_limited_residue(m)),
            ]
        })
        .collect()
}

/// Prints [`residue_traffic`].
pub fn print_residue_traffic(n: usize, trials: u64) {
    let rows = residue_traffic(n, trials);
    print_table(
        "Fig: residue vs traffic — s = e^-m law and connection-limited variants",
        &["variant", "m", "s (sim)", "e^-m", "e^-1.582m"],
        &rows,
    );
}

/// §1.3 anti-entropy convergence: measured cover time for push vs the
/// `log₂n + ln n` prediction, and pull's doubly-exponential tail.
pub fn ae_convergence(trials: u64) -> Vec<Vec<String>> {
    [100usize, 300, 1000, 3000, 10_000]
        .iter()
        .map(|&n| {
            let mean = |direction| {
                parallel_trials(
                    trials,
                    |seed| f64::from(AntiEntropyEpidemic::new(direction).run(n, seed).cycles),
                    0.0,
                    |a, x| a + x,
                ) / trials as f64
            };
            let push = mean(Direction::Push);
            let pull = mean(Direction::Pull);
            let pushpull = mean(Direction::PushPull);
            vec![
                n.to_string(),
                fmt(push),
                fmt(push_epidemic_time(n as f64)),
                fmt(pull),
                fmt(pushpull),
                // Pull tail: cycles from 10% susceptible to < 1/n by p².
                fmt(f64::from(pull_cycles_until(0.1, 1.0 / n as f64))),
            ]
        })
        .collect()
}

/// Prints [`ae_convergence`].
pub fn print_ae_convergence(trials: u64) {
    let rows = ae_convergence(trials);
    print_table(
        "Fig: anti-entropy cover time — push vs log2(n)+ln(n), pull, push-pull",
        &[
            "n",
            "push (sim)",
            "log2+ln",
            "pull (sim)",
            "push-pull (sim)",
            "pull tail p^2",
        ],
        &rows,
    );
}

/// §3 line-traffic scaling `T(n)` for `d^-a`: exact expectation per regime.
pub fn line_traffic() -> Vec<Vec<String>> {
    let sizes = [100usize, 200, 400, 800, 1600, 3200];
    let exps = [0.0, 1.0, 1.5, 2.0, 3.0];
    sizes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for &a in &exps {
                row.push(fmt(mean_line_traffic(n, a)));
            }
            row
        })
        .collect()
}

/// Prints [`line_traffic`].
pub fn print_line_traffic() {
    let rows = line_traffic();
    print_table(
        "Fig: T(n), expected traffic/link on a line for p ~ d^-a (O(n), n/log n, n^(2-a), log n, O(1))",
        &["n", "a=0 (uniform)", "a=1", "a=1.5", "a=2", "a=3"],
        &rows,
    );
}

/// Figure 1 pathology: failure probability of push and pull rumor
/// mongering between the s–t pair under `Q_s(d)^-2`, per `k`.
pub fn figure1(trials: u32) -> Vec<Vec<String>> {
    let topo = topologies::figure1(30);
    let s = topo.node_by_label("s").expect("site s exists");
    (1..=6u32)
        .map(|k| {
            let push = failure_probability(
                &topo,
                Spatial::QsPower { a: 2.0 },
                RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k }),
                trials,
                Some(s),
            );
            let pull = failure_probability(
                &topo,
                Spatial::QsPower { a: 2.0 },
                RumorConfig::new(Direction::Pull, Feedback::Feedback, Removal::Counter { k }),
                trials,
                Some(s),
            );
            let uniform_push = failure_probability(
                &topo,
                Spatial::Uniform,
                RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k }),
                trials,
                Some(s),
            );
            vec![k.to_string(), fmt(push), fmt(pull), fmt(uniform_push)]
        })
        .collect()
}

/// Prints [`figure1`].
pub fn print_figure1(trials: u32) {
    let rows = figure1(trials);
    print_table(
        "Fig 1: failure probability on the s-t pathology (m=30, Qs^-2), update injected at s",
        &["k", "push Qs^-2", "pull Qs^-2", "push uniform"],
        &rows,
    );
}

/// Figure 2 pathology: probability that the distant site `s` misses a
/// push rumor injected inside the binary tree.
pub fn figure2(trials: u32) -> Vec<Vec<String>> {
    let topo = topologies::figure2(5, 7); // 31 tree sites + distant s
    let root = topo.node_by_label("t0").expect("root exists");
    let s = topo.node_by_label("s").expect("site s exists");
    (1..=6u32)
        .map(|k| {
            let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k });
            let sim = SpatialRumorSim::new(&topo, Spatial::QsPower { a: 2.0 }, cfg);
            let missed_s = parallel_trials(
                u64::from(trials),
                |t| {
                    let r = sim.run(t + 17, Some(root));
                    r.susceptible_sites.contains(&s)
                },
                0usize,
                |acc, missed| acc + usize::from(missed),
            );
            let total_failures =
                failure_probability(&topo, Spatial::QsPower { a: 2.0 }, cfg, trials, Some(root));
            vec![
                k.to_string(),
                fmt(missed_s as f64 / f64::from(trials)),
                fmt(total_failures),
            ]
        })
        .collect()
}

/// Prints [`figure2`].
pub fn print_figure2(trials: u32) {
    let rows = figure2(trials);
    print_table(
        "Fig 2: binary tree + distant site s (push, Qs^-2), update injected at the root",
        &["k", "P(distant s missed)", "P(any failure)"],
        &rows,
    );
}

/// §2 death certificates: the equal-space law, the resurrection failure
/// and the dormant-certificate immune response.
pub fn print_death_certificates() {
    // Equal-space law τ₂ = (τ - τ₁)·n/r (§2.1).
    let rows: Vec<Vec<String>> = [
        (30u64, 15u64, 300u64, 4u64),
        (30, 15, 300, 8),
        (60, 30, 1000, 6),
    ]
    .iter()
    .map(|&(tau, tau1, n, r)| {
        vec![
            tau.to_string(),
            tau1.to_string(),
            n.to_string(),
            r.to_string(),
            epidemic_db::GcPolicy::equal_space_tau2(tau, tau1, n, r).to_string(),
        ]
    })
    .collect();
    print_table(
        "§2.1: dormant window τ2 = (τ-τ1)n/r at equal space",
        &["τ", "τ1", "n", "r", "τ2"],
        &rows,
    );

    let resurrected = resurrection_without_certificates(12, 3);
    let report = DormantDeathScenario::default().run(11);
    print_table(
        "§2: deletion semantics",
        &["scenario", "outcome"],
        &[
            vec![
                "naive delete (no certificate)".into(),
                format!("item resurrected = {resurrected}"),
            ],
            vec![
                "dormant certificate, obsolete site rejoins".into(),
                format!(
                    "awakened = {}, obsolete cancelled = {}",
                    report.awakened, report.obsolete_cancelled
                ),
            ],
        ],
    );
}

/// §3.2: push-pull rumor mongering on the CIN with a spatial distribution —
/// find the minimal `k` giving 100% distribution, then measure its traffic
/// and convergence (the paper found them "nearly identical to Table 4").
pub fn spatial_rumor(trials: u32, measure_runs: u64) -> Vec<Vec<String>> {
    let net = cin(&CinConfig::default());
    spatial_rumor_on(
        TrialRunner::new(),
        &net,
        &[
            ("uniform".to_string(), Spatial::Uniform),
            ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
            ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
        ],
        trials,
        40,
        measure_runs,
    )
}

/// As [`spatial_rumor`] but on a caller-provided CIN, distribution list
/// and [`TrialRunner`] (golden tests pin one cell of this on a small
/// network).
pub fn spatial_rumor_on(
    runner: TrialRunner,
    net: &topologies::Cin,
    distributions: &[(String, Spatial)],
    trials: u32,
    max_k: u32,
    measure_runs: u64,
) -> Vec<Vec<String>> {
    let base = RumorConfig::new(
        Direction::PushPull,
        Feedback::Feedback,
        Removal::Counter { k: 1 },
    );
    let mut rows = Vec::new();
    for (label, spatial) in distributions.iter().cloned() {
        let Some(k) = minimum_k_with(runner, &net.topology, spatial, base, trials, max_k) else {
            rows.push(vec![
                label,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let cfg = RumorConfig {
            removal: Removal::Counter { k },
            ..base
        };
        let sim = SpatialRumorSim::new(&net.topology, spatial, cfg);
        let acc = parallel_trials_with(
            runner,
            measure_runs,
            |seed| {
                let r = sim.run(seed + 1000, None);
                let cycles = f64::from(r.cycles.max(1));
                (
                    f64::from(r.t_last),
                    r.compare_traffic.mean_per_link() / cycles,
                    r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                    r.update_traffic.mean_per_link(),
                )
            },
            [0.0f64; 4],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                a
            },
        );
        let t = measure_runs as f64;
        rows.push(vec![
            label,
            k.to_string(),
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    rows
}

/// Prints [`spatial_rumor`].
pub fn print_spatial_rumor(trials: u32, measure_runs: u64) {
    let rows = spatial_rumor(trials, measure_runs);
    print!("{}", render_spatial_rumor(&rows));
}

/// Renders [`spatial_rumor`]-shaped rows to a `String` (golden tests).
pub fn render_spatial_rumor(rows: &[Vec<String>]) -> String {
    crate::render::render_table(
        "§3.2: push-pull rumor mongering on the CIN — minimal k for 100% distribution",
        &[
            "distribution",
            "min k",
            "t_last",
            "cmp avg",
            "cmp Bushey",
            "upd avg",
        ],
        rows,
    )
}

/// Ablation: Table 3's counter-reset-on-useful-contact rule versus
/// monotone counters (pull, feedback, counter).
pub fn print_ablation_counter_reset(n: usize, trials: u64) {
    let rows: Vec<Vec<String>> = [true, false]
        .iter()
        .map(|&reset| {
            let rows = mixing_sweep(n, trials, &[1, 2, 3], |k| {
                RumorEpidemic::new(
                    RumorConfig::new(Direction::Pull, Feedback::Feedback, Removal::Counter { k })
                        .with_reset_on_useful(reset),
                )
            });
            let cells: Vec<String> = rows
                .iter()
                .flat_map(|r| [fmt(r.residue), fmt(r.traffic)])
                .collect();
            let mut row = vec![if reset {
                "reset (footnote)"
            } else {
                "monotone"
            }
            .to_string()];
            row.extend(cells);
            row
        })
        .collect();
    print_table(
        "Ablation: pull counter semantics (residue, traffic per k)",
        &["rule", "s k=1", "m k=1", "s k=2", "m k=2", "s k=3", "m k=3"],
        &rows,
    );
}

/// Ablation: hunting under connection limit 1 (§1.4: infinite hunting
/// makes push and pull equivalent to a complete permutation).
pub fn print_ablation_hunting(n: usize, trials: u64) {
    let rows: Vec<Vec<String>> = [0u32, 1, 4, 16, u32::MAX]
        .iter()
        .map(|&hunt| {
            let driver = RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ))
            .connection_limit(Some(1))
            .hunt_limit(hunt.min(1_000));
            let (s, m) = parallel_trials(
                trials,
                |seed| {
                    let r = driver.run(n, seed ^ 0x5EED);
                    (r.residue, r.traffic)
                },
                (0.0, 0.0),
                |a, r| (a.0 + r.0, a.1 + r.1),
            );
            vec![
                if hunt == u32::MAX {
                    "~inf".into()
                } else {
                    hunt.to_string()
                },
                fmt(s / trials as f64),
                fmt(m / trials as f64),
            ]
        })
        .collect();
    print_table(
        "Ablation: hunt limit under connection limit 1 (push, feedback, counter k=2)",
        &["hunt limit", "residue", "traffic m"],
        &rows,
    );
}

/// Ablation: comparison strategies (§1.3) on a pair of replicas with a
/// large shared history and a small fresh divergence.
pub fn print_ablation_comparison() {
    let rows: Vec<Vec<String>> = [
        ("full", Comparison::Full),
        ("checksum", Comparison::Checksum),
        ("recent list τ=100", Comparison::RecentList { tau: 100 }),
        ("peel back", Comparison::PeelBack),
    ]
    .iter()
    .map(|&(label, comparison)| {
        // 500 shared entries, 3 fresh updates on one side.
        let mut a: Replica<u32, u64> = Replica::new(SiteId::new(0));
        let mut b: Replica<u32, u64> = Replica::new(SiteId::new(1));
        for key in 0..500u32 {
            a.client_update(key, u64::from(key));
        }
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        a.advance_clock(10_000);
        b.advance_clock(10_000);
        for key in 1_000..1_003u32 {
            a.client_update(key, 1);
        }
        let protocol = AntiEntropy::new(Direction::PushPull, comparison);
        let stats = protocol.exchange(&mut a, &mut b);
        assert_eq!(a.db(), b.db(), "all strategies must converge");
        vec![
            label.to_string(),
            stats.total_sent().to_string(),
            stats.entries_scanned.to_string(),
            stats.checksum_exchanges.to_string(),
            stats.full_compare.to_string(),
        ]
    })
    .collect();
    print_table(
        "Ablation: §1.3 comparison strategies (500 shared entries, 3 fresh updates)",
        &[
            "strategy",
            "entries sent",
            "entries scanned",
            "checksums",
            "full compare",
        ],
        &rows,
    );
}

/// Ablation: §1.5 redistribution policies in the Clearinghouse workload.
pub fn print_ablation_redistribution(trials: u64) {
    use epidemic_core::{MailConfig, Redistribution};
    let rows: Vec<Vec<String>> = [
        ("none (conservative)", Redistribution::None),
        ("rumor", Redistribution::Rumor),
        ("re-mail (original CH)", Redistribution::Mail),
    ]
    .iter()
    .map(|&(label, redistribution)| {
        let scenario = ClearinghouseScenario {
            sites: 40,
            mail: MailConfig {
                loss_probability: 0.3,
                queue_capacity: 200,
            },
            updates: 15,
            anti_entropy_every: 8,
            redistribution,
            rumor_k: Some(2),
            max_cycles: 3_000,
        };
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = scenario.run(seed);
                (
                    r.consistent_at.map_or(3_000.0, f64::from),
                    r.mail_delivered as f64,
                    r.ae_repairs as f64,
                )
            },
            (0.0, 0.0, 0.0),
            |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2),
        );
        let t = trials as f64;
        vec![
            label.to_string(),
            fmt(acc.0 / t),
            fmt(acc.1 / t),
            fmt(acc.2 / t),
        ]
    })
    .collect();
    print_table(
        "Ablation: §1.5 redistribution policy (30% mail loss, 40 sites, 15 updates)",
        &[
            "policy",
            "cycles to consistency",
            "mail delivered",
            "AE repairs",
        ],
        &rows,
    );
}

/// §1.3 checksum-window experiment: full-comparison rate and traffic as a
/// function of the recent-update-list window `τ` under a steady update
/// rate. The paper: choose `τ` below the distribution time and "checksum
/// comparisons will usually fail".
pub fn print_checksum_window() {
    use epidemic_sim::steady::SteadyStateSim;
    let sim = SteadyStateSim::default();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let full = sim.run(Comparison::Full, 11);
    rows.push(vec![
        "full (baseline)".into(),
        "1.00".into(),
        fmt(full.entries_per_exchange),
        fmt(full.scanned_per_exchange),
    ]);
    let naive = sim.run(Comparison::Checksum, 11);
    rows.push(vec![
        "naive checksum".into(),
        fmt(naive.full_compare_rate),
        fmt(naive.entries_per_exchange),
        fmt(naive.scanned_per_exchange),
    ]);
    for tau in [10u64, 20, 30, 40, 50, 100, 200, 400] {
        let r = sim.run(Comparison::RecentList { tau }, 11);
        rows.push(vec![
            format!("recent list τ={tau}"),
            fmt(r.full_compare_rate),
            fmt(r.entries_per_exchange),
            fmt(r.scanned_per_exchange),
        ]);
    }
    let peel = sim.run(Comparison::PeelBack, 11);
    rows.push(vec![
        "peel back".into(),
        "0".into(),
        fmt(peel.entries_per_exchange),
        fmt(peel.scanned_per_exchange),
    ]);
    print_table(
        "§1.3: checksum window — 60 sites, 1 update/cycle (10 ticks/cycle), distribution time ≈ 100 ticks",
        &["strategy", "full-compare rate", "entries/exchange", "scanned/exchange"],
        &rows,
    );
}

/// Ablation of the synchronous-cycle assumption: the Table 4 experiment
/// re-run on the event-driven simulator with per-site jittered timers.
pub fn print_async_ablation(trials: u64) {
    use epidemic_sim::event::AsyncAntiEntropySim;
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let net = cin(&CinConfig::default());
    let mut rows = Vec::new();
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sync = AntiEntropySim::new(&net.topology, spatial);
        let asynchronous = AsyncAntiEntropySim::new(&net.topology, spatial, 0.3);
        let acc = parallel_trials(
            trials,
            |seed| {
                let s = sync.run(seed + 71, None);
                let a = asynchronous.run(seed + 71, None);
                (
                    f64::from(s.t_last),
                    a.t_last,
                    s.compare_traffic.mean_per_link() / f64::from(s.cycles.max(1)),
                    a.compare_per_link_period,
                )
            },
            [0.0f64; 4],
            |mut acc, r| {
                for (x, v) in acc.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                acc
            },
        );
        let t = trials as f64;
        rows.push(vec![
            label,
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    print_table(
        "Ablation: synchronous cycles vs event-driven timers (±30% jitter) on the CIN",
        &[
            "distribution",
            "t_last sync (cycles)",
            "t_last async (periods)",
            "cmp/link/cycle sync",
            "cmp/link/period async",
        ],
        &rows,
    );
}

/// §4 future work: the dynamic hierarchy against flat spatial selection on
/// the CIN — convergence, average traffic and the Bushey hot spot.
pub fn print_hierarchy(trials: u64) {
    use epidemic_net::{HierarchicalSampler, Routes};
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let net = cin(&CinConfig::default());
    let routes = Routes::compute(&net.topology);
    let mut rows = Vec::new();

    let mut measure =
        |label: String, sim: &(dyn Fn(u64) -> epidemic_sim::SpatialRunResult + Sync)| {
            let acc = parallel_trials(
                trials,
                |seed| {
                    let r = sim(seed + 13);
                    let cycles = f64::from(r.cycles.max(1));
                    (
                        f64::from(r.t_last),
                        r.compare_traffic.mean_per_link() / cycles,
                        r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                    )
                },
                [0.0f64; 3],
                |mut a, r| {
                    for (x, v) in a.iter_mut().zip([r.0, r.1, r.2]) {
                        *x += v;
                    }
                    a
                },
            );
            let t = trials as f64;
            rows.push(vec![
                label,
                fmt(acc[0] / t),
                fmt(acc[1] / t),
                fmt(acc[2] / t),
            ]);
        };

    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("flat a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = AntiEntropySim::new(&net.topology, spatial);
        measure(label, &|seed| sim.run(seed, None));
    }
    for (reps, long_range) in [(8usize, 0.3f64), (16, 0.3), (16, 0.6)] {
        let sampler = HierarchicalSampler::new(
            &net.topology,
            &routes,
            reps,
            long_range,
            Spatial::QsPower { a: 2.0 },
        );
        let sim = AntiEntropySim::with_selection(&net.topology, sampler);
        measure(format!("hierarchy r={reps} p={long_range}"), &|seed| {
            sim.run(seed, None)
        });
    }
    print_table(
        "§4 future work: dynamic hierarchy vs flat spatial selection (CIN)",
        &[
            "strategy",
            "t_last",
            "cmp avg/link/cycle",
            "cmp Bushey/cycle",
        ],
        &rows,
    );
}

/// The §1.4 epidemic trajectory: the simulated infective fraction along
/// the phase curve `i(s)` against the ODE's closed form, sampled at fixed
/// susceptible fractions.
pub fn print_sir_curve(n: usize, trials: u64) {
    let k = 2;
    let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Coin { k });
    let driver = RumorEpidemic::new(cfg);
    // Average the infective fraction observed at (just below) each sampled
    // susceptible level across trials.
    let samples = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    let sums = parallel_trials(
        trials,
        |seed| {
            let trace = driver.run_traced(n, seed ^ 0xC0FFEE);
            let mut at = [f64::NAN; 9];
            for &(s, i, _) in &trace.points {
                for (slot, &level) in at.iter_mut().zip(&samples) {
                    if s <= level && slot.is_nan() {
                        *slot = i;
                    }
                }
            }
            at
        },
        ([0.0f64; 9], [0u64; 9]),
        |(mut acc, mut counts), at| {
            for idx in 0..9 {
                if !at[idx].is_nan() {
                    acc[idx] += at[idx];
                    counts[idx] += 1;
                }
            }
            (acc, counts)
        },
    );
    let ode = RumorOde::new(k);
    let rows: Vec<Vec<String>> = samples
        .iter()
        .enumerate()
        .map(|(idx, &s)| {
            let sim = if sums.1[idx] > 0 {
                fmt(sums.0[idx] / sums.1[idx] as f64)
            } else {
                "-".into()
            };
            vec![
                fmt(s),
                fmt(ode.i_of_s(s).max(0.0)),
                sim,
                format!("{}/{trials}", sums.1[idx]),
            ]
        })
        .collect();
    print_table(
        "Fig: S/I/R phase curve i(s) — ODE vs simulation (push, feedback, coin, k=2)",
        &["s", "i(s) ODE", "i(s) sim", "trials reaching s"],
        &rows,
    );
}

/// Steady-state anti-entropy on the CIN with recent-update lists: entry
/// traffic (the wire-cost proxy) per link under each distribution — the
/// production Clearinghouse configuration.
pub fn print_cin_steady(trials: u64) {
    use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};
    let net = cin(&CinConfig::default());
    let config = SpatialSteadyConfig::default();
    let mut rows = Vec::new();
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = SpatialSteadySim::new(&net.topology, spatial, config);
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = sim.run(seed + 31);
                (
                    r.conversations_per_link_cycle,
                    r.entries_per_link_cycle,
                    r.entry_traffic.at(net.bushey_link) as f64 / f64::from(r.measured_cycles),
                    r.full_compare_rate,
                )
            },
            [0.0f64; 4],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                a
            },
        );
        let t = trials as f64;
        rows.push(vec![
            label,
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    print_table(
        "Steady state on the CIN: recent-list anti-entropy, 2 updates/cycle",
        &[
            "distribution",
            "conv/link/cycle",
            "entries/link/cycle",
            "entries Bushey/cycle",
            "full-compare rate",
        ],
        &rows,
    );
}

/// The sharded-engine counterpart of [`print_cin_steady`]'s measurement:
/// one row per spatial distribution, each trial run on the deterministic
/// shard-parallel engine. Exposed (with explicit runner/shard/worker
/// inputs) so the determinism suite can pin that the rendered rows are
/// byte-identical at any worker count.
pub fn cin_steady_sharded_rows(
    runner: TrialRunner,
    net: &topologies::Cin,
    trials: u64,
    shards: usize,
    workers: usize,
) -> Vec<Vec<String>> {
    use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};
    let config = SpatialSteadyConfig::default();
    let mut rows = Vec::new();
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = SpatialSteadySim::new(&net.topology, spatial, config);
        let acc = crate::parallel_trials_with(
            runner,
            trials,
            |seed| {
                let r = sim.run_sharded(seed + 31, shards, workers);
                (
                    r.conversations_per_link_cycle,
                    r.entries_per_link_cycle,
                    r.entry_traffic.at(net.bushey_link) as f64 / f64::from(r.measured_cycles),
                    r.full_compare_rate,
                )
            },
            [0.0f64; 4],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                a
            },
        );
        let t = trials as f64;
        rows.push(vec![
            label,
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    rows
}

/// As [`print_cin_steady`], but on the deterministic shard-parallel
/// engine (a different RNG universe — numbers agree statistically, not
/// byte-for-byte). The thread budget is split between trial fan-out and
/// per-trial shard workers so nesting never oversubscribes.
pub fn print_cin_steady_sharded(trials: u64) {
    let net = cin(&CinConfig::default());
    let shards = epidemic_sim::engine::default_shards();
    let runner = TrialRunner::new();
    let (trial_workers, shard_workers) = runner.split_budget(trials, shards);
    let rows = cin_steady_sharded_rows(
        runner.threads(trial_workers),
        &net,
        trials,
        shards,
        shard_workers,
    );
    print_table(
        &format!(
            "Steady state on the CIN (sharded engine, {shards} shards): \
             recent-list anti-entropy, 2 updates/cycle"
        ),
        &[
            "distribution",
            "conv/link/cycle",
            "entries/link/cycle",
            "entries Bushey/cycle",
            "full-compare rate",
        ],
        &rows,
    );
}

/// Weighted-CIN ablation: modelling the transatlantic phone lines as
/// high-cost links. `d`-seen distance pushes `Q_s(d)`'s sorted lists
/// around, so Europe appears "farther" and crossing traffic falls further
/// still — at the price of slower transatlantic convergence.
pub fn print_weighted_cin(trials: u64) {
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let mut rows = Vec::new();
    for cost in [1u32, 3, 6] {
        let net = cin(&CinConfig {
            transatlantic_cost: cost,
            ..CinConfig::default()
        });
        let sim = AntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 });
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = sim.run(seed + 47, None);
                let cycles = f64::from(r.cycles.max(1));
                (
                    f64::from(r.t_last),
                    r.compare_traffic.mean_per_link() / cycles,
                    r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                )
            },
            [0.0f64; 3],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2]) {
                    *x += v;
                }
                a
            },
        );
        let t = trials as f64;
        rows.push(vec![
            cost.to_string(),
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
        ]);
    }
    print_table(
        "Ablation: transatlantic link cost under Qs^-2 anti-entropy (CIN)",
        &[
            "transatlantic cost",
            "t_last",
            "cmp avg/link/cycle",
            "cmp Bushey/cycle",
        ],
        &rows,
    );
}

/// §2.1's scaling warning: dormant death certificates fail catastrophically
/// once the expected propagation time exceeds `τ₁`, so `τ₁` (and the space
/// at each server) "eventually must grow as O(log n)". We estimate
/// `P(cover time > τ₁)` for push-pull anti-entropy across network sizes.
pub fn print_dc_scaling(trials: u64) {
    let taus = [8u32, 10, 12, 14];
    let rows: Vec<Vec<String>> = [64usize, 256, 1024, 4096]
        .iter()
        .map(|&n| {
            let driver = AntiEntropyEpidemic::new(Direction::PushPull);
            let cover_times: Vec<f64> = {
                parallel_trials(
                    trials,
                    |seed| f64::from(driver.run(n, seed ^ 0xDC).cycles),
                    Vec::new(),
                    |mut v, x| {
                        v.push(x);
                        v
                    },
                )
            };
            let mut row = vec![
                n.to_string(),
                fmt(cover_times.iter().sum::<f64>() / cover_times.len() as f64),
            ];
            for &tau in &taus {
                let exceed = cover_times.iter().filter(|&&c| c > f64::from(tau)).count();
                row.push(fmt(exceed as f64 / cover_times.len() as f64));
            }
            row
        })
        .collect();
    print_table(
        "§2.1: P(propagation time > τ1) vs n — why τ1 must grow as O(log n)",
        &[
            "n",
            "mean cover time",
            "P(>8)",
            "P(>10)",
            "P(>12)",
            "P(>14)",
        ],
        &rows,
    );
}

/// Churn ablation: spatial anti-entropy on the CIN while a fraction of the
/// fleet is down at any moment (§2's hours-to-days outages). Anti-entropy
/// completes regardless; convergence stretches roughly like 1/(up
/// fraction)².
pub fn print_churn(trials: u64) {
    use epidemic_sim::failures::{Churn, ChurnedAntiEntropySim};
    let net = cin(&CinConfig::default());
    let mut rows = Vec::new();
    for (label, churn) in [
        (
            "0% down",
            Churn {
                fail: 0.0,
                recover: 1.0,
            },
        ),
        (
            "~10% down",
            Churn {
                fail: 0.02,
                recover: 0.18,
            },
        ),
        (
            "~25% down",
            Churn {
                fail: 0.05,
                recover: 0.15,
            },
        ),
        (
            "~50% down",
            Churn {
                fail: 0.10,
                recover: 0.10,
            },
        ),
    ] {
        let sim = ChurnedAntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 }, churn);
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = sim.run(seed + 91, None);
                (
                    f64::from(r.t_last),
                    r.observed_down_fraction,
                    f64::from(u8::from(r.complete)),
                )
            },
            (0.0, 0.0, 0.0),
            |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2),
        );
        let t = trials as f64;
        rows.push(vec![
            label.to_string(),
            fmt(acc.1 / t),
            fmt(acc.0 / t),
            fmt(acc.2 / t),
        ]);
    }
    print_table(
        "Ablation: site churn under Qs^-2 anti-entropy (CIN)",
        &[
            "churn",
            "observed down fraction",
            "t_last",
            "completion rate",
        ],
        &rows,
    );
}

/// §4 asks to "characterize the pathological topologies": sweep topology
/// families and report how uniform vs `Q_s(d)^-2` anti-entropy behaves on
/// each — convergence time and the hottest link's load.
pub fn print_topology_robustness(trials: u64) {
    use epidemic_net::topologies::{binary_tree, grid, line, random_connected, ring, waxman};
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let topos: Vec<(&str, epidemic_net::Topology)> = vec![
        ("line(64)", line(64)),
        ("ring(64)", ring(64)),
        ("grid(8x8)", grid(&[8, 8])),
        ("tree(depth 6)", binary_tree(6)),
        ("ER(64, p=.05)", random_connected(64, 0.05, 5)),
        ("waxman(64)", waxman(64, 0.9, 0.15, 5)),
    ];
    let mut rows = Vec::new();
    for (label, topo) in &topos {
        let mut cells = vec![label.to_string()];
        for spatial in [Spatial::Uniform, Spatial::QsPower { a: 2.0 }] {
            let sim = AntiEntropySim::new(topo, spatial);
            let acc = parallel_trials(
                trials,
                |seed| {
                    let r = sim.run(seed + 3, None);
                    let cycles = f64::from(r.cycles.max(1));
                    let hottest = r
                        .compare_traffic
                        .hottest()
                        .map_or(0.0, |(_, c)| c as f64 / cycles);
                    (f64::from(r.t_last), hottest)
                },
                (0.0, 0.0),
                |a, r| (a.0 + r.0, a.1 + r.1),
            );
            let t = trials as f64;
            cells.push(fmt(acc.0 / t));
            cells.push(fmt(acc.1 / t));
        }
        rows.push(cells);
    }
    print_table(
        "Fig: topology robustness — anti-entropy across families (64 sites)",
        &[
            "topology",
            "t_last unif",
            "hot link unif",
            "t_last Qs^-2",
            "hot link Qs^-2",
        ],
        &rows,
    );
}

/// §1.4's update-rate trade-off: push goes silent on a quiescent network
/// while pull keeps polling; under load, pull's polls almost always find
/// rumors and its superior residue pays off — "our own CIN application has
/// a high enough update rate to warrant the use of pull".
pub fn print_pull_vs_push_rate(trials: u64) {
    use epidemic_sim::rumor_steady::{RumorSteadyConfig, RumorSteadySim};
    let mut rows = Vec::new();
    for rate in [0.0f64, 0.25, 1.0, 4.0] {
        for (label, direction) in [("push", Direction::Push), ("pull", Direction::Pull)] {
            let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
            let config = RumorSteadyConfig {
                updates_per_cycle: rate,
                ..RumorSteadyConfig::default()
            };
            let sim = RumorSteadySim::new(cfg, config);
            let acc = parallel_trials(
                trials,
                |seed| {
                    let r = sim.run(seed + 5);
                    (
                        r.coverage,
                        r.messages_per_delivery,
                        r.fruitless_per_cycle,
                        r.contacts_per_cycle,
                    )
                },
                [0.0f64; 4],
                |mut a, r| {
                    for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                        *x += v;
                    }
                    a
                },
            );
            let t = trials as f64;
            rows.push(vec![
                format!("{rate} upd/cycle, {label}"),
                fmt(acc[0] / t),
                fmt(acc[1] / t),
                fmt(acc[2] / t),
                fmt(acc[3] / t),
            ]);
        }
    }
    print_table(
        "§1.4: push vs pull across update rates (200 sites, k=2)",
        &[
            "workload",
            "coverage",
            "msgs/delivery",
            "fruitless/cycle",
            "contacts/cycle",
        ],
        &rows,
    );
}

/// Environment variable capping the largest `n` in the megascale sweep.
///
/// The full sweep runs to 10⁶ sites, which is minutes of wall clock and
/// hundreds of MB of RSS — right for `repro`, wrong for a test or a CI
/// smoke job. Setting e.g. `EPIDEMIC_MEGASCALE_MAX_N=10000` keeps only
/// the points with `n ≤ 10⁴`.
pub const MEGASCALE_MAX_N_ENV: &str = "EPIDEMIC_MEGASCALE_MAX_N";

fn megascale_max_n() -> usize {
    match std::env::var(MEGASCALE_MAX_N_ENV) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{MEGASCALE_MAX_N_ENV} must be an integer, got {v:?}")),
        Err(_) => 1_000_000,
    }
}

/// Fig-megascale: the paper's workhorse rumor variant (push, feedback,
/// coin `k=4`) at 10⁴–10⁶ sites, on uniform complete mixing and on a
/// Barabási–Albert scale-free contact graph (`m = 2`), crossed with the
/// storage backend.
///
/// The backends are observationally equivalent, so at each `(n,
/// topology)` point the protocol columns (residue, `t_last`, traffic,
/// cycles) are identical across backends and only the cost columns —
/// seconds, allocations, peak RSS — differ. `n = 10⁴` runs on **both**
/// backends to make that comparison explicit; the larger points run flat
/// only (the BTree backend at 10⁶ is exactly the slow case the flat
/// backend exists to replace). The allocations column needs the
/// `count-allocs` build (it reads "n/a" otherwise) and peak RSS is the
/// *process* high-water mark, monotone across rows — see
/// [`crate::rss`].
pub fn megascale(max_n: usize) -> Vec<Vec<String>> {
    use epidemic_db::Backend;
    use epidemic_net::DegreeGraph;
    use epidemic_sim::MegascaleSim;

    let sim = MegascaleSim::new();
    let mut rows = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        if n > max_n {
            continue;
        }
        let backends: &[Backend] = if n == 10_000 {
            &[Backend::BTree, Backend::Flat]
        } else {
            &[Backend::Flat]
        };
        for scale_free in [false, true] {
            // One graph per (n, topology) point, shared across backends so
            // the runs are literally the same epidemic.
            let graph = scale_free.then(|| DegreeGraph::scale_free(n, 2, 1987));
            let seed = 1987 ^ n as u64;
            for &backend in backends {
                let allocs_before = crate::alloc_counter::allocations();
                let start = std::time::Instant::now();
                let r = match &graph {
                    Some(g) => sim.run_scale_free(g, seed, backend),
                    None => sim.run_uniform(n, seed, backend),
                };
                let seconds = start.elapsed().as_secs_f64();
                let allocations = crate::alloc_counter::allocations() - allocs_before;
                rows.push(vec![
                    n.to_string(),
                    if scale_free {
                        "scale-free m=2"
                    } else {
                        "uniform"
                    }
                    .to_string(),
                    match backend {
                        Backend::BTree => "btree",
                        Backend::Flat => "flat",
                    }
                    .to_string(),
                    fmt(r.residue),
                    fmt(r.t_last),
                    fmt(r.traffic),
                    r.cycles.to_string(),
                    format!("{seconds:.2}"),
                    if crate::alloc_counter::enabled() {
                        allocations.to_string()
                    } else {
                        "n/a".to_string()
                    },
                    (crate::rss::peak_rss_kb() / 1024).to_string(),
                ]);
            }
        }
    }
    rows
}

/// Prints [`megascale`], honoring [`MEGASCALE_MAX_N_ENV`].
pub fn print_megascale() {
    let max_n = megascale_max_n();
    let rows = megascale(max_n);
    print_table(
        "Fig: megascale rumor epidemics (push, feedback, coin k=4) — \
         n x topology x storage backend",
        &[
            "n",
            "topology",
            "backend",
            "residue",
            "t_last",
            "traffic m",
            "cycles",
            "seconds",
            "allocations",
            "peak RSS MB",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rumor_ode_rows_track_theory() {
        let rows = rumor_ode(300, 20);
        assert_eq!(rows.len(), 8);
        // Column 1 is the ODE residue for k=1 ≈ 0.2.
        let ode_k1: f64 = rows[0][1].parse().unwrap();
        assert!((ode_k1 - 0.2032).abs() < 0.01);
    }

    #[test]
    fn ae_convergence_rows_are_ordered() {
        let rows = ae_convergence(5);
        // Cover time grows with n for push.
        let push: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(push.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn line_traffic_rows_have_expected_shape() {
        let rows = line_traffic();
        // Uniform column roughly doubles per size doubling; a=3 column is flat.
        let first: f64 = rows[0][1].parse().unwrap();
        let last: f64 = rows[5][1].parse().unwrap();
        assert!(last / first > 16.0);
        let a3_first: f64 = rows[0][5].parse().unwrap();
        let a3_last: f64 = rows[5][5].parse().unwrap();
        assert!(a3_last / a3_first < 1.5);
    }

    #[test]
    fn figure1_failure_decreases_in_k() {
        let rows = figure1(60);
        let k1: f64 = rows[0][1].parse().unwrap();
        let k6: f64 = rows[5][1].parse().unwrap();
        assert!(k6 <= k1);
    }
}
