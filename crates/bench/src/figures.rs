//! Reproductions of the paper's figures, displayed equations and ablation
//! studies (everything in the evaluation that is not a numbered table).
//!
//! Every figure is expressed as one or more [`FigTable`]s plus (for the
//! statistically deep sweeps) streaming [`AggEntry`] aggregates, behind a
//! single [`figure_data`] dispatcher. `repro` prints through
//! [`print_figure`] and writes `--trace`/`--json` artifacts through
//! [`figure_artifacts`], so no experiment is ever untraced.

use epidemic_analysis::{
    mean_line_traffic, pull_cycles_until, push_epidemic_time, residue_from_traffic, RumorOde,
};
use epidemic_core::anti_entropy::{AntiEntropy, Comparison};
use epidemic_core::{Direction, Feedback, Removal, Replica, RumorConfig};
use epidemic_db::SiteId;
use epidemic_net::topologies::{self, cin, CinConfig};
use epidemic_net::Spatial;
use epidemic_sim::engine::AggregateObserver;
use epidemic_sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::scenario::legacy::{
    resurrection_without_certificates, ClearinghouseScenario, DormantDeathScenario,
};
use epidemic_sim::spatial_rumor::{failure_probability, minimum_k_with, SpatialRumorSim};
use epidemic_trace::RunAggregate;

use crate::render::{fmt, FigTable};
use crate::tables::mixing_sweep_aggregated;
use crate::trace::{agg_json, AggEntry, TableArtifacts};
use crate::{parallel_trials, parallel_trials_with};

/// §1.4 rumor ODE: predicted residue `s = e^{-(k+1)(1-s)}` versus the
/// simulated feedback+coin epidemic. Returns the formatted rows plus one
/// merged streaming aggregate per `k` (observers never touch the RNG, so
/// the rows are identical to an unobserved sweep's).
pub fn rumor_ode_data(
    runner: TrialRunner,
    n: usize,
    trials: u64,
) -> (Vec<Vec<String>>, Vec<AggEntry>) {
    let ks = [1, 2, 3, 4, 5, 6, 7, 8];
    let swept = mixing_sweep_aggregated(runner, n, trials, &ks, |k| {
        RumorEpidemic::new(RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Coin { k },
        ))
    });
    let mut rows = Vec::new();
    let mut aggregates = Vec::new();
    for (row, agg) in swept {
        let k = row.k;
        let ode = RumorOde::new(k).final_residue();
        rows.push(vec![
            k.to_string(),
            fmt(ode),
            fmt(row.residue),
            fmt(row.traffic),
        ]);
        aggregates.push(AggEntry {
            label: format!("k={k}"),
            params: vec![
                ("n".to_string(), n.to_string()),
                ("trials".to_string(), trials.to_string()),
                ("k".to_string(), k.to_string()),
            ],
            observed: vec![
                ("ode_residue".to_string(), ode),
                ("residue".to_string(), row.residue),
                ("traffic".to_string(), row.traffic),
            ],
            agg,
        });
    }
    (rows, aggregates)
}

/// The rows of [`rumor_ode_data`] on a default runner (pinned by tests).
pub fn rumor_ode(n: usize, trials: u64) -> Vec<Vec<String>> {
    rumor_ode_data(TrialRunner::new(), n, trials).0
}

/// §1.4 `s = e^{-m}` law: measured (m, s) pairs for several push variants
/// against the prediction, including the connection-limited λ variants.
pub fn residue_traffic(n: usize, trials: u64) -> Vec<Vec<String>> {
    let variants: Vec<(&str, RumorConfig, Option<u32>)> = vec![
        (
            "feedback+counter",
            RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ),
            None,
        ),
        (
            "blind+coin",
            RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Coin { k: 3 }),
            None,
        ),
        (
            "feedback+counter, climit 1",
            RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ),
            Some(1),
        ),
        (
            "minimization (push-pull)",
            RumorConfig::new(
                Direction::PushPull,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            )
            .with_minimization(),
            None,
        ),
    ];
    variants
        .into_iter()
        .map(|(label, cfg, climit)| {
            let driver = RumorEpidemic::new(cfg).connection_limit(climit);
            let (s, m) = parallel_trials(
                trials,
                |seed| {
                    let r = driver.run(n, seed ^ 0xABCD);
                    (r.residue, r.traffic)
                },
                (0.0, 0.0),
                |a, r| (a.0 + r.0, a.1 + r.1),
            );
            let (s, m) = (s / trials as f64, m / trials as f64);
            vec![
                label.to_string(),
                fmt(m),
                fmt(s),
                fmt(residue_from_traffic(m)),
                fmt(epidemic_analysis::push_connection_limited_residue(m)),
            ]
        })
        .collect()
}

/// §1.3 anti-entropy convergence: measured cover time for push vs the
/// `log₂n + ln n` prediction, and pull's doubly-exponential tail. The
/// push direction (the one the closed form predicts) streams through an
/// [`AggregateObserver`], yielding one merged aggregate per `n`.
pub fn ae_convergence_data(runner: TrialRunner, trials: u64) -> (Vec<Vec<String>>, Vec<AggEntry>) {
    let mut rows = Vec::new();
    let mut aggregates = Vec::new();
    for &n in &[100usize, 300, 1000, 3000, 10_000] {
        let (push_sum, agg) = parallel_trials_with(
            runner,
            trials,
            |seed| {
                let mut sink = AggregateObserver::new();
                let r = AntiEntropyEpidemic::new(Direction::Push).run_observed(n, seed, &mut sink);
                (f64::from(r.cycles), sink.finish())
            },
            (0.0f64, RunAggregate::default()),
            |(sum, mut agg), (cycles, trial_agg)| {
                agg.merge(&trial_agg);
                (sum + cycles, agg)
            },
        );
        let push = push_sum / trials as f64;
        let mean = |direction| {
            parallel_trials_with(
                runner,
                trials,
                |seed| f64::from(AntiEntropyEpidemic::new(direction).run(n, seed).cycles),
                0.0,
                |a, x| a + x,
            ) / trials as f64
        };
        let pull = mean(Direction::Pull);
        let pushpull = mean(Direction::PushPull);
        let predicted = push_epidemic_time(n as f64);
        rows.push(vec![
            n.to_string(),
            fmt(push),
            fmt(predicted),
            fmt(pull),
            fmt(pushpull),
            // Pull tail: cycles from 10% susceptible to < 1/n by p².
            fmt(f64::from(pull_cycles_until(0.1, 1.0 / n as f64))),
        ]);
        aggregates.push(AggEntry {
            label: format!("push n={n}"),
            params: vec![
                ("n".to_string(), n.to_string()),
                ("trials".to_string(), trials.to_string()),
                ("direction".to_string(), "push".to_string()),
            ],
            observed: vec![
                ("cycles_mean".to_string(), push),
                ("predicted_log2_ln".to_string(), predicted),
            ],
            agg,
        });
    }
    (rows, aggregates)
}

/// The rows of [`ae_convergence_data`] on a default runner (pinned by
/// tests).
pub fn ae_convergence(trials: u64) -> Vec<Vec<String>> {
    ae_convergence_data(TrialRunner::new(), trials).0
}

/// §3 line-traffic scaling `T(n)` for `d^-a`: exact expectation per regime.
pub fn line_traffic() -> Vec<Vec<String>> {
    let sizes = [100usize, 200, 400, 800, 1600, 3200];
    let exps = [0.0, 1.0, 1.5, 2.0, 3.0];
    sizes
        .iter()
        .map(|&n| {
            let mut row = vec![n.to_string()];
            for &a in &exps {
                row.push(fmt(mean_line_traffic(n, a)));
            }
            row
        })
        .collect()
}

/// [`line_traffic`] as a [`FigTable`].
pub fn line_traffic_table() -> FigTable {
    FigTable::new(
        "Fig: T(n), expected traffic/link on a line for p ~ d^-a (O(n), n/log n, n^(2-a), log n, O(1))",
        &["n", "a=0 (uniform)", "a=1", "a=1.5", "a=2", "a=3"],
        line_traffic(),
    )
}

/// Figure 1 pathology: failure probability of push and pull rumor
/// mongering between the s–t pair under `Q_s(d)^-2`, per `k`.
pub fn figure1(trials: u32) -> Vec<Vec<String>> {
    let topo = topologies::figure1(30);
    let s = topo.node_by_label("s").expect("site s exists");
    (1..=6u32)
        .map(|k| {
            let push = failure_probability(
                &topo,
                Spatial::QsPower { a: 2.0 },
                RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k }),
                trials,
                Some(s),
            );
            let pull = failure_probability(
                &topo,
                Spatial::QsPower { a: 2.0 },
                RumorConfig::new(Direction::Pull, Feedback::Feedback, Removal::Counter { k }),
                trials,
                Some(s),
            );
            let uniform_push = failure_probability(
                &topo,
                Spatial::Uniform,
                RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k }),
                trials,
                Some(s),
            );
            vec![k.to_string(), fmt(push), fmt(pull), fmt(uniform_push)]
        })
        .collect()
}

/// [`figure1`] as a [`FigTable`].
pub fn figure1_table(trials: u32) -> FigTable {
    FigTable::new(
        "Fig 1: failure probability on the s-t pathology (m=30, Qs^-2), update injected at s",
        &["k", "push Qs^-2", "pull Qs^-2", "push uniform"],
        figure1(trials),
    )
}

/// Figure 2 pathology: probability that the distant site `s` misses a
/// push rumor injected inside the binary tree.
pub fn figure2(trials: u32) -> Vec<Vec<String>> {
    let topo = topologies::figure2(5, 7); // 31 tree sites + distant s
    let root = topo.node_by_label("t0").expect("root exists");
    let s = topo.node_by_label("s").expect("site s exists");
    (1..=6u32)
        .map(|k| {
            let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k });
            let sim = SpatialRumorSim::new(&topo, Spatial::QsPower { a: 2.0 }, cfg);
            let missed_s = parallel_trials(
                u64::from(trials),
                |t| {
                    let r = sim.run(t + 17, Some(root));
                    r.susceptible_sites.contains(&s)
                },
                0usize,
                |acc, missed| acc + usize::from(missed),
            );
            let total_failures =
                failure_probability(&topo, Spatial::QsPower { a: 2.0 }, cfg, trials, Some(root));
            vec![
                k.to_string(),
                fmt(missed_s as f64 / f64::from(trials)),
                fmt(total_failures),
            ]
        })
        .collect()
}

/// [`figure2`] as a [`FigTable`].
pub fn figure2_table(trials: u32) -> FigTable {
    FigTable::new(
        "Fig 2: binary tree + distant site s (push, Qs^-2), update injected at the root",
        &["k", "P(distant s missed)", "P(any failure)"],
        figure2(trials),
    )
}

/// §2 death certificates: the equal-space law, the resurrection failure
/// and the dormant-certificate immune response (two tables).
pub fn death_certificates_tables() -> Vec<FigTable> {
    // Equal-space law τ₂ = (τ - τ₁)·n/r (§2.1).
    let rows: Vec<Vec<String>> = [
        (30u64, 15u64, 300u64, 4u64),
        (30, 15, 300, 8),
        (60, 30, 1000, 6),
    ]
    .iter()
    .map(|&(tau, tau1, n, r)| {
        vec![
            tau.to_string(),
            tau1.to_string(),
            n.to_string(),
            r.to_string(),
            epidemic_db::GcPolicy::equal_space_tau2(tau, tau1, n, r).to_string(),
        ]
    })
    .collect();
    let equal_space = FigTable::new(
        "§2.1: dormant window τ2 = (τ-τ1)n/r at equal space",
        &["τ", "τ1", "n", "r", "τ2"],
        rows,
    );

    let resurrected = resurrection_without_certificates(12, 3);
    let report = DormantDeathScenario::default().run(11);
    let semantics = FigTable::new(
        "§2: deletion semantics",
        &["scenario", "outcome"],
        vec![
            vec![
                "naive delete (no certificate)".into(),
                format!("item resurrected = {resurrected}"),
            ],
            vec![
                "dormant certificate, obsolete site rejoins".into(),
                format!(
                    "awakened = {}, obsolete cancelled = {}",
                    report.awakened, report.obsolete_cancelled
                ),
            ],
        ],
    );
    vec![equal_space, semantics]
}

/// §3.2: push-pull rumor mongering on the CIN with a spatial distribution —
/// find the minimal `k` giving 100% distribution, then measure its traffic
/// and convergence (the paper found them "nearly identical to Table 4").
pub fn spatial_rumor(trials: u32, measure_runs: u64) -> Vec<Vec<String>> {
    let net = cin(&CinConfig::default());
    spatial_rumor_on(
        TrialRunner::new(),
        &net,
        &[
            ("uniform".to_string(), Spatial::Uniform),
            ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
            ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
        ],
        trials,
        40,
        measure_runs,
    )
}

/// As [`spatial_rumor`] but on a caller-provided CIN, distribution list
/// and [`TrialRunner`] (golden tests pin one cell of this on a small
/// network).
pub fn spatial_rumor_on(
    runner: TrialRunner,
    net: &topologies::Cin,
    distributions: &[(String, Spatial)],
    trials: u32,
    max_k: u32,
    measure_runs: u64,
) -> Vec<Vec<String>> {
    let base = RumorConfig::new(
        Direction::PushPull,
        Feedback::Feedback,
        Removal::Counter { k: 1 },
    );
    let mut rows = Vec::new();
    for (label, spatial) in distributions.iter().cloned() {
        let Some(k) = minimum_k_with(runner, &net.topology, spatial, base, trials, max_k) else {
            rows.push(vec![
                label,
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let cfg = RumorConfig {
            removal: Removal::Counter { k },
            ..base
        };
        let sim = SpatialRumorSim::new(&net.topology, spatial, cfg);
        let acc = parallel_trials_with(
            runner,
            measure_runs,
            |seed| {
                let r = sim.run(seed + 1000, None);
                let cycles = f64::from(r.cycles.max(1));
                (
                    f64::from(r.t_last),
                    r.compare_traffic.mean_per_link() / cycles,
                    r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                    r.update_traffic.mean_per_link(),
                )
            },
            [0.0f64; 4],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                a
            },
        );
        let t = measure_runs as f64;
        rows.push(vec![
            label,
            k.to_string(),
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    rows
}

/// [`spatial_rumor`]-shaped rows as a [`FigTable`].
pub fn spatial_rumor_table(rows: Vec<Vec<String>>) -> FigTable {
    FigTable::new(
        "§3.2: push-pull rumor mongering on the CIN — minimal k for 100% distribution",
        &[
            "distribution",
            "min k",
            "t_last",
            "cmp avg",
            "cmp Bushey",
            "upd avg",
        ],
        rows,
    )
}

/// Renders [`spatial_rumor`]-shaped rows to a `String` (golden tests).
pub fn render_spatial_rumor(rows: &[Vec<String>]) -> String {
    spatial_rumor_table(rows.to_vec()).render()
}

/// Ablation: Table 3's counter-reset-on-useful-contact rule versus
/// monotone counters (pull, feedback, counter).
pub fn counter_reset_table(n: usize, trials: u64) -> FigTable {
    let rows: Vec<Vec<String>> = [true, false]
        .iter()
        .map(|&reset| {
            let rows = crate::tables::mixing_sweep(n, trials, &[1, 2, 3], |k| {
                RumorEpidemic::new(
                    RumorConfig::new(Direction::Pull, Feedback::Feedback, Removal::Counter { k })
                        .with_reset_on_useful(reset),
                )
            });
            let cells: Vec<String> = rows
                .iter()
                .flat_map(|r| [fmt(r.residue), fmt(r.traffic)])
                .collect();
            let mut row = vec![if reset {
                "reset (footnote)"
            } else {
                "monotone"
            }
            .to_string()];
            row.extend(cells);
            row
        })
        .collect();
    FigTable::new(
        "Ablation: pull counter semantics (residue, traffic per k)",
        &["rule", "s k=1", "m k=1", "s k=2", "m k=2", "s k=3", "m k=3"],
        rows,
    )
}

/// Ablation: hunting under connection limit 1 (§1.4: infinite hunting
/// makes push and pull equivalent to a complete permutation).
pub fn hunting_table(n: usize, trials: u64) -> FigTable {
    let rows: Vec<Vec<String>> = [0u32, 1, 4, 16, u32::MAX]
        .iter()
        .map(|&hunt| {
            let driver = RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ))
            .connection_limit(Some(1))
            .hunt_limit(hunt.min(1_000));
            let (s, m) = parallel_trials(
                trials,
                |seed| {
                    let r = driver.run(n, seed ^ 0x5EED);
                    (r.residue, r.traffic)
                },
                (0.0, 0.0),
                |a, r| (a.0 + r.0, a.1 + r.1),
            );
            vec![
                if hunt == u32::MAX {
                    "~inf".into()
                } else {
                    hunt.to_string()
                },
                fmt(s / trials as f64),
                fmt(m / trials as f64),
            ]
        })
        .collect();
    FigTable::new(
        "Ablation: hunt limit under connection limit 1 (push, feedback, counter k=2)",
        &["hunt limit", "residue", "traffic m"],
        rows,
    )
}

/// Ablation: comparison strategies (§1.3) on a pair of replicas with a
/// large shared history and a small fresh divergence.
pub fn comparison_table() -> FigTable {
    let rows: Vec<Vec<String>> = [
        ("full", Comparison::Full),
        ("checksum", Comparison::Checksum),
        ("recent list τ=100", Comparison::RecentList { tau: 100 }),
        ("peel back", Comparison::PeelBack),
    ]
    .iter()
    .map(|&(label, comparison)| {
        // 500 shared entries, 3 fresh updates on one side.
        let mut a: Replica<u32, u64> = Replica::new(SiteId::new(0));
        let mut b: Replica<u32, u64> = Replica::new(SiteId::new(1));
        for key in 0..500u32 {
            a.client_update(key, u64::from(key));
        }
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        a.advance_clock(10_000);
        b.advance_clock(10_000);
        for key in 1_000..1_003u32 {
            a.client_update(key, 1);
        }
        let protocol = AntiEntropy::new(Direction::PushPull, comparison);
        let stats = protocol.exchange(&mut a, &mut b);
        assert_eq!(a.db(), b.db(), "all strategies must converge");
        vec![
            label.to_string(),
            stats.total_sent().to_string(),
            stats.entries_scanned.to_string(),
            stats.checksum_exchanges.to_string(),
            stats.full_compare.to_string(),
        ]
    })
    .collect();
    FigTable::new(
        "Ablation: §1.3 comparison strategies (500 shared entries, 3 fresh updates)",
        &[
            "strategy",
            "entries sent",
            "entries scanned",
            "checksums",
            "full compare",
        ],
        rows,
    )
}

/// Ablation: §1.5 redistribution policies in the Clearinghouse workload.
pub fn redistribution_table(trials: u64) -> FigTable {
    use epidemic_core::{MailConfig, Redistribution};
    let rows: Vec<Vec<String>> = [
        ("none (conservative)", Redistribution::None),
        ("rumor", Redistribution::Rumor),
        ("re-mail (original CH)", Redistribution::Mail),
    ]
    .iter()
    .map(|&(label, redistribution)| {
        let scenario = ClearinghouseScenario {
            sites: 40,
            mail: MailConfig {
                loss_probability: 0.3,
                queue_capacity: 200,
            },
            updates: 15,
            anti_entropy_every: 8,
            redistribution,
            rumor_k: Some(2),
            max_cycles: 3_000,
        };
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = scenario.run(seed);
                (
                    r.consistent_at.map_or(3_000.0, f64::from),
                    r.mail_delivered as f64,
                    r.ae_repairs as f64,
                )
            },
            (0.0, 0.0, 0.0),
            |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2),
        );
        let t = trials as f64;
        vec![
            label.to_string(),
            fmt(acc.0 / t),
            fmt(acc.1 / t),
            fmt(acc.2 / t),
        ]
    })
    .collect();
    FigTable::new(
        "Ablation: §1.5 redistribution policy (30% mail loss, 40 sites, 15 updates)",
        &[
            "policy",
            "cycles to consistency",
            "mail delivered",
            "AE repairs",
        ],
        rows,
    )
}

/// §1.3 checksum-window experiment: full-comparison rate and traffic as a
/// function of the recent-update-list window `τ` under a steady update
/// rate. The paper: choose `τ` below the distribution time and "checksum
/// comparisons will usually fail".
pub fn checksum_window_table() -> FigTable {
    use epidemic_sim::steady::SteadyStateSim;
    let sim = SteadyStateSim::default();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let full = sim.run(Comparison::Full, 11);
    rows.push(vec![
        "full (baseline)".into(),
        "1.00".into(),
        fmt(full.entries_per_exchange),
        fmt(full.scanned_per_exchange),
    ]);
    let naive = sim.run(Comparison::Checksum, 11);
    rows.push(vec![
        "naive checksum".into(),
        fmt(naive.full_compare_rate),
        fmt(naive.entries_per_exchange),
        fmt(naive.scanned_per_exchange),
    ]);
    for tau in [10u64, 20, 30, 40, 50, 100, 200, 400] {
        let r = sim.run(Comparison::RecentList { tau }, 11);
        rows.push(vec![
            format!("recent list τ={tau}"),
            fmt(r.full_compare_rate),
            fmt(r.entries_per_exchange),
            fmt(r.scanned_per_exchange),
        ]);
    }
    let peel = sim.run(Comparison::PeelBack, 11);
    rows.push(vec![
        "peel back".into(),
        "0".into(),
        fmt(peel.entries_per_exchange),
        fmt(peel.scanned_per_exchange),
    ]);
    FigTable::new(
        "§1.3: checksum window — 60 sites, 1 update/cycle (10 ticks/cycle), distribution time ≈ 100 ticks",
        &["strategy", "full-compare rate", "entries/exchange", "scanned/exchange"],
        rows,
    )
}

/// Ablation of the synchronous-cycle assumption: the Table 4 experiment
/// re-run on the event-driven simulator with per-site jittered timers.
pub fn async_ablation_table(trials: u64) -> FigTable {
    use epidemic_sim::event::AsyncAntiEntropySim;
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let net = cin(&CinConfig::default());
    let mut rows = Vec::new();
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sync = AntiEntropySim::new(&net.topology, spatial);
        let asynchronous = AsyncAntiEntropySim::new(&net.topology, spatial, 0.3);
        let acc = parallel_trials(
            trials,
            |seed| {
                let s = sync.run(seed + 71, None);
                let a = asynchronous.run(seed + 71, None);
                (
                    f64::from(s.t_last),
                    a.t_last,
                    s.compare_traffic.mean_per_link() / f64::from(s.cycles.max(1)),
                    a.compare_per_link_period,
                )
            },
            [0.0f64; 4],
            |mut acc, r| {
                for (x, v) in acc.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                acc
            },
        );
        let t = trials as f64;
        rows.push(vec![
            label,
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    FigTable::new(
        "Ablation: synchronous cycles vs event-driven timers (±30% jitter) on the CIN",
        &[
            "distribution",
            "t_last sync (cycles)",
            "t_last async (periods)",
            "cmp/link/cycle sync",
            "cmp/link/period async",
        ],
        rows,
    )
}

/// §4 future work: the dynamic hierarchy against flat spatial selection on
/// the CIN — convergence, average traffic and the Bushey hot spot.
pub fn hierarchy_table(trials: u64) -> FigTable {
    use epidemic_net::{HierarchicalSampler, Routes};
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let net = cin(&CinConfig::default());
    let routes = Routes::compute(&net.topology);
    let mut rows = Vec::new();

    let mut measure =
        |label: String, sim: &(dyn Fn(u64) -> epidemic_sim::SpatialRunResult + Sync)| {
            let acc = parallel_trials(
                trials,
                |seed| {
                    let r = sim(seed + 13);
                    let cycles = f64::from(r.cycles.max(1));
                    (
                        f64::from(r.t_last),
                        r.compare_traffic.mean_per_link() / cycles,
                        r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                    )
                },
                [0.0f64; 3],
                |mut a, r| {
                    for (x, v) in a.iter_mut().zip([r.0, r.1, r.2]) {
                        *x += v;
                    }
                    a
                },
            );
            let t = trials as f64;
            rows.push(vec![
                label,
                fmt(acc[0] / t),
                fmt(acc[1] / t),
                fmt(acc[2] / t),
            ]);
        };

    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("flat a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = AntiEntropySim::new(&net.topology, spatial);
        measure(label, &|seed| sim.run(seed, None));
    }
    for (reps, long_range) in [(8usize, 0.3f64), (16, 0.3), (16, 0.6)] {
        let sampler = HierarchicalSampler::new(
            &net.topology,
            &routes,
            reps,
            long_range,
            Spatial::QsPower { a: 2.0 },
        );
        let sim = AntiEntropySim::with_selection(&net.topology, sampler);
        measure(format!("hierarchy r={reps} p={long_range}"), &|seed| {
            sim.run(seed, None)
        });
    }
    FigTable::new(
        "§4 future work: dynamic hierarchy vs flat spatial selection (CIN)",
        &[
            "strategy",
            "t_last",
            "cmp avg/link/cycle",
            "cmp Bushey/cycle",
        ],
        rows,
    )
}

/// The §1.4 epidemic trajectory: the simulated infective fraction along
/// the phase curve `i(s)` against the ODE's closed form, sampled at fixed
/// susceptible fractions.
pub fn sir_curve_table(n: usize, trials: u64) -> FigTable {
    let k = 2;
    let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Coin { k });
    let driver = RumorEpidemic::new(cfg);
    // Average the infective fraction observed at (just below) each sampled
    // susceptible level across trials.
    let samples = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];
    let sums = parallel_trials(
        trials,
        |seed| {
            let trace = driver.run_traced(n, seed ^ 0xC0FFEE);
            let mut at = [f64::NAN; 9];
            for &(s, i, _) in &trace.points {
                for (slot, &level) in at.iter_mut().zip(&samples) {
                    if s <= level && slot.is_nan() {
                        *slot = i;
                    }
                }
            }
            at
        },
        ([0.0f64; 9], [0u64; 9]),
        |(mut acc, mut counts), at| {
            for idx in 0..9 {
                if !at[idx].is_nan() {
                    acc[idx] += at[idx];
                    counts[idx] += 1;
                }
            }
            (acc, counts)
        },
    );
    let ode = RumorOde::new(k);
    let rows: Vec<Vec<String>> = samples
        .iter()
        .enumerate()
        .map(|(idx, &s)| {
            let sim = if sums.1[idx] > 0 {
                fmt(sums.0[idx] / sums.1[idx] as f64)
            } else {
                "-".into()
            };
            vec![
                fmt(s),
                fmt(ode.i_of_s(s).max(0.0)),
                sim,
                format!("{}/{trials}", sums.1[idx]),
            ]
        })
        .collect();
    FigTable::new(
        "Fig: S/I/R phase curve i(s) — ODE vs simulation (push, feedback, coin, k=2)",
        &["s", "i(s) ODE", "i(s) sim", "trials reaching s"],
        rows,
    )
}

/// Steady-state anti-entropy on the CIN with recent-update lists: entry
/// traffic (the wire-cost proxy) per link under each distribution — the
/// production Clearinghouse configuration.
pub fn cin_steady_table(trials: u64) -> FigTable {
    use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};
    let net = cin(&CinConfig::default());
    let config = SpatialSteadyConfig::default();
    let mut rows = Vec::new();
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = SpatialSteadySim::new(&net.topology, spatial, config);
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = sim.run(seed + 31);
                (
                    r.conversations_per_link_cycle,
                    r.entries_per_link_cycle,
                    r.entry_traffic.at(net.bushey_link) as f64 / f64::from(r.measured_cycles),
                    r.full_compare_rate,
                )
            },
            [0.0f64; 4],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                    *x += v;
                }
                a
            },
        );
        let t = trials as f64;
        rows.push(vec![
            label,
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
    }
    FigTable::new(
        "Steady state on the CIN: recent-list anti-entropy, 2 updates/cycle",
        &[
            "distribution",
            "conv/link/cycle",
            "entries/link/cycle",
            "entries Bushey/cycle",
            "full-compare rate",
        ],
        rows,
    )
}

/// The sharded-engine counterpart of [`cin_steady_table`]'s measurement:
/// one row per spatial distribution, each trial run on the deterministic
/// shard-parallel engine. Exposed (with explicit runner/shard/worker
/// inputs) so the determinism suite can pin that the rendered rows are
/// byte-identical at any worker count.
pub fn cin_steady_sharded_rows(
    runner: TrialRunner,
    net: &topologies::Cin,
    trials: u64,
    shards: usize,
    workers: usize,
) -> Vec<Vec<String>> {
    cin_steady_sharded_data(runner, net, trials, shards, workers).0
}

/// As [`cin_steady_sharded_rows`], additionally streaming every trial
/// through an [`AggregateObserver`] — one merged entry per distribution.
/// The aggregate is a pure function of `(seed, shards)` and never of
/// `workers` or thread count, so the serialized bytes are identical at
/// any parallelism budget.
pub fn cin_steady_sharded_data(
    runner: TrialRunner,
    net: &topologies::Cin,
    trials: u64,
    shards: usize,
    workers: usize,
) -> (Vec<Vec<String>>, Vec<AggEntry>) {
    use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};
    let config = SpatialSteadyConfig::default();
    let mut rows = Vec::new();
    let mut aggregates = Vec::new();
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = SpatialSteadySim::new(&net.topology, spatial, config);
        let (acc, agg) = crate::parallel_trials_with(
            runner,
            trials,
            |seed| {
                let mut sink = AggregateObserver::new();
                let r = sim.run_sharded_observed(seed + 31, shards, workers, &mut sink);
                (
                    [
                        r.conversations_per_link_cycle,
                        r.entries_per_link_cycle,
                        r.entry_traffic.at(net.bushey_link) as f64 / f64::from(r.measured_cycles),
                        r.full_compare_rate,
                    ],
                    sink.finish(),
                )
            },
            ([0.0f64; 4], RunAggregate::default()),
            |(mut a, mut agg), (r, trial_agg)| {
                for (x, v) in a.iter_mut().zip(r) {
                    *x += v;
                }
                agg.merge(&trial_agg);
                (a, agg)
            },
        );
        let t = trials as f64;
        rows.push(vec![
            label.clone(),
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
            fmt(acc[3] / t),
        ]);
        aggregates.push(AggEntry {
            label: label.clone(),
            params: vec![
                ("distribution".to_string(), label),
                ("trials".to_string(), trials.to_string()),
                ("shards".to_string(), shards.to_string()),
            ],
            observed: vec![
                ("conversations_per_link_cycle".to_string(), acc[0] / t),
                ("entries_per_link_cycle".to_string(), acc[1] / t),
                ("entries_bushey_per_cycle".to_string(), acc[2] / t),
                ("full_compare_rate".to_string(), acc[3] / t),
            ],
            agg,
        });
    }
    (rows, aggregates)
}

/// [`cin_steady_sharded_data`] at the default shard count, the thread
/// budget split between trial fan-out and per-trial shard workers so
/// nesting never oversubscribes (a different RNG universe from
/// [`cin_steady_table`] — numbers agree statistically, not
/// byte-for-byte).
pub fn cin_steady_sharded_default(trials: u64) -> (FigTable, Vec<AggEntry>) {
    let net = cin(&CinConfig::default());
    let shards = epidemic_sim::engine::default_shards();
    let runner = TrialRunner::new();
    let (trial_workers, shard_workers) = runner.split_budget(trials, shards);
    let (rows, aggregates) = cin_steady_sharded_data(
        runner.threads(trial_workers),
        &net,
        trials,
        shards,
        shard_workers,
    );
    let table = FigTable::new(
        &format!(
            "Steady state on the CIN (sharded engine, {shards} shards): \
             recent-list anti-entropy, 2 updates/cycle"
        ),
        &[
            "distribution",
            "conv/link/cycle",
            "entries/link/cycle",
            "entries Bushey/cycle",
            "full-compare rate",
        ],
        rows,
    );
    (table, aggregates)
}

/// Weighted-CIN ablation: modelling the transatlantic phone lines as
/// high-cost links. `d`-seen distance pushes `Q_s(d)`'s sorted lists
/// around, so Europe appears "farther" and crossing traffic falls further
/// still — at the price of slower transatlantic convergence.
pub fn weighted_cin_table(trials: u64) -> FigTable {
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let mut rows = Vec::new();
    for cost in [1u32, 3, 6] {
        let net = cin(&CinConfig {
            transatlantic_cost: cost,
            ..CinConfig::default()
        });
        let sim = AntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 });
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = sim.run(seed + 47, None);
                let cycles = f64::from(r.cycles.max(1));
                (
                    f64::from(r.t_last),
                    r.compare_traffic.mean_per_link() / cycles,
                    r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                )
            },
            [0.0f64; 3],
            |mut a, r| {
                for (x, v) in a.iter_mut().zip([r.0, r.1, r.2]) {
                    *x += v;
                }
                a
            },
        );
        let t = trials as f64;
        rows.push(vec![
            cost.to_string(),
            fmt(acc[0] / t),
            fmt(acc[1] / t),
            fmt(acc[2] / t),
        ]);
    }
    FigTable::new(
        "Ablation: transatlantic link cost under Qs^-2 anti-entropy (CIN)",
        &[
            "transatlantic cost",
            "t_last",
            "cmp avg/link/cycle",
            "cmp Bushey/cycle",
        ],
        rows,
    )
}

/// §2.1's scaling warning: dormant death certificates fail catastrophically
/// once the expected propagation time exceeds `τ₁`, so `τ₁` (and the space
/// at each server) "eventually must grow as O(log n)". We estimate
/// `P(cover time > τ₁)` for push-pull anti-entropy across network sizes.
pub fn dc_scaling_table(trials: u64) -> FigTable {
    let taus = [8u32, 10, 12, 14];
    let rows: Vec<Vec<String>> = [64usize, 256, 1024, 4096]
        .iter()
        .map(|&n| {
            let driver = AntiEntropyEpidemic::new(Direction::PushPull);
            let cover_times: Vec<f64> = {
                parallel_trials(
                    trials,
                    |seed| f64::from(driver.run(n, seed ^ 0xDC).cycles),
                    Vec::new(),
                    |mut v, x| {
                        v.push(x);
                        v
                    },
                )
            };
            let mut row = vec![
                n.to_string(),
                fmt(cover_times.iter().sum::<f64>() / cover_times.len() as f64),
            ];
            for &tau in &taus {
                let exceed = cover_times.iter().filter(|&&c| c > f64::from(tau)).count();
                row.push(fmt(exceed as f64 / cover_times.len() as f64));
            }
            row
        })
        .collect();
    FigTable::new(
        "§2.1: P(propagation time > τ1) vs n — why τ1 must grow as O(log n)",
        &[
            "n",
            "mean cover time",
            "P(>8)",
            "P(>10)",
            "P(>12)",
            "P(>14)",
        ],
        rows,
    )
}

/// Churn ablation: spatial anti-entropy on the CIN while a fraction of the
/// fleet is down at any moment (§2's hours-to-days outages). Anti-entropy
/// completes regardless; convergence stretches roughly like 1/(up
/// fraction)².
pub fn churn_table(trials: u64) -> FigTable {
    use epidemic_sim::failures::{Churn, ChurnedAntiEntropySim};
    let net = cin(&CinConfig::default());
    let mut rows = Vec::new();
    for (label, churn) in [
        (
            "0% down",
            Churn {
                fail: 0.0,
                recover: 1.0,
            },
        ),
        (
            "~10% down",
            Churn {
                fail: 0.02,
                recover: 0.18,
            },
        ),
        (
            "~25% down",
            Churn {
                fail: 0.05,
                recover: 0.15,
            },
        ),
        (
            "~50% down",
            Churn {
                fail: 0.10,
                recover: 0.10,
            },
        ),
    ] {
        let sim = ChurnedAntiEntropySim::new(&net.topology, Spatial::QsPower { a: 2.0 }, churn);
        let acc = parallel_trials(
            trials,
            |seed| {
                let r = sim.run(seed + 91, None);
                (
                    f64::from(r.t_last),
                    r.observed_down_fraction,
                    f64::from(u8::from(r.complete)),
                )
            },
            (0.0, 0.0, 0.0),
            |a, r| (a.0 + r.0, a.1 + r.1, a.2 + r.2),
        );
        let t = trials as f64;
        rows.push(vec![
            label.to_string(),
            fmt(acc.1 / t),
            fmt(acc.0 / t),
            fmt(acc.2 / t),
        ]);
    }
    FigTable::new(
        "Ablation: site churn under Qs^-2 anti-entropy (CIN)",
        &[
            "churn",
            "observed down fraction",
            "t_last",
            "completion rate",
        ],
        rows,
    )
}

/// §4 asks to "characterize the pathological topologies": sweep topology
/// families and report how uniform vs `Q_s(d)^-2` anti-entropy behaves on
/// each — convergence time and the hottest link's load.
pub fn topology_robustness_table(trials: u64) -> FigTable {
    use epidemic_net::topologies::{binary_tree, grid, line, random_connected, ring, waxman};
    use epidemic_sim::spatial_ae::AntiEntropySim;
    let topos: Vec<(&str, epidemic_net::Topology)> = vec![
        ("line(64)", line(64)),
        ("ring(64)", ring(64)),
        ("grid(8x8)", grid(&[8, 8])),
        ("tree(depth 6)", binary_tree(6)),
        ("ER(64, p=.05)", random_connected(64, 0.05, 5)),
        ("waxman(64)", waxman(64, 0.9, 0.15, 5)),
    ];
    let mut rows = Vec::new();
    for (label, topo) in &topos {
        let mut cells = vec![label.to_string()];
        for spatial in [Spatial::Uniform, Spatial::QsPower { a: 2.0 }] {
            let sim = AntiEntropySim::new(topo, spatial);
            let acc = parallel_trials(
                trials,
                |seed| {
                    let r = sim.run(seed + 3, None);
                    let cycles = f64::from(r.cycles.max(1));
                    let hottest = r
                        .compare_traffic
                        .hottest()
                        .map_or(0.0, |(_, c)| c as f64 / cycles);
                    (f64::from(r.t_last), hottest)
                },
                (0.0, 0.0),
                |a, r| (a.0 + r.0, a.1 + r.1),
            );
            let t = trials as f64;
            cells.push(fmt(acc.0 / t));
            cells.push(fmt(acc.1 / t));
        }
        rows.push(cells);
    }
    FigTable::new(
        "Fig: topology robustness — anti-entropy across families (64 sites)",
        &[
            "topology",
            "t_last unif",
            "hot link unif",
            "t_last Qs^-2",
            "hot link Qs^-2",
        ],
        rows,
    )
}

/// §1.4's update-rate trade-off: push goes silent on a quiescent network
/// while pull keeps polling; under load, pull's polls almost always find
/// rumors and its superior residue pays off — "our own CIN application has
/// a high enough update rate to warrant the use of pull".
pub fn pull_vs_push_rate_table(trials: u64) -> FigTable {
    use epidemic_sim::rumor_steady::{RumorSteadyConfig, RumorSteadySim};
    let mut rows = Vec::new();
    for rate in [0.0f64, 0.25, 1.0, 4.0] {
        for (label, direction) in [("push", Direction::Push), ("pull", Direction::Pull)] {
            let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
            let config = RumorSteadyConfig {
                updates_per_cycle: rate,
                ..RumorSteadyConfig::default()
            };
            let sim = RumorSteadySim::new(cfg, config);
            let acc = parallel_trials(
                trials,
                |seed| {
                    let r = sim.run(seed + 5);
                    (
                        r.coverage,
                        r.messages_per_delivery,
                        r.fruitless_per_cycle,
                        r.contacts_per_cycle,
                    )
                },
                [0.0f64; 4],
                |mut a, r| {
                    for (x, v) in a.iter_mut().zip([r.0, r.1, r.2, r.3]) {
                        *x += v;
                    }
                    a
                },
            );
            let t = trials as f64;
            rows.push(vec![
                format!("{rate} upd/cycle, {label}"),
                fmt(acc[0] / t),
                fmt(acc[1] / t),
                fmt(acc[2] / t),
                fmt(acc[3] / t),
            ]);
        }
    }
    FigTable::new(
        "§1.4: push vs pull across update rates (200 sites, k=2)",
        &[
            "workload",
            "coverage",
            "msgs/delivery",
            "fruitless/cycle",
            "contacts/cycle",
        ],
        rows,
    )
}

/// Environment variable capping the largest `n` in the megascale sweep.
///
/// The default sweep runs to 10⁶ sites, which is minutes of wall clock
/// and hundreds of MB of RSS — right for `repro`, wrong for a test or a
/// CI smoke job. Setting e.g. `EPIDEMIC_MEGASCALE_MAX_N=10000` keeps
/// only the points with `n ≤ 10⁴`; raising it to `10000000` unlocks the
/// fast-path-only 10⁷ point.
pub const MEGASCALE_MAX_N_ENV: &str = "EPIDEMIC_MEGASCALE_MAX_N";

fn megascale_max_n() -> usize {
    match std::env::var(MEGASCALE_MAX_N_ENV) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{MEGASCALE_MAX_N_ENV} must be an integer, got {v:?}")),
        Err(_) => 1_000_000,
    }
}

/// Fig-megascale: the paper's workhorse rumor variant (push, feedback,
/// coin `k=4`) at 10⁴–10⁷ sites, on uniform complete mixing and on a
/// Barabási–Albert scale-free contact graph (`m = 2`), crossed with the
/// execution path.
///
/// The **fast** path (active-set contact loop, counter RNG, lazy site
/// materialization — [`epidemic_sim::FastRumorProtocol`]) runs at every
/// point; it is what makes 10⁶ cheap and 10⁷ feasible at all. The
/// **legacy** eager path runs at `n = 10⁴` only, on both storage
/// backends, to keep the before/after cost comparison in the table
/// without paying eager materialization at 10⁵+. The two paths draw from
/// different RNG contracts, so their protocol columns (residue,
/// `t_last`, traffic, cycles) agree statistically, not bit-for-bit; the
/// legacy backends are observationally equivalent to each other, so
/// their protocol columns are identical and only the cost columns
/// differ. The allocations column needs the `count-allocs` build (it
/// reads "n/a" otherwise), and the RSS column is the per-point delta of
/// the process high-water mark — how far this row pushed the peak, 0 if
/// it fit inside an earlier row's footprint (see [`crate::rss`]).
pub fn megascale(max_n: usize) -> Vec<Vec<String>> {
    megascale_data(max_n).0
}

/// Measures one sweep point: wall clock, allocations, and high-water-mark
/// delta around `run`, pushing one rendered row and one [`AggEntry`].
fn megascale_point(
    n: usize,
    topology: &str,
    path: &str,
    backend_name: &str,
    rows: &mut Vec<Vec<String>>,
    aggregates: &mut Vec<AggEntry>,
    run: impl FnOnce(&mut AggregateObserver) -> epidemic_sim::EpidemicResult,
) {
    let allocs_before = crate::alloc_counter::allocations();
    let rss_before = crate::rss::peak_rss_kb();
    let start = std::time::Instant::now();
    let mut sink = AggregateObserver::new();
    let r = run(&mut sink);
    let seconds = start.elapsed().as_secs_f64();
    let allocations = crate::alloc_counter::allocations() - allocs_before;
    let rss_delta_kb = crate::rss::peak_rss_kb().saturating_sub(rss_before);
    rows.push(vec![
        n.to_string(),
        topology.to_string(),
        path.to_string(),
        backend_name.to_string(),
        fmt(r.residue),
        fmt(r.t_last),
        fmt(r.traffic),
        r.cycles.to_string(),
        format!("{seconds:.2}"),
        if crate::alloc_counter::enabled() {
            allocations.to_string()
        } else {
            "n/a".to_string()
        },
        (rss_delta_kb / 1024).to_string(),
    ]);
    aggregates.push(AggEntry {
        label: format!("n={n} {topology} {path} {backend_name}"),
        params: vec![
            ("n".to_string(), n.to_string()),
            ("topology".to_string(), topology.to_string()),
            ("path".to_string(), path.to_string()),
            ("backend".to_string(), backend_name.to_string()),
        ],
        observed: vec![
            ("residue".to_string(), r.residue),
            ("t_last".to_string(), r.t_last),
            ("traffic".to_string(), r.traffic),
            ("cycles".to_string(), f64::from(r.cycles)),
        ],
        agg: sink.finish(),
    });
}

/// As [`megascale`], streaming every run through an
/// [`AggregateObserver`] — bounded memory even at n = 10⁷ — and
/// returning one entry per `(n, topology, path, backend)` point. The
/// aggregate carries no wall-clock fields; the cost columns (seconds,
/// allocations, RSS delta) live only in the rendered rows and are marked
/// volatile in [`megascale_fig`]'s JSON export.
pub fn megascale_data(max_n: usize) -> (Vec<Vec<String>>, Vec<AggEntry>) {
    use epidemic_db::Backend;
    use epidemic_net::DegreeGraph;
    use epidemic_sim::MegascaleSim;

    let sim = MegascaleSim::new();
    let mut rows = Vec::new();
    let mut aggregates = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000, 10_000_000] {
        if n > max_n {
            continue;
        }
        for scale_free in [false, true] {
            // One graph per (n, topology) point, shared across paths and
            // backends so the runs contact the same neighborhoods.
            let graph = scale_free.then(|| DegreeGraph::scale_free(n, 2, 1987));
            let seed = 1987 ^ n as u64;
            let topology = if scale_free {
                "scale-free m=2"
            } else {
                "uniform"
            };
            if n == 10_000 {
                for backend in [Backend::BTree, Backend::Flat] {
                    let backend_name = match backend {
                        Backend::BTree => "btree",
                        Backend::Flat => "flat",
                    };
                    megascale_point(
                        n,
                        topology,
                        "legacy",
                        backend_name,
                        &mut rows,
                        &mut aggregates,
                        |sink| match &graph {
                            Some(g) => sim.run_scale_free_observed(g, seed, backend, sink),
                            None => sim.run_uniform_observed(n, seed, backend, sink),
                        },
                    );
                }
            }
            megascale_point(
                n,
                topology,
                "fast",
                "lazy",
                &mut rows,
                &mut aggregates,
                |sink| match &graph {
                    Some(g) => sim.run_scale_free_fast_observed(g, seed, sink),
                    None => sim.run_uniform_fast_observed(n, seed, sink),
                },
            );
        }
    }
    (rows, aggregates)
}

/// [`megascale_data`] as a [`FigTable`] plus aggregates, honoring
/// [`MEGASCALE_MAX_N_ENV`]. The wall-clock columns (seconds, allocations,
/// RSS delta) are volatile: present in the rendered text, dropped from
/// the JSON artifact so `--trace`/`--json` output stays
/// byte-reproducible.
pub fn megascale_fig() -> (FigTable, Vec<AggEntry>) {
    let (rows, aggregates) = megascale_data(megascale_max_n());
    let table = FigTable::new(
        "Fig: megascale rumor epidemics (push, feedback, coin k=4) — \
         n x topology x path x storage backend",
        &[
            "n",
            "topology",
            "path",
            "backend",
            "residue",
            "t_last",
            "traffic m",
            "cycles",
            "seconds",
            "allocations",
            "RSS delta MB",
        ],
        rows,
    )
    .volatile(&[8, 9, 10]);
    (table, aggregates)
}

/// One figure experiment's complete output: its rendered tables plus the
/// streaming aggregates of its statistically deep sweeps (empty for
/// figures whose value is a handful of derived numbers rather than a
/// delay/traffic distribution).
#[derive(Debug, Clone)]
pub struct FigData {
    /// The figure's tables, in print order.
    pub tables: Vec<FigTable>,
    /// Merged per-configuration streaming aggregates (may be empty).
    pub aggregates: Vec<AggEntry>,
}

impl FigData {
    fn table(table: FigTable) -> Self {
        FigData {
            tables: vec![table],
            aggregates: Vec::new(),
        }
    }

    fn with_aggregates((table, aggregates): (FigTable, Vec<AggEntry>)) -> Self {
        FigData {
            tables: vec![table],
            aggregates,
        }
    }
}

/// The single dispatcher behind every figure experiment: resolves `name`
/// to its tables (and aggregates), or `None` for non-figure names. The
/// per-figure trial counts are fixed here — the same counts `repro` has
/// always used — except for the sweeps that scale with `--trials`
/// (`mix_trials`, on `n` sites).
pub fn figure_data(runner: TrialRunner, name: &str, n: usize, mix_trials: u64) -> Option<FigData> {
    let data = match name {
        "fig-rumor-ode" => {
            let (rows, aggregates) = rumor_ode_data(runner, n, mix_trials);
            FigData::with_aggregates((
                FigTable::new(
                    "Fig: rumor ODE residue s = e^-(k+1)(1-s) vs simulation (push, feedback, coin)",
                    &["k", "ODE residue", "sim residue", "sim traffic m"],
                    rows,
                ),
                aggregates,
            ))
        }
        "fig-residue-traffic" => FigData::table(FigTable::new(
            "Fig: residue vs traffic — s = e^-m law and connection-limited variants",
            &["variant", "m", "s (sim)", "e^-m", "e^-1.582m"],
            residue_traffic(n, mix_trials),
        )),
        "fig-ae-convergence" => {
            let (rows, aggregates) = ae_convergence_data(runner, 50);
            FigData::with_aggregates((
                FigTable::new(
                    "Fig: anti-entropy cover time — push vs log2(n)+ln(n), pull, push-pull",
                    &[
                        "n",
                        "push (sim)",
                        "log2+ln",
                        "pull (sim)",
                        "push-pull (sim)",
                        "pull tail p^2",
                    ],
                    rows,
                ),
                aggregates,
            ))
        }
        "fig-line-traffic" => FigData::table(line_traffic_table()),
        "fig1-pathology" => FigData::table(figure1_table(500)),
        "fig2-pathology" => FigData::table(figure2_table(500)),
        "death-certs" => FigData {
            tables: death_certificates_tables(),
            aggregates: Vec::new(),
        },
        "fig-dc-scaling" => FigData::table(dc_scaling_table(200)),
        "fig-spatial-rumor" => FigData::table(spatial_rumor_table(spatial_rumor(50, 100))),
        "fig-sir-curve" => FigData::table(sir_curve_table(n, mix_trials)),
        "fig-checksum-window" => FigData::table(checksum_window_table()),
        "fig-async" => FigData::table(async_ablation_table(50)),
        "fig-cin-steady" => FigData::table(cin_steady_table(20)),
        "fig-cin-steady-sharded" => FigData::with_aggregates(cin_steady_sharded_default(20)),
        "fig-megascale" => FigData::with_aggregates(megascale_fig()),
        "ablation-hierarchy" => FigData::table(hierarchy_table(50)),
        "ablation-weighted-cin" => FigData::table(weighted_cin_table(50)),
        "ablation-churn" => FigData::table(churn_table(30)),
        "fig-topology-robustness" => FigData::table(topology_robustness_table(40)),
        "fig-pull-vs-push-rate" => FigData::table(pull_vs_push_rate_table(20)),
        "ablation-counter-reset" => FigData::table(counter_reset_table(n, mix_trials)),
        "ablation-hunting" => FigData::table(hunting_table(n, mix_trials)),
        "ablation-comparison" => FigData::table(comparison_table()),
        "ablation-redistribution" => FigData::table(redistribution_table(20)),
        _ => return None,
    };
    Some(data)
}

/// The plain `repro` path: prints a figure's tables to stdout. `false`
/// for non-figure names.
pub fn print_figure(name: &str, n: usize, mix_trials: u64) -> bool {
    match figure_data(TrialRunner::new(), name, n, mix_trials) {
        Some(data) => {
            for table in &data.tables {
                table.print();
            }
            true
        }
        None => false,
    }
}

/// Runs a figure experiment and packages it in the same artifact-bundle
/// shape as the traced tables and scenarios, so `repro --trace/--json`
/// covers every experiment. Figures have no per-contact JSONL trace
/// (`jsonl` is empty and `repro` skips the file); their machine-readable
/// rows exclude volatile wall-clock columns, so every written byte is
/// reproducible at any thread count.
pub fn figure_artifacts(
    runner: TrialRunner,
    name: &str,
    n: usize,
    mix_trials: u64,
) -> Option<TableArtifacts> {
    use epidemic_trace::json::{array_of, JsonObject};
    let data = figure_data(runner, name, n, mix_trials)?;
    let rendered: String = data.tables.iter().map(FigTable::render).collect();
    let mut rows = JsonObject::new();
    rows.field_str("experiment", name)
        .field_str("kind", "figure")
        .field_raw(
            "tables",
            &array_of(data.tables.iter().map(FigTable::to_json)),
        );
    let rows = rows.finish();
    let mut summary = JsonObject::new();
    summary
        .field_raw("table", &rows)
        .field_u64("trace_lines", 0);
    Some(TableArtifacts {
        rendered,
        jsonl: String::new(),
        summary: summary.finish(),
        rows,
        agg: agg_json(name, "figure", &data.aggregates),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rumor_ode_rows_track_theory() {
        let rows = rumor_ode(300, 20);
        assert_eq!(rows.len(), 8);
        // Column 1 is the ODE residue for k=1 ≈ 0.2.
        let ode_k1: f64 = rows[0][1].parse().unwrap();
        assert!((ode_k1 - 0.2032).abs() < 0.01);
    }

    #[test]
    fn ae_convergence_rows_are_ordered() {
        let rows = ae_convergence(5);
        // Cover time grows with n for push.
        let push: Vec<f64> = rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(push.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn line_traffic_rows_have_expected_shape() {
        let rows = line_traffic();
        // Uniform column roughly doubles per size doubling; a=3 column is flat.
        let first: f64 = rows[0][1].parse().unwrap();
        let last: f64 = rows[5][1].parse().unwrap();
        assert!(last / first > 16.0);
        let a3_first: f64 = rows[0][5].parse().unwrap();
        let a3_last: f64 = rows[5][5].parse().unwrap();
        assert!(a3_last / a3_first < 1.5);
    }

    #[test]
    fn figure1_failure_decreases_in_k() {
        let rows = figure1(60);
        let k1: f64 = rows[0][1].parse().unwrap();
        let k6: f64 = rows[5][1].parse().unwrap();
        assert!(k6 <= k1);
    }
}
