//! Experiment harness: regenerates every table and figure of Demers et
//! al., *Epidemic Algorithms for Replicated Database Maintenance*.
//!
//! Each experiment is a plain function returning structured rows, so both
//! the `repro` binary (full trial counts, prints the paper-shaped tables)
//! and the criterion benches (timed single trials) share one
//! implementation. See DESIGN.md for the experiment ↔ paper index and
//! EXPERIMENTS.md for recorded results.

// The crate is unsafe-free except for one audited exception: the
// `count-allocs` feature compiles a `GlobalAlloc` impl (inherently unsafe
// trait) in `alloc_counter`. Default builds still forbid unsafe outright.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-allocs", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod alloc_counter;
pub mod analyze;
pub mod figures;
pub mod render;
pub mod rss;
pub mod scenarios;
pub mod tables;
pub mod trace;

use epidemic_sim::runner::TrialRunner;

/// Splits `trials` seeds across worker threads, accumulating per-seed
/// results with `run` and folding them with `fold` into `init`.
///
/// Deterministic: the fold order is by seed, regardless of thread timing.
/// A thin wrapper over [`epidemic_sim::runner::TrialRunner`] with
/// `seed_base = 0`: `run` receives the raw trial index, and experiments
/// apply their own per-experiment seed transforms on top. Honors the
/// `EPIDEMIC_THREADS` override (see the runner docs).
pub fn parallel_trials<T, A>(
    trials: u64,
    run: impl Fn(u64) -> T + Sync,
    init: A,
    fold: impl FnMut(A, T) -> A,
) -> A
where
    T: Send,
{
    parallel_trials_with(TrialRunner::new(), trials, run, init, fold)
}

/// As [`parallel_trials`] but on a caller-provided [`TrialRunner`], so
/// tests can pin an explicit thread count (the golden-output tests run the
/// same experiment at 1 thread and at full parallelism and assert byte
/// identity).
pub fn parallel_trials_with<T, A>(
    runner: TrialRunner,
    trials: u64,
    run: impl Fn(u64) -> T + Sync,
    init: A,
    fold: impl FnMut(A, T) -> A,
) -> A
where
    T: Send,
{
    runner.fold(trials, 0, run, init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_trials_covers_every_seed_once() {
        let sum = parallel_trials(100, |seed| seed, 0u64, |a, b| a + b);
        assert_eq!(sum, 99 * 100 / 2);
    }

    #[test]
    fn parallel_trials_is_deterministic() {
        let collect = || {
            parallel_trials(
                37,
                |s| s * s,
                Vec::new(),
                |mut v, x| {
                    v.push(x);
                    v
                },
            )
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert_eq!(parallel_trials(0, |s| s, 7u64, |a, b| a + b), 7);
        assert_eq!(parallel_trials(1, |s| s + 5, 0u64, |a, b| a + b), 5);
    }
}
