//! Experiment harness: regenerates every table and figure of Demers et
//! al., *Epidemic Algorithms for Replicated Database Maintenance*.
//!
//! Each experiment is a plain function returning structured rows, so both
//! the `repro` binary (full trial counts, prints the paper-shaped tables)
//! and the criterion benches (timed single trials) share one
//! implementation. See DESIGN.md for the experiment ↔ paper index and
//! EXPERIMENTS.md for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod render;
pub mod tables;

/// Splits `trials` seeds across worker threads, accumulating per-seed
/// results with `run` and folding them with `fold` into `init`.
///
/// Deterministic: the fold order is by seed, regardless of thread timing.
pub fn parallel_trials<T, A>(
    trials: u64,
    run: impl Fn(u64) -> T + Sync,
    init: A,
    mut fold: impl FnMut(A, T) -> A,
) -> A
where
    T: Send,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(trials.max(1) as usize);
    let mut results: Vec<Option<T>> = Vec::with_capacity(trials as usize);
    results.resize_with(trials as usize, || None);
    let chunk = trials.div_ceil(workers as u64);
    std::thread::scope(|scope| {
        let run = &run;
        let mut rest: &mut [Option<T>] = &mut results;
        for w in 0..workers as u64 {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(trials);
            if lo >= hi {
                break;
            }
            let (mine, tail) = rest.split_at_mut((hi - lo) as usize);
            rest = tail;
            scope.spawn(move || {
                for (offset, slot) in mine.iter_mut().enumerate() {
                    *slot = Some(run(lo + offset as u64));
                }
            });
        }
    });
    let mut acc = init;
    for r in results.into_iter().flatten() {
        acc = fold(acc, r);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_trials_covers_every_seed_once() {
        let sum = parallel_trials(100, |seed| seed, 0u64, |a, b| a + b);
        assert_eq!(sum, 99 * 100 / 2);
    }

    #[test]
    fn parallel_trials_is_deterministic() {
        let collect = || parallel_trials(37, |s| s * s, Vec::new(), |mut v, x| {
            v.push(x);
            v
        });
        assert_eq!(collect(), collect());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        assert_eq!(parallel_trials(0, |s| s, 7u64, |a, b| a + b), 7);
        assert_eq!(parallel_trials(1, |s| s + 5, 0u64, |a, b| a + b), 5);
    }
}
