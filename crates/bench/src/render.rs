//! Plain-text table rendering for experiment output.

/// Prints a fixed-width table with a title, header row and data rows.
///
/// # Example
///
/// ```
/// epidemic_bench::render::print_table(
///     "Demo",
///     &["k", "residue"],
///     &[vec!["1".into(), "0.18".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// Renders the same fixed-width table as [`print_table`] into a `String`
/// (one trailing newline per line, including the last). The golden-output
/// regression tests pin this text byte-for-byte.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>width$} |", c, width = widths[i]));
        }
        s
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&headers_owned));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Formats a float with three significant-ish decimals, trimming noise.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 0.001 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(3.333), "3.33");
        assert_eq!(fmt(0.0367), "0.0367");
        assert_eq!(fmt(0.00012), "1.20e-4");
    }
}
