//! Plain-text table rendering for experiment output.

/// Prints a fixed-width table with a title, header row and data rows.
///
/// # Example
///
/// ```
/// epidemic_bench::render::print_table(
///     "Demo",
///     &["k", "residue"],
///     &[vec!["1".into(), "0.18".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

/// Renders the same fixed-width table as [`print_table`] into a `String`
/// (one trailing newline per line, including the last). The golden-output
/// regression tests pin this text byte-for-byte.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>width$} |", c, width = widths[i]));
        }
        s
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&line(&headers_owned));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// One figure table: the unit both the stdout path and the artifact path
/// consume. `render`/`print` produce the classic fixed-width text;
/// [`FigTable::to_json`] produces the machine-readable form written to
/// `<name>.rows.json`, with [`FigTable::volatile_cols`] (wall-clock
/// columns: seconds, allocations, RSS) dropped so the artifact bytes are
/// reproducible at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct FigTable {
    /// Table title (the `## …` heading).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows, already formatted as the rendered table shows them.
    pub rows: Vec<Vec<String>>,
    /// Indices of wall-clock-derived columns excluded from the JSON
    /// export (empty for most figures; megascale's cost columns).
    pub volatile_cols: Vec<usize>,
}

impl FigTable {
    /// A table with no volatile columns.
    pub fn new(title: &str, headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        FigTable {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
            volatile_cols: Vec::new(),
        }
    }

    /// Marks columns as wall-clock derived (dropped from
    /// [`FigTable::to_json`], kept in the rendered text).
    #[must_use]
    pub fn volatile(mut self, cols: &[usize]) -> Self {
        self.volatile_cols = cols.to_vec();
        self
    }

    /// The fixed-width text table, exactly as [`print_table`] prints it.
    pub fn render(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        render_table(&self.title, &headers, &self.rows)
    }

    /// Prints [`FigTable::render`] to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// `{"title": …, "headers": […], "rows": [[…], …]}` with the volatile
    /// columns removed from both headers and rows.
    pub fn to_json(&self) -> String {
        use epidemic_trace::json::{array_of, JsonObject};
        let keep = |idx: &usize| !self.volatile_cols.contains(idx);
        let string_array = |cells: &[String]| {
            array_of(
                cells
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| keep(i))
                    .map(|(_, cell)| {
                        let mut quoted = String::from("\"");
                        epidemic_trace::json::escape_into(&mut quoted, cell);
                        quoted.push('"');
                        quoted
                    }),
            )
        };
        let mut o = JsonObject::new();
        o.field_str("title", &self.title)
            .field_raw("headers", &string_array(&self.headers))
            .field_raw(
                "rows",
                &array_of(self.rows.iter().map(|row| string_array(row))),
            );
        o.finish()
    }
}

/// Formats a float with three significant-ish decimals, trimming noise.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 0.001 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_table_json_drops_volatile_columns() {
        let t = FigTable::new(
            "Demo",
            &["k", "residue", "seconds"],
            vec![vec!["1".into(), "0.18".into(), "3.20".into()]],
        )
        .volatile(&[2]);
        assert!(t.render().contains("seconds"));
        assert_eq!(
            t.to_json(),
            r#"{"title":"Demo","headers":["k","residue"],"rows":[["1","0.18"]]}"#
        );
    }

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(3.333), "3.33");
        assert_eq!(fmt(0.0367), "0.0367");
        assert_eq!(fmt(0.00012), "1.20e-4");
    }
}
