//! Plain-text table rendering for experiment output.

/// Prints a fixed-width table with a title, header row and data rows.
///
/// # Example
///
/// ```
/// epidemic_bench::render::print_table(
///     "Demo",
///     &["k", "residue"],
///     &[vec!["1".into(), "0.18".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>width$} |", c, width = widths[i]));
        }
        s
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&headers_owned));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    println!("{sep}");
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats a float with three significant-ish decimals, trimming noise.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 0.001 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(3.333), "3.33");
        assert_eq!(fmt(0.0367), "0.0367");
        assert_eq!(fmt(0.00012), "1.20e-4");
    }
}
