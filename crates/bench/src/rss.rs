//! Peak resident-set-size sampling for the benchmark reports.
//!
//! Wall-clock and allocation counts say how hard an experiment worked;
//! they say nothing about whether it *fits*. The megascale sweep exists
//! precisely to show a million-site fleet fitting in memory, so the
//! `repro --timings` report records the process peak RSS alongside each
//! experiment's seconds and allocations.
//!
//! The only portable-enough source for this is the kernel's own
//! accounting: `VmHWM` ("high water mark") in `/proc/self/status`, the
//! peak resident set over the process lifetime, in kB. Two consequences
//! callers must keep in mind:
//!
//! * the value is **process-wide and monotone** — sampling after each
//!   experiment yields a non-decreasing sequence, and an experiment's own
//!   footprint is visible only when it pushes the high-water mark past
//!   everything that ran before it (the repro binary therefore reports
//!   the *peak so far*, not a per-experiment delta);
//! * on non-Linux hosts there is no `/proc`, and the helper returns 0 —
//!   "unknown", never a guess.

/// The process's peak resident set size in kB (`VmHWM`), or 0 when the
/// platform does not expose it.
pub fn peak_rss_kb() -> u64 {
    read_vm_hwm().unwrap_or(0)
}

#[cfg(target_os = "linux")]
fn read_vm_hwm() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

#[cfg(not(target_os = "linux"))]
fn read_vm_hwm() -> Option<u64> {
    None
}

/// Parses the `VmHWM:   1234 kB` line out of a `/proc/<pid>/status` body.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line["VmHWM:".len()..]
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_format() {
        let status = "Name:\trepro\nVmPeak:\t  200 kB\nVmHWM:\t   86172 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(86172));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(parse_vm_hwm("Name:\trepro\nThreads:\t1\n"), None);
    }

    #[test]
    fn sampling_is_monotone_and_positive_on_linux() {
        let before = peak_rss_kb();
        // Touch a few MB so the high-water mark is certainly nonzero.
        let v: Vec<u64> = (0..500_000).collect();
        assert_eq!(v.len(), 500_000);
        let after = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(before > 0, "VmHWM readable");
        }
        assert!(after >= before, "high-water mark never shrinks");
    }
}
