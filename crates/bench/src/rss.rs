//! Resident-set-size sampling for the benchmark reports.
//!
//! Wall-clock and allocation counts say how hard an experiment worked;
//! they say nothing about whether it *fits*. The megascale sweep exists
//! precisely to show a million-site fleet fitting in memory, so the
//! `repro --timings` report records memory readings alongside each
//! experiment's seconds and allocations.
//!
//! The only portable-enough source for this is the kernel's own
//! accounting in `/proc/self/status`, in kB:
//!
//! * `VmHWM` ("high water mark", [`peak_rss_kb`]) — the peak resident
//!   set over the **whole process lifetime**. It is monotone: sampling
//!   after each experiment yields a non-decreasing sequence, and an
//!   experiment's own footprint is visible only when it pushes the mark
//!   past everything that ran before it. Reported raw, one experiment's
//!   large footprint is silently inherited by every row after it — which
//!   is why the repro binary attributes memory per experiment as the
//!   *delta* of `VmHWM` across the experiment instead (`rss_delta_kb`:
//!   how far this experiment pushed the process peak, 0 for experiments
//!   that fit inside an earlier peak);
//! * `VmRSS` ([`current_rss_kb`]) — the resident set *right now*. Not
//!   monotone; useful as a floor reading between experiments.
//!
//! On non-Linux hosts there is no `/proc`, and the helpers return 0 —
//! "unknown", never a guess.

/// The process's peak resident set size in kB (`VmHWM`), or 0 when the
/// platform does not expose it.
pub fn peak_rss_kb() -> u64 {
    read_vm_field("VmHWM:").unwrap_or(0)
}

/// The process's current resident set size in kB (`VmRSS`), or 0 when
/// the platform does not expose it.
pub fn current_rss_kb() -> u64 {
    read_vm_field("VmRSS:").unwrap_or(0)
}

#[cfg(target_os = "linux")]
fn read_vm_field(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_field(&status, field)
}

#[cfg(not(target_os = "linux"))]
fn read_vm_field(_field: &str) -> Option<u64> {
    None
}

/// Parses a `<field>   1234 kB` line out of a `/proc/<pid>/status` body.
/// `field` includes the trailing colon (`"VmHWM:"`).
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_field(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    line[field.len()..]
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATUS: &str =
        "Name:\trepro\nVmPeak:\t  200 kB\nVmHWM:\t   86172 kB\nVmRSS:\t   52148 kB\nThreads:\t1\n";

    #[test]
    fn parses_the_kernel_format() {
        assert_eq!(parse_vm_field(STATUS, "VmHWM:"), Some(86172));
        assert_eq!(parse_vm_field(STATUS, "VmRSS:"), Some(52148));
    }

    #[test]
    fn missing_field_is_none() {
        assert_eq!(
            parse_vm_field("Name:\trepro\nThreads:\t1\n", "VmHWM:"),
            None
        );
        assert_eq!(parse_vm_field(STATUS, "VmSwap:"), None);
    }

    #[test]
    fn sampling_is_monotone_and_positive_on_linux() {
        let before = peak_rss_kb();
        // Touch a few MB so the high-water mark is certainly nonzero.
        let v: Vec<u64> = (0..500_000).collect();
        assert_eq!(v.len(), 500_000);
        let after = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(before > 0, "VmHWM readable");
            assert!(current_rss_kb() > 0, "VmRSS readable");
        }
        assert!(after >= before, "high-water mark never shrinks");
    }
}
