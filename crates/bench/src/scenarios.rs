//! The `fig-scenarios` sweep: runs every bundled declarative scenario
//! (`crates/sim/scenarios/*.scenario`) through the
//! [`ScenarioEngine`] and aggregates per-trial reports with
//! [`Summary`] statistics.
//!
//! Scenario experiments produce the same artifact kinds as the traced
//! tables — `<name>.jsonl` run traces and a `<name>.summary.json` record,
//! byte-identical at any `EPIDEMIC_THREADS` — via [`scenario_artifacts`].
//! Unlike the tables there is no invariant tally: scenario workloads
//! inject and delete keys mid-run, so the SIR-monotonicity rules the
//! [`InvariantObserver`](epidemic_sim::engine::InvariantObserver) checks
//! do not apply (coverage legitimately drops when a flash crowd lands).

use epidemic_sim::engine::{AggregateObserver, TraceObserver};
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::scenario::{bundled, Scenario, ScenarioEngine};
use epidemic_sim::stats::Summary;
use epidemic_trace::json::{array_of, JsonObject};
use epidemic_trace::{RunAggregate, RunTracer, TraceConfig};

use crate::parallel_trials_with;
use crate::render::{fmt, render_table};
use crate::trace::{agg_json, AggEntry, TableArtifacts};

/// Title of the `fig-scenarios` sweep table.
pub const TITLE_SCENARIOS: &str = "Scenario sweep (bundled .scenario files)";

/// Aggregates over one scenario's trials. Every distribution-valued
/// column routes through [`Summary`] (mean over trials; the JSON rows
/// also carry min/max where informative).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name (the `scenario` directive / file stem).
    pub name: String,
    /// Trials aggregated.
    pub trials: u64,
    /// Trials that reached their stop rule before the cycle bound.
    pub converged: u64,
    /// Cycles to completion.
    pub cycles: Summary,
    /// Residue (fraction of site×key coverage still missing at the end).
    pub residue: Summary,
    /// Updates sent per site.
    pub traffic: Summary,
    /// Mean injection-to-coverage delay, over trials that closed a key.
    pub delay: Summary,
}

/// The per-trial seed transform for scenario sweeps, following the table
/// convention (golden-ratio multiply, XOR with the sweep parameter).
fn seed_for(scenario_idx: u64, trial: u64) -> u64 {
    trial.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ scenario_idx
}

/// Runs `trials` seeds of one scenario, tracing every trial; returns the
/// aggregate row, the concatenated JSONL (in trial order, so the bytes
/// are thread-count independent), and the merged streaming aggregate.
pub fn traced_scenario_sweep(
    runner: TrialRunner,
    experiment: &str,
    scenario_idx: u64,
    spec: &Scenario,
    trials: u64,
) -> (ScenarioRow, String, AggEntry) {
    let engine = ScenarioEngine::new(spec.clone()).expect("bundled scenarios validate");
    type Acc = (
        Summary,
        Summary,
        Summary,
        Summary,
        u64,
        String,
        RunAggregate,
    );
    let (cycles, residue, traffic, delay, converged, jsonl, agg) = parallel_trials_with(
        runner,
        trials,
        |trial| {
            let tracer = RunTracer::new(TraceConfig::cycles_only())
                .label_str("experiment", experiment)
                .label_str("scenario", &engine.spec().name)
                .label_u64("trial", trial);
            let mut trace = TraceObserver::with_tracer(tracer);
            let mut sink = AggregateObserver::new();
            let report =
                engine.run_observed(seed_for(scenario_idx, trial), &mut (&mut trace, &mut sink));
            (report, trace.finish(), sink.finish())
        },
        (
            Summary::new(),
            Summary::new(),
            Summary::new(),
            Summary::new(),
            0u64,
            String::new(),
            RunAggregate::default(),
        ),
        |acc: Acc, (report, text, trial_agg)| {
            let (
                mut cycles,
                mut residue,
                mut traffic,
                mut delay,
                mut converged,
                mut jsonl,
                mut agg,
            ) = acc;
            cycles.push(f64::from(report.cycles));
            residue.push(report.residue);
            traffic.push(report.traffic_per_site);
            if report.delay.count() > 0 {
                delay.push(report.delay.mean());
            }
            converged += u64::from(report.converged_at.is_some());
            jsonl.push_str(&text);
            agg.merge(&trial_agg);
            (cycles, residue, traffic, delay, converged, jsonl, agg)
        },
    );
    let row = ScenarioRow {
        name: spec.name.clone(),
        trials,
        converged,
        cycles,
        residue,
        traffic,
        delay,
    };
    let entry = AggEntry {
        label: spec.name.clone(),
        params: vec![
            ("scenario".to_string(), spec.name.clone()),
            ("trials".to_string(), trials.to_string()),
        ],
        observed: vec![
            ("cycles_mean".to_string(), row.cycles.mean()),
            ("residue_mean".to_string(), row.residue.mean()),
            ("traffic_mean".to_string(), row.traffic.mean()),
            ("delay_mean".to_string(), row.delay.mean()),
        ],
        agg,
    };
    (row, jsonl, entry)
}

/// Sweeps the given scenarios, returning aggregate rows, the concatenated
/// trace, and one merged [`AggEntry`] per scenario.
pub fn scenario_sweep(
    runner: TrialRunner,
    experiment: &str,
    specs: &[Scenario],
    trials: u64,
) -> (Vec<ScenarioRow>, String, Vec<AggEntry>) {
    let mut jsonl = String::new();
    let mut aggregates = Vec::with_capacity(specs.len());
    let rows = specs
        .iter()
        .enumerate()
        .map(|(idx, spec)| {
            let (row, text, entry) =
                traced_scenario_sweep(runner, experiment, idx as u64, spec, trials);
            jsonl.push_str(&text);
            aggregates.push(entry);
            row
        })
        .collect();
    (rows, jsonl, aggregates)
}

/// Renders the sweep as a fixed-width text table.
pub fn render_scenarios(rows: &[ScenarioRow]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.trials.to_string(),
                format!("{}/{}", r.converged, r.trials),
                fmt(r.cycles.mean()),
                fmt(r.cycles.max().unwrap_or(0.0)),
                fmt(r.residue.mean()),
                fmt(r.traffic.mean()),
                fmt(r.delay.mean()),
            ]
        })
        .collect();
    render_table(
        TITLE_SCENARIOS,
        &[
            "scenario", "trials", "done", "cycles", "worst", "residue", "traffic", "delay",
        ],
        &table,
    )
}

fn scenario_row_json(r: &ScenarioRow) -> String {
    let mut o = JsonObject::new();
    o.field_str("scenario", &r.name)
        .field_u64("trials", r.trials)
        .field_u64("converged", r.converged)
        .field_f64("cycles_mean", r.cycles.mean())
        .field_f64("cycles_max", r.cycles.max().unwrap_or(0.0))
        .field_f64("residue_mean", r.residue.mean())
        .field_f64("traffic_mean", r.traffic.mean())
        .field_f64("delay_mean", r.delay.mean());
    o.finish()
}

/// Machine-readable rows for a scenario sweep (`repro --json`).
pub fn scenario_rows_json(experiment: &str, trials: u64, rows: &[ScenarioRow]) -> String {
    let mut o = JsonObject::new();
    o.field_str("experiment", experiment)
        .field_u64("trials", trials)
        .field_raw("rows", &array_of(rows.iter().map(scenario_row_json)));
    o.finish()
}

/// Resolves an experiment name to the scenarios it sweeps:
/// `fig-scenarios` is every bundled spec, `scenario-<name>` exactly one.
/// `None` for anything else (including unknown `scenario-` suffixes, so
/// the caller falls through to its unknown-experiment error).
fn specs_for(name: &str) -> Option<Vec<Scenario>> {
    if name == "fig-scenarios" {
        return Some(bundled::all());
    }
    let spec = bundled::by_name(name.strip_prefix("scenario-")?)?;
    Some(vec![spec])
}

/// Runs a scenario experiment traced, returning the same artifact bundle
/// shape as the traced tables; `None` when `name` is not a scenario
/// experiment.
pub fn scenario_artifacts(runner: TrialRunner, name: &str, trials: u64) -> Option<TableArtifacts> {
    let specs = specs_for(name)?;
    let (rows, jsonl, aggregates) = scenario_sweep(runner, name, &specs, trials);
    let rows_json = scenario_rows_json(name, trials, &rows);
    let mut summary = JsonObject::new();
    summary
        .field_raw("table", &rows_json)
        .field_u64("trace_lines", jsonl.lines().count() as u64);
    Some(TableArtifacts {
        rendered: render_scenarios(&rows),
        jsonl,
        summary: summary.finish(),
        rows: rows_json,
        agg: agg_json(name, "scenario", &aggregates),
    })
}

/// The untraced `repro` path for scenario experiments: prints the sweep
/// table. Returns `false` for non-scenario names.
pub fn print_scenarios(name: &str, trials: u64) -> bool {
    let Some(specs) = specs_for(name) else {
        return false;
    };
    let (rows, _, _) = scenario_sweep(TrialRunner::new(), name, &specs, trials);
    print!("{}", render_scenarios(&rows));
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_scenarios_covers_every_bundled_spec() {
        let a = scenario_artifacts(TrialRunner::new(), "fig-scenarios", 2)
            .expect("fig-scenarios is a scenario experiment");
        for (name, _) in bundled::SOURCES {
            assert!(
                a.rows.contains(&format!("\"scenario\":\"{name}\"")),
                "{name} missing from rows: {}",
                a.rows
            );
        }
        assert!(a.rendered.starts_with(&format!("\n## {TITLE_SCENARIOS}")));
        assert!(a.summary.contains(r#""trace_lines":"#));
        assert!(!a.jsonl.is_empty());
        assert!(
            a.agg
                .starts_with(r#"{"experiment":"fig-scenarios","kind":"scenario""#),
            "agg header: {}",
            &a.agg[..120.min(a.agg.len())]
        );
        assert!(a.agg.contains(r#""p50":"#), "agg carries quantiles");
    }

    #[test]
    fn single_scenario_selector_resolves_and_unknown_does_not() {
        let a = scenario_artifacts(TrialRunner::new(), "scenario-partition", 2)
            .expect("scenario-partition resolves");
        assert!(a.rows.contains(r#""scenario":"partition""#));
        assert!(a.jsonl.contains(r#""scenario":"partition""#));
        assert!(scenario_artifacts(TrialRunner::new(), "scenario-nope", 1).is_none());
        assert!(scenario_artifacts(TrialRunner::new(), "table1", 1).is_none());
    }

    #[test]
    fn legacy_drivers_converge_under_the_sweep_seeds() {
        // The four historical scenarios must actually complete (not hit
        // their cycle bounds) under the sweep's seed transform.
        let (rows, _, _) = scenario_sweep(TrialRunner::new(), "fig-scenarios", &bundled::all(), 3);
        for legacy in ["clearinghouse", "dormant-death", "partition", "crash"] {
            let row = rows.iter().find(|r| r.name == legacy).expect("swept");
            assert_eq!(row.converged, row.trials, "{legacy} must finish: {row:?}");
        }
    }
}
