//! Reproductions of the paper's numbered tables.

use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_net::topologies::{cin, CinConfig};
use epidemic_net::Spatial;
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::spatial_ae::AntiEntropySim;

use epidemic_sim::runner::TrialRunner;

use crate::parallel_trials_with;
use crate::render::{fmt, render_table};

/// One row of a Table 1/2/3-style complete-mixing experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixRow {
    /// The `k` parameter.
    pub k: u32,
    /// Mean residue `s`.
    pub residue: f64,
    /// Mean traffic `m` (updates per site).
    pub traffic: f64,
    /// Mean average delay.
    pub t_ave: f64,
    /// Mean last delay.
    pub t_last: f64,
}

/// Runs a complete-mixing sweep over `ks` for the given protocol factory.
pub fn mixing_sweep(
    n: usize,
    trials: u64,
    ks: &[u32],
    make: impl Fn(u32) -> RumorEpidemic + Sync,
) -> Vec<MixRow> {
    mixing_sweep_with(TrialRunner::new(), n, trials, ks, make)
}

/// As [`mixing_sweep`] but on a caller-provided [`TrialRunner`].
pub fn mixing_sweep_with(
    runner: TrialRunner,
    n: usize,
    trials: u64,
    ks: &[u32],
    make: impl Fn(u32) -> RumorEpidemic + Sync,
) -> Vec<MixRow> {
    ks.iter()
        .map(|&k| {
            let driver = make(k);
            let (residue, traffic, t_ave, t_last) = parallel_trials_with(
                runner,
                trials,
                |seed| {
                    let r = driver.run(n, seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(k));
                    (r.residue, r.traffic, r.t_ave, r.t_last)
                },
                (0.0, 0.0, 0.0, 0.0),
                |acc, r| (acc.0 + r.0, acc.1 + r.1, acc.2 + r.2, acc.3 + r.3),
            );
            let t = trials as f64;
            MixRow {
                k,
                residue: residue / t,
                traffic: traffic / t,
                t_ave: t_ave / t,
                t_last: t_last / t,
            }
        })
        .collect()
}

/// As [`mixing_sweep_with`], additionally streaming every trial through
/// an [`AggregateObserver`](epidemic_sim::engine::AggregateObserver) and
/// merging the per-trial aggregates in trial order — one
/// [`RunAggregate`](epidemic_trace::RunAggregate) per `k`, deterministic
/// at any thread count. Observers never touch the RNG, so the returned
/// [`MixRow`]s are identical to [`mixing_sweep_with`]'s.
pub fn mixing_sweep_aggregated(
    runner: TrialRunner,
    n: usize,
    trials: u64,
    ks: &[u32],
    make: impl Fn(u32) -> RumorEpidemic + Sync,
) -> Vec<(MixRow, epidemic_trace::RunAggregate)> {
    use epidemic_sim::engine::AggregateObserver;
    ks.iter()
        .map(|&k| {
            let driver = make(k);
            let (residue, traffic, t_ave, t_last, agg) = parallel_trials_with(
                runner,
                trials,
                |seed| {
                    let mut sink = AggregateObserver::new();
                    let r = driver.run_observed(
                        n,
                        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(k),
                        &mut sink,
                    );
                    (r.residue, r.traffic, r.t_ave, r.t_last, sink.finish())
                },
                (0.0, 0.0, 0.0, 0.0, epidemic_trace::RunAggregate::default()),
                |acc, r| {
                    let (residue, traffic, t_ave, t_last, mut agg) = acc;
                    agg.merge(&r.4);
                    (residue + r.0, traffic + r.1, t_ave + r.2, t_last + r.3, agg)
                },
            );
            let t = trials as f64;
            (
                MixRow {
                    k,
                    residue: residue / t,
                    traffic: traffic / t,
                    t_ave: t_ave / t,
                    t_last: t_last / t,
                },
                agg,
            )
        })
        .collect()
}

/// Table 1: push rumor mongering with feedback and counters, n sites.
pub fn table1(n: usize, trials: u64) -> Vec<MixRow> {
    table1_with(TrialRunner::new(), n, trials)
}

/// As [`table1`] but on a caller-provided [`TrialRunner`] (golden tests).
pub fn table1_with(runner: TrialRunner, n: usize, trials: u64) -> Vec<MixRow> {
    mixing_sweep_with(runner, n, trials, &[1, 2, 3, 4, 5], |k| {
        RumorEpidemic::new(
            RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k })
                .with_reset_on_useful(true),
        )
    })
}

/// Table 2: push rumor mongering, blind with coins.
pub fn table2(n: usize, trials: u64) -> Vec<MixRow> {
    mixing_sweep(n, trials, &[1, 2, 3, 4, 5], |k| {
        RumorEpidemic::new(RumorConfig::new(
            Direction::Push,
            Feedback::Blind,
            Removal::Coin { k },
        ))
    })
}

/// Table 3: pull rumor mongering with feedback and counters (footnote
/// counter semantics).
pub fn table3(n: usize, trials: u64) -> Vec<MixRow> {
    mixing_sweep(n, trials, &[1, 2, 3], |k| {
        RumorEpidemic::new(RumorConfig::new(
            Direction::Pull,
            Feedback::Feedback,
            Removal::Counter { k },
        ))
    })
}

/// Prints a mixing table next to the paper's reference values.
pub fn print_mixing(title: &str, rows: &[MixRow], paper: &[[f64; 4]]) {
    print!("{}", render_mixing(title, rows, paper));
}

/// Renders a mixing table to a `String` (golden tests pin this text).
pub fn render_mixing(title: &str, rows: &[MixRow], paper: &[[f64; 4]]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut row = vec![
                r.k.to_string(),
                fmt(r.residue),
                fmt(r.traffic),
                fmt(r.t_ave),
                fmt(r.t_last),
            ];
            if let Some(p) = paper.get(i) {
                row.extend(p.iter().map(|&x| fmt(x)));
            }
            row
        })
        .collect();
    render_table(
        title,
        &[
            "k",
            "residue",
            "traffic",
            "t_ave",
            "t_last",
            "paper s",
            "paper m",
            "paper t_ave",
            "paper t_last",
        ],
        &data,
    )
}

/// One row of a Table 4/5-style spatial anti-entropy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialRow {
    /// Distribution label ("uniform" or the exponent `a`).
    pub label: String,
    /// Mean `t_last` over runs.
    pub t_last: f64,
    /// Mean `t_ave` over runs.
    pub t_ave: f64,
    /// Compare conversations per link per cycle, averaged over links & runs.
    pub cmp_avg: f64,
    /// Compare conversations per cycle on the Bushey transatlantic link.
    pub cmp_bushey: f64,
    /// Update transmissions per link over a run, averaged over links & runs.
    pub upd_avg: f64,
    /// Update transmissions on the Bushey link over a run.
    pub upd_bushey: f64,
}

/// The spatial distributions swept by Tables 4 and 5.
pub fn table45_distributions() -> Vec<(String, Spatial)> {
    let mut out = vec![("uniform".to_string(), Spatial::Uniform)];
    for a in [1.2, 1.4, 1.6, 1.8, 2.0] {
        out.push((format!("a = {a:.1}"), Spatial::QsPower { a }));
    }
    out
}

/// Shared driver for Tables 4 and 5 on the synthetic CIN.
pub fn table45(trials: u64, connection_limit: Option<u32>) -> Vec<SpatialRow> {
    let net = cin(&CinConfig::default());
    table45_on(&net, trials, connection_limit)
}

/// As [`table45`] but on a caller-provided CIN (for tests with smaller
/// networks).
pub fn table45_on(
    net: &epidemic_net::topologies::Cin,
    trials: u64,
    connection_limit: Option<u32>,
) -> Vec<SpatialRow> {
    table45_on_with(TrialRunner::new(), net, trials, connection_limit)
}

/// As [`table45_on`] but on a caller-provided [`TrialRunner`].
pub fn table45_on_with(
    runner: TrialRunner,
    net: &epidemic_net::topologies::Cin,
    trials: u64,
    connection_limit: Option<u32>,
) -> Vec<SpatialRow> {
    table45_distributions()
        .into_iter()
        .map(|(label, spatial)| {
            let sim =
                AntiEntropySim::new(&net.topology, spatial).connection_limit(connection_limit);
            let acc = parallel_trials_with(
                runner,
                trials,
                |seed| {
                    let r = sim.run(seed.wrapping_mul(0x2545_F491_4F6C_DD1D) + 1, None);
                    let cycles = f64::from(r.cycles.max(1));
                    (
                        f64::from(r.t_last),
                        r.t_ave,
                        r.compare_traffic.mean_per_link() / cycles,
                        r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                        r.update_traffic.mean_per_link(),
                        r.update_traffic.at(net.bushey_link) as f64,
                    )
                },
                [0.0f64; 6],
                |mut acc, r| {
                    for (a, v) in acc.iter_mut().zip([r.0, r.1, r.2, r.3, r.4, r.5]) {
                        *a += v;
                    }
                    acc
                },
            );
            let t = trials as f64;
            SpatialRow {
                label,
                t_last: acc[0] / t,
                t_ave: acc[1] / t,
                cmp_avg: acc[2] / t,
                cmp_bushey: acc[3] / t,
                upd_avg: acc[4] / t,
                upd_bushey: acc[5] / t,
            }
        })
        .collect()
}

/// Prints a Table 4/5-style result.
pub fn print_spatial(title: &str, rows: &[SpatialRow]) {
    print!("{}", render_spatial(title, rows));
}

/// Renders a Table 4/5-style result to a `String` (golden tests).
pub fn render_spatial(title: &str, rows: &[SpatialRow]) -> String {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                fmt(r.t_last),
                fmt(r.t_ave),
                fmt(r.cmp_avg),
                fmt(r.cmp_bushey),
                fmt(r.upd_avg),
                fmt(r.upd_bushey),
            ]
        })
        .collect();
    render_table(
        title,
        &[
            "distribution",
            "t_last",
            "t_ave",
            "cmp avg",
            "cmp Bushey",
            "upd avg",
            "upd Bushey",
        ],
        &data,
    )
}

/// Title printed above Table 1 (shared by the plain and traced repro paths).
pub const TITLE_TABLE1: &str = "Table 1: push, feedback, counter, n=1000";
/// Title printed above Table 2.
pub const TITLE_TABLE2: &str = "Table 2: push, blind, coin, n=1000";
/// Title printed above Table 3.
pub const TITLE_TABLE3: &str = "Table 3: pull, feedback, counter, n=1000 (footnote semantics)";
/// Title printed above Table 4.
pub const TITLE_TABLE4: &str = "Table 4: push-pull anti-entropy on the synthetic CIN, no connection limit (paper: uniform 7.8/5.3/5.9/75.7/5.8/74.4 ... a=2.0 13.3/7.8/1.4/2.4/1.9/5.9)";
/// Title printed above Table 5.
pub const TITLE_TABLE5: &str = "Table 5: as Table 4 with connection limit 1, hunt limit 0 (paper: uniform 11.0/7.0/3.7/47.5/5.8/75.2 ... a=2.0 24.6/14.1/0.7/0.9/1.9/4.8)";

/// The paper's Table 1 reference values `[s, m, t_ave, t_last]` per k.
pub const PAPER_TABLE1: [[f64; 4]; 5] = [
    [0.18, 1.7, 11.0, 16.8],
    [0.037, 3.3, 12.1, 16.9],
    [0.011, 4.5, 12.5, 17.4],
    [0.0036, 5.6, 12.7, 17.5],
    [0.0012, 6.7, 12.8, 17.7],
];

/// The paper's Table 2 reference values.
pub const PAPER_TABLE2: [[f64; 4]; 5] = [
    [0.96, 0.04, 19.0, 38.0],
    [0.20, 1.6, 17.0, 33.0],
    [0.060, 2.8, 15.0, 32.0],
    [0.021, 3.9, 14.1, 32.0],
    [0.008, 4.9, 13.8, 32.0],
];

/// The paper's Table 3 reference values.
pub const PAPER_TABLE3: [[f64; 4]; 3] = [
    [3.1e-2, 2.7, 9.97, 17.6],
    [5.8e-4, 4.5, 10.07, 15.4],
    [4.0e-6, 6.1, 10.08, 14.0],
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_small_scale_matches_paper_shape() {
        // 200 sites, 40 trials: residue falls with k, traffic rises.
        let rows = table1(200, 40);
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            assert!(w[1].residue <= w[0].residue + 0.02);
            assert!(w[1].traffic > w[0].traffic);
        }
        // k=1 residue should be in the vicinity of the ODE's 20%.
        assert!((rows[0].residue - 0.20).abs() < 0.08, "{}", rows[0].residue);
    }

    #[test]
    fn table2_k1_dies_immediately() {
        let rows = table2(200, 30);
        assert!(rows[0].residue > 0.85);
        assert!(rows[0].traffic < 0.2);
        // Blind coin converges more slowly than feedback counter.
        assert!(rows[4].t_last > 20.0);
    }

    #[test]
    fn table3_pull_residues_are_tiny() {
        let rows = table3(300, 40);
        assert!(rows[0].residue < 0.08);
        assert!(rows[1].residue < rows[0].residue + 1e-9);
    }

    #[test]
    fn aggregated_sweep_matches_plain_rows() {
        let make = |k| {
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k },
            ))
        };
        let plain = mixing_sweep(150, 6, &[1, 3], make);
        let agged = mixing_sweep_aggregated(TrialRunner::new(), 150, 6, &[1, 3], make);
        assert_eq!(plain.len(), agged.len());
        for (p, (row, agg)) in plain.iter().zip(&agged) {
            assert_eq!(p, row, "observer must not perturb k={}", p.k);
            assert_eq!(agg.runs(), 6);
            assert_eq!(agg.sites(), 150);
            assert!((agg.totals().sent as f64 / (6.0 * 150.0) - row.traffic).abs() < 1e-9);
        }
    }

    #[test]
    fn table45_uniform_hammers_the_bushey_link() {
        use epidemic_net::topologies::{cin, CinConfig};
        let net = cin(&CinConfig {
            na_regions: 4,
            sites_per_region: 10,
            europe_sites: 10,
            backbone_chords: 2,
            seed: 7,
            ..CinConfig::default()
        });
        let rows = table45_on(&net, 10, None);
        let uniform = &rows[0];
        let a20 = rows.last().unwrap();
        // Uniform selection loads the transatlantic link far above the
        // mean; a = 2.0 brings it near (or below) the mean. (On this small
        // 50-site CIN the contrast is milder than the full-size network's.)
        assert!(
            uniform.cmp_bushey > 2.0 * uniform.cmp_avg,
            "bushey {} vs avg {}",
            uniform.cmp_bushey,
            uniform.cmp_avg
        );
        assert!(a20.cmp_bushey < uniform.cmp_bushey / 2.0);
        // Locality slows convergence somewhat.
        assert!(a20.t_last >= uniform.t_last);
    }
}
