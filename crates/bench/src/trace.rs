//! Traced table reproductions: the machinery behind `repro --trace` and
//! `repro --json`.
//!
//! Each traced sweep is the exact experiment from [`crate::tables`] — the
//! same drivers, the same per-trial seed transforms — run through the
//! engine's observer seam with a
//! [`TraceObserver`] and an [`InvariantObserver`]
//! composed onto every trial. Observers never touch the RNG, so the table
//! rows a traced sweep returns are byte-identical to the plain sweep's.
//!
//! Per table the artifacts are:
//!
//! * `<name>.jsonl` — per-trial run traces (cycle snapshots), concatenated
//!   in `(k | distribution, trial)` order. Every line carries `experiment`
//!   and `trial` labels, so the file is grep-able and diff-able. No field
//!   is wall-clock derived: the bytes are identical at any
//!   `EPIDEMIC_THREADS` value (the [`TrialRunner`] hands per-trial results
//!   back in trial order).
//! * `<name>.summary.json` — the aggregated table rows plus the invariant
//!   tally and trace line count.
//! * `<name>.rows.json` — just the machine-readable table rows
//!   (`repro --json`).

use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_net::topologies::{cin, Cin, CinConfig};
use epidemic_sim::engine::trace::{AggregateObserver, InvariantObserver, TraceObserver};
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::spatial_ae::AntiEntropySim;
use epidemic_trace::json::{array_of, JsonObject};
use epidemic_trace::{RunAggregate, RunTracer, TraceConfig};

use crate::parallel_trials_with;
use crate::tables::{
    render_mixing, render_spatial, table45_distributions, MixRow, SpatialRow, PAPER_TABLE1,
    PAPER_TABLE2, PAPER_TABLE3, TITLE_TABLE1, TITLE_TABLE2, TITLE_TABLE3, TITLE_TABLE4,
    TITLE_TABLE5,
};

/// One labelled streaming aggregate inside a `.agg.json` artifact: which
/// sub-configuration of the experiment it covers (`params`), the scalar
/// observations the rendered table reports for that configuration
/// (`observed` — what the analytics report lines up against the
/// closed-form predictions), and the full [`RunAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggEntry {
    /// Human-readable entry label (e.g. `k=2`, `uniform`, `n=10000 flat`).
    pub label: String,
    /// Sweep parameters as `(name, value)` strings.
    pub params: Vec<(String, String)>,
    /// Scalar observations for this configuration (table-row values).
    pub observed: Vec<(String, f64)>,
    /// The streaming aggregate folded over every trial, in trial order.
    pub agg: RunAggregate,
}

impl AggEntry {
    /// Serializes the entry as one JSON object.
    pub fn to_json(&self) -> String {
        let mut params = JsonObject::new();
        for (name, value) in &self.params {
            params.field_str(name, value);
        }
        let mut observed = JsonObject::new();
        for (name, value) in &self.observed {
            observed.field_f64(name, *value);
        }
        let mut o = JsonObject::new();
        o.field_str("label", &self.label)
            .field_raw("params", &params.finish())
            .field_raw("observed", &observed.finish())
            .field_raw("aggregate", &self.agg.to_json());
        o.finish()
    }
}

/// The `<name>.agg.json` document for one experiment: every streaming
/// aggregate the run produced, in sweep order. Deterministic and free of
/// wall-clock fields, so the bytes are identical at any
/// `EPIDEMIC_THREADS` (see DESIGN.md §Run analytics).
pub fn agg_json(experiment: &str, kind: &str, entries: &[AggEntry]) -> String {
    let mut o = JsonObject::new();
    o.field_str("experiment", experiment)
        .field_str("kind", kind)
        .field_raw(
            "aggregates",
            &array_of(entries.iter().map(AggEntry::to_json)),
        );
    o.finish()
}

/// The JSONL trace, invariant tally and streaming aggregates accumulated
/// over one table sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TableTrace {
    /// Per-trial run traces concatenated in deterministic order.
    pub jsonl: String,
    /// Total invariant violations recorded across all trials (0 on a
    /// healthy sweep).
    pub violations: u64,
    /// One streaming aggregate per swept configuration (per `k` for the
    /// mixing tables, per spatial distribution for Tables 4–5).
    pub aggregates: Vec<AggEntry>,
}

/// As [`crate::tables::mixing_sweep_with`], with a cycle-granularity
/// tracer and an invariant checker observing every trial. Identical rows,
/// plus the trace.
pub fn traced_mixing_sweep(
    runner: TrialRunner,
    experiment: &str,
    n: usize,
    trials: u64,
    ks: &[u32],
    make: impl Fn(u32) -> RumorEpidemic + Sync,
) -> (Vec<MixRow>, TableTrace) {
    let mut jsonl = String::new();
    let mut violations = 0u64;
    let mut aggregates = Vec::new();
    let rows = ks
        .iter()
        .map(|&k| {
            let driver = make(k);
            let (acc, text, viols, agg) = parallel_trials_with(
                runner,
                trials,
                |trial| {
                    let seed = trial.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(k);
                    let tracer = RunTracer::new(TraceConfig::cycles_only())
                        .label_str("experiment", experiment)
                        .label_u64("k", u64::from(k))
                        .label_u64("trial", trial);
                    let mut trace = TraceObserver::with_tracer(tracer);
                    let mut check = InvariantObserver::new();
                    let mut sink = AggregateObserver::new();
                    let r = driver.run_observed(n, seed, &mut (&mut trace, &mut check, &mut sink));
                    (
                        (r.residue, r.traffic, r.t_ave, r.t_last),
                        trace.finish(),
                        check.violations().len() as u64,
                        sink.finish(),
                    )
                },
                (
                    (0.0, 0.0, 0.0, 0.0),
                    String::new(),
                    0u64,
                    RunAggregate::new(),
                ),
                |(acc, mut text, viols, mut agg), (r, t, v, a)| {
                    text.push_str(&t);
                    agg.merge(&a);
                    (
                        (acc.0 + r.0, acc.1 + r.1, acc.2 + r.2, acc.3 + r.3),
                        text,
                        viols + v,
                        agg,
                    )
                },
            );
            jsonl.push_str(&text);
            violations += viols;
            let t = trials as f64;
            let row = MixRow {
                k,
                residue: acc.0 / t,
                traffic: acc.1 / t,
                t_ave: acc.2 / t,
                t_last: acc.3 / t,
            };
            aggregates.push(AggEntry {
                label: format!("k={k}"),
                params: vec![
                    ("n".to_string(), n.to_string()),
                    ("trials".to_string(), trials.to_string()),
                    ("k".to_string(), k.to_string()),
                ],
                observed: vec![
                    ("residue".to_string(), row.residue),
                    ("traffic".to_string(), row.traffic),
                    ("t_ave".to_string(), row.t_ave),
                    ("t_last".to_string(), row.t_last),
                ],
                agg,
            });
            row
        })
        .collect();
    (
        rows,
        TableTrace {
            jsonl,
            violations,
            aggregates,
        },
    )
}

/// Traced Table 1 (push, feedback, counter) — same rows as
/// [`crate::tables::table1`].
pub fn traced_table1(runner: TrialRunner, n: usize, trials: u64) -> (Vec<MixRow>, TableTrace) {
    traced_mixing_sweep(runner, "table1", n, trials, &[1, 2, 3, 4, 5], |k| {
        RumorEpidemic::new(
            RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k })
                .with_reset_on_useful(true),
        )
    })
}

/// Traced Table 2 (push, blind, coin).
pub fn traced_table2(runner: TrialRunner, n: usize, trials: u64) -> (Vec<MixRow>, TableTrace) {
    traced_mixing_sweep(runner, "table2", n, trials, &[1, 2, 3, 4, 5], |k| {
        RumorEpidemic::new(RumorConfig::new(
            Direction::Push,
            Feedback::Blind,
            Removal::Coin { k },
        ))
    })
}

/// Traced Table 3 (pull, feedback, counter with footnote semantics).
pub fn traced_table3(runner: TrialRunner, n: usize, trials: u64) -> (Vec<MixRow>, TableTrace) {
    traced_mixing_sweep(runner, "table3", n, trials, &[1, 2, 3], |k| {
        RumorEpidemic::new(RumorConfig::new(
            Direction::Pull,
            Feedback::Feedback,
            Removal::Counter { k },
        ))
    })
}

/// As [`crate::tables::table45_on_with`], traced. Identical rows, plus the
/// trace; every line carries the spatial-distribution label.
pub fn traced_table45_on(
    runner: TrialRunner,
    net: &Cin,
    trials: u64,
    connection_limit: Option<u32>,
    experiment: &str,
) -> (Vec<SpatialRow>, TableTrace) {
    let mut jsonl = String::new();
    let mut violations = 0u64;
    let mut aggregates = Vec::new();
    let rows = table45_distributions()
        .into_iter()
        .map(|(label, spatial)| {
            let sim =
                AntiEntropySim::new(&net.topology, spatial).connection_limit(connection_limit);
            let (acc, text, viols, agg) = parallel_trials_with(
                runner,
                trials,
                |trial| {
                    let seed = trial.wrapping_mul(0x2545_F491_4F6C_DD1D) + 1;
                    let tracer = RunTracer::new(TraceConfig::cycles_only())
                        .label_str("experiment", experiment)
                        .label_str("distribution", &label)
                        .label_u64("trial", trial);
                    let mut trace = TraceObserver::with_tracer(tracer);
                    let mut check = InvariantObserver::new();
                    let mut sink = AggregateObserver::new();
                    let r = sim.run_observed(seed, None, &mut (&mut trace, &mut check, &mut sink));
                    let cycles = f64::from(r.cycles.max(1));
                    (
                        [
                            f64::from(r.t_last),
                            r.t_ave,
                            r.compare_traffic.mean_per_link() / cycles,
                            r.compare_traffic.at(net.bushey_link) as f64 / cycles,
                            r.update_traffic.mean_per_link(),
                            r.update_traffic.at(net.bushey_link) as f64,
                        ],
                        trace.finish(),
                        check.violations().len() as u64,
                        sink.finish(),
                    )
                },
                ([0.0f64; 6], String::new(), 0u64, RunAggregate::new()),
                |(mut acc, mut text, viols, mut agg), (r, t, v, trial_agg)| {
                    for (a, x) in acc.iter_mut().zip(r) {
                        *a += x;
                    }
                    text.push_str(&t);
                    agg.merge(&trial_agg);
                    (acc, text, viols + v, agg)
                },
            );
            jsonl.push_str(&text);
            violations += viols;
            let t = trials as f64;
            let row = SpatialRow {
                label,
                t_last: acc[0] / t,
                t_ave: acc[1] / t,
                cmp_avg: acc[2] / t,
                cmp_bushey: acc[3] / t,
                upd_avg: acc[4] / t,
                upd_bushey: acc[5] / t,
            };
            aggregates.push(AggEntry {
                label: row.label.clone(),
                params: vec![
                    ("trials".to_string(), trials.to_string()),
                    ("distribution".to_string(), row.label.clone()),
                    (
                        "connection_limit".to_string(),
                        connection_limit.map_or("none".to_string(), |l| l.to_string()),
                    ),
                ],
                observed: vec![
                    ("t_last".to_string(), row.t_last),
                    ("t_ave".to_string(), row.t_ave),
                    ("cmp_avg".to_string(), row.cmp_avg),
                    ("cmp_bushey".to_string(), row.cmp_bushey),
                ],
                agg,
            });
            row
        })
        .collect();
    (
        rows,
        TableTrace {
            jsonl,
            violations,
            aggregates,
        },
    )
}

fn mix_row_json(r: &MixRow) -> String {
    let mut o = JsonObject::new();
    o.field_u64("k", u64::from(r.k))
        .field_f64("residue", r.residue)
        .field_f64("traffic", r.traffic)
        .field_f64("t_ave", r.t_ave)
        .field_f64("t_last", r.t_last);
    o.finish()
}

fn spatial_row_json(r: &SpatialRow) -> String {
    let mut o = JsonObject::new();
    o.field_str("distribution", &r.label)
        .field_f64("t_last", r.t_last)
        .field_f64("t_ave", r.t_ave)
        .field_f64("cmp_avg", r.cmp_avg)
        .field_f64("cmp_bushey", r.cmp_bushey)
        .field_f64("upd_avg", r.upd_avg)
        .field_f64("upd_bushey", r.upd_bushey);
    o.finish()
}

/// Machine-readable rows for a mixing table (`repro --json`).
pub fn mixing_rows_json(experiment: &str, n: usize, trials: u64, rows: &[MixRow]) -> String {
    let mut o = JsonObject::new();
    o.field_str("experiment", experiment)
        .field_u64("n", n as u64)
        .field_u64("trials", trials)
        .field_raw("rows", &array_of(rows.iter().map(mix_row_json)));
    o.finish()
}

/// Machine-readable rows for a spatial table (`repro --json`).
pub fn spatial_rows_json(
    experiment: &str,
    trials: u64,
    connection_limit: Option<u32>,
    rows: &[SpatialRow],
) -> String {
    let mut o = JsonObject::new();
    o.field_str("experiment", experiment)
        .field_u64("trials", trials);
    match connection_limit {
        Some(limit) => o.field_u64("connection_limit", u64::from(limit)),
        None => o.field_raw("connection_limit", "null"),
    };
    o.field_raw("rows", &array_of(rows.iter().map(spatial_row_json)));
    o.finish()
}

fn summary_json(rows_json: &str, trace: &TableTrace) -> String {
    let mut o = JsonObject::new();
    o.field_raw("table", rows_json)
        .field_u64("invariant_violations", trace.violations)
        .field_u64("trace_lines", trace.jsonl.lines().count() as u64);
    o.finish()
}

/// Everything `repro` writes for one traced experiment: the rendered
/// text table (identical to the untraced path's), the JSONL trace (empty
/// for figure experiments, which aggregate instead of tracing), the
/// summary record, the bare rows, and the streaming-aggregate document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableArtifacts {
    /// The text table, exactly as the untraced repro path prints it.
    pub rendered: String,
    /// `<name>.jsonl` contents (empty when the experiment emits no
    /// per-trial trace — `repro` then skips the file).
    pub jsonl: String,
    /// `<name>.summary.json` contents.
    pub summary: String,
    /// `<name>.rows.json` contents.
    pub rows: String,
    /// `<name>.agg.json` contents (see [`agg_json`]).
    pub agg: String,
}

/// Runs `name` traced if it is one of the five tables, returning its
/// artifacts; `None` for every other experiment (`repro` then falls
/// through to [`crate::scenarios::scenario_artifacts`] and
/// [`crate::figures::figure_artifacts`], so every experiment produces
/// artifacts — see DESIGN.md §Observability).
pub fn table_artifacts(
    runner: TrialRunner,
    name: &str,
    n: usize,
    mix_trials: u64,
    spatial_trials: u64,
) -> Option<TableArtifacts> {
    let mixing = |title: &str,
                  paper: &[[f64; 4]],
                  (rows, trace): (Vec<MixRow>, TableTrace)|
     -> TableArtifacts {
        let rows_json = mixing_rows_json(name, n, mix_trials, &rows);
        TableArtifacts {
            rendered: render_mixing(title, &rows, paper),
            summary: summary_json(&rows_json, &trace),
            rows: rows_json,
            agg: agg_json(name, "table", &trace.aggregates),
            jsonl: trace.jsonl,
        }
    };
    let spatial = |title: &str,
                   limit: Option<u32>,
                   (rows, trace): (Vec<SpatialRow>, TableTrace)|
     -> TableArtifacts {
        let rows_json = spatial_rows_json(name, spatial_trials, limit, &rows);
        TableArtifacts {
            rendered: render_spatial(title, &rows),
            summary: summary_json(&rows_json, &trace),
            rows: rows_json,
            agg: agg_json(name, "table", &trace.aggregates),
            jsonl: trace.jsonl,
        }
    };
    Some(match name {
        "table1" => mixing(
            TITLE_TABLE1,
            &PAPER_TABLE1,
            traced_table1(runner, n, mix_trials),
        ),
        "table2" => mixing(
            TITLE_TABLE2,
            &PAPER_TABLE2,
            traced_table2(runner, n, mix_trials),
        ),
        "table3" => mixing(
            TITLE_TABLE3,
            &PAPER_TABLE3,
            traced_table3(runner, n, mix_trials),
        ),
        "table4" => {
            let net = cin(&CinConfig::default());
            spatial(
                TITLE_TABLE4,
                None,
                traced_table45_on(runner, &net, spatial_trials, None, name),
            )
        }
        "table5" => {
            let net = cin(&CinConfig::default());
            spatial(
                TITLE_TABLE5,
                Some(1),
                traced_table45_on(runner, &net, spatial_trials, Some(1), name),
            )
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::mixing_sweep_with;

    fn small_table1(runner: TrialRunner) -> (Vec<MixRow>, TableTrace) {
        traced_mixing_sweep(runner, "table1", 120, 8, &[1, 2], |k| {
            RumorEpidemic::new(
                RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k })
                    .with_reset_on_useful(true),
            )
        })
    }

    #[test]
    fn traced_sweep_rows_match_the_plain_sweep() {
        let runner = TrialRunner::new();
        let (rows, trace) = small_table1(runner);
        let plain = mixing_sweep_with(runner, 120, 8, &[1, 2], |k| {
            RumorEpidemic::new(
                RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k })
                    .with_reset_on_useful(true),
            )
        });
        assert_eq!(rows, plain, "observers must not perturb the experiment");
        assert_eq!(trace.violations, 0, "shipped drivers are invariant-clean");
        // One run_start + run_end pair per (k, trial).
        assert_eq!(trace.jsonl.matches(r#""event":"run_start""#).count(), 2 * 8);
        assert_eq!(trace.jsonl.matches(r#""event":"run_end""#).count(), 2 * 8);
        assert!(trace
            .jsonl
            .starts_with(r#"{"event":"run_start","experiment":"table1","k":1,"trial":0"#));
    }

    #[test]
    fn traced_sweep_aggregates_per_k() {
        let (rows, trace) = small_table1(TrialRunner::new());
        assert_eq!(trace.aggregates.len(), 2);
        let entry = &trace.aggregates[0];
        assert_eq!(entry.label, "k=1");
        assert_eq!(entry.agg.runs(), 8);
        assert_eq!(entry.agg.sites(), 120);
        // The sink sees the same contact stream the result totals came
        // from: mean traffic per site must agree with the table row.
        let m = entry.agg.totals().sent as f64 / (8.0 * 120.0);
        assert!(
            (m - rows[0].traffic).abs() < 1e-9,
            "{m} vs {}",
            rows[0].traffic
        );
        let json = agg_json("table1", "table", &trace.aggregates);
        assert!(
            json.starts_with(
                r#"{"experiment":"table1","kind":"table","aggregates":[{"label":"k=1""#
            ),
            "{json}"
        );
        for forbidden in ["seconds", "nanos", "rss"] {
            assert!(
                !json.contains(forbidden),
                "{forbidden} leaked into agg json"
            );
        }
    }

    #[test]
    fn rows_json_is_well_formed() {
        let rows = vec![MixRow {
            k: 2,
            residue: 0.05,
            traffic: 3.25,
            t_ave: 11.5,
            t_last: 17.0,
        }];
        let json = mixing_rows_json("table1", 1000, 100, &rows);
        assert_eq!(
            json,
            r#"{"experiment":"table1","n":1000,"trials":100,"rows":[{"k":2,"residue":0.05,"traffic":3.25,"t_ave":11.5,"t_last":17}]}"#
        );
    }

    #[test]
    fn spatial_rows_json_encodes_the_connection_limit() {
        let row = SpatialRow {
            label: "uniform".to_string(),
            t_last: 8.0,
            t_ave: 5.0,
            cmp_avg: 6.0,
            cmp_bushey: 75.0,
            upd_avg: 6.0,
            upd_bushey: 74.0,
        };
        let unlimited = spatial_rows_json("table4", 10, None, std::slice::from_ref(&row));
        assert!(unlimited.contains(r#""connection_limit":null"#));
        let limited = spatial_rows_json("table5", 10, Some(1), &[row]);
        assert!(limited.contains(r#""connection_limit":1"#));
        assert!(limited.contains(r#""cmp_bushey":75"#));
    }

    #[test]
    fn table_artifacts_covers_tables_only() {
        assert!(table_artifacts(TrialRunner::new(), "fig-sir-curve", 100, 1, 1).is_none());
        let a =
            table_artifacts(TrialRunner::new(), "table1", 100, 2, 1).expect("table1 is traceable");
        assert!(a.rendered.starts_with(&format!("\n## {TITLE_TABLE1}")));
        assert!(a.summary.contains(r#""invariant_violations":0"#));
        assert!(a.summary.contains(r#""trace_lines":"#));
        assert!(a.rows.starts_with(r#"{"experiment":"table1""#));
        assert!(!a.jsonl.is_empty());
        assert!(a
            .agg
            .starts_with(r#"{"experiment":"table1","kind":"table""#));
        assert!(a.agg.contains(r#""p50":"#), "{}", a.agg);
    }
}
