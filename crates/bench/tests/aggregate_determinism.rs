//! The acceptance property behind the `.agg.json` artifacts: streaming
//! aggregates are pure functions of the experiment's seed universe, so
//! the serialized bytes must be identical at any `EPIDEMIC_THREADS`
//! budget — and, for the sharded engine, at any worker count for a fixed
//! shard count. They must also carry no wall-clock, allocation, or RSS
//! fields, or the byte-identity above would be unachievable.

use epidemic_bench::figures::{cin_steady_sharded_data, figure_artifacts};
use epidemic_bench::scenarios::scenario_artifacts;
use epidemic_bench::trace::{agg_json, table_artifacts};
use epidemic_net::topologies::{cin, CinConfig};
use epidemic_sim::runner::TrialRunner;

/// Aggregates describe simulated cycles only; any of these substrings in
/// the serialized document would smuggle a machine-dependent measurement
/// into an artifact that CI diffs byte-for-byte.
fn assert_no_wall_clock_fields(agg: &str) {
    for needle in ["seconds", "alloc", "rss", "wall_clock", "elapsed"] {
        assert!(
            !agg.contains(needle),
            "agg.json leaks a host-dependent field ({needle:?})"
        );
    }
}

#[test]
fn table_aggregate_is_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        table_artifacts(TrialRunner::new().threads(threads), "table1", 150, 12, 12)
            .expect("table1 is traceable")
    };
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(
        sequential.agg, parallel.agg,
        "aggregate bytes must not depend on threads"
    );
    assert!(sequential.agg.contains(r#""kind":"table""#));
    assert!(sequential.agg.contains(r#""p50":"#));
    assert_no_wall_clock_fields(&sequential.agg);
}

#[test]
fn figure_aggregate_is_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        figure_artifacts(TrialRunner::new().threads(threads), "fig-rumor-ode", 150, 8)
            .expect("fig-rumor-ode is a figure")
    };
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(sequential.agg, parallel.agg);
    assert_eq!(
        sequential, parallel,
        "every artifact must match, not just agg"
    );
    assert!(sequential.agg.contains(r#""kind":"figure""#));
    assert!(sequential.agg.contains(r#""p99":"#));
    assert!(
        sequential.jsonl.is_empty(),
        "figures aggregate instead of tracing"
    );
    assert_no_wall_clock_fields(&sequential.agg);
}

#[test]
fn scenario_aggregate_is_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        scenario_artifacts(TrialRunner::new().threads(threads), "scenario-partition", 4)
            .expect("scenario-partition resolves")
    };
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(sequential.agg, parallel.agg);
    assert!(sequential.agg.contains(r#""kind":"scenario""#));
    assert_no_wall_clock_fields(&sequential.agg);
}

#[test]
fn sharded_aggregate_is_worker_invariant_at_each_shard_count() {
    // A small CIN keeps the test fast; determinism does not depend on
    // topology size.
    let net = cin(&CinConfig {
        na_regions: 3,
        sites_per_region: 6,
        europe_sites: 6,
        backbone_chords: 1,
        transatlantic_cost: 1,
        seed: 42,
    });
    for shards in [4usize, 8] {
        let run = |threads: usize, workers: usize| {
            let (_, aggregates) = cin_steady_sharded_data(
                TrialRunner::new().threads(threads),
                &net,
                3,
                shards,
                workers,
            );
            agg_json("fig-cin-steady-sharded", "figure", &aggregates)
        };
        let reference = run(1, 1);
        // Vary the trial fan-out and the intra-trial worker pool
        // together: the aggregate is a pure function of (seed, shards).
        assert_eq!(
            run(8, 2),
            reference,
            "aggregate differs across workers at {shards} shards"
        );
        assert_no_wall_clock_fields(&reference);
    }
}
