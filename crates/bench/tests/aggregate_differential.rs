//! Differential check of the streaming [`AggregatingSink`]: the same run
//! observed by a full-granularity tracer and by the sink must agree —
//! a naive post-hoc scan over the JSONL contact/cycle lines, replaying
//! the sink's delay rule (a useful contact marks both endpoints; the
//! first mark per site per run records the delay), must reproduce the
//! sink's delay histogram, contact totals, and link totals exactly.
//!
//! One mixing-table driver and one declarative scenario are exercised,
//! so both contact-loop implementations feed the seam identically.

use epidemic_bench::parallel_trials_with;
use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_sim::engine::trace::{AggregateObserver, TraceObserver};
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::scenario::{bundled, ScenarioEngine};
use epidemic_trace::json::{parse, Value};
use epidemic_trace::{RunAggregate, RunTracer, TraceConfig, DELAY_BUCKETS};

/// What the naive scan recovers from a full-granularity JSONL trace.
#[derive(Debug, Default, PartialEq)]
struct Replay {
    runs: u64,
    sites: u64,
    max_cycle: u64,
    contacts: u64,
    sent: u64,
    useful: u64,
    fruitless: u64,
    delay_count: u64,
    delay_sum: f64,
    delay_max: u64,
    delay_buckets: Vec<u64>,
    link_contacts: u64,
    link_sent: u64,
    link_useful: u64,
}

fn field(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?}"))
}

/// Replays the sink's aggregation rules over raw trace lines.
fn scan(jsonl: &str) -> Replay {
    let mut r = Replay {
        delay_buckets: vec![0; DELAY_BUCKETS.len() + 1],
        ..Replay::default()
    };
    let mut seen: Vec<bool> = Vec::new();
    for line in jsonl.lines() {
        let v = parse(line).expect("trace lines are JSON objects");
        match v.get("event").and_then(Value::as_str).expect("event tag") {
            "run_start" => {
                let n = field(&v, "s") + field(&v, "i") + field(&v, "r");
                r.runs += 1;
                r.sites = r.sites.max(n);
                seen.clear();
                seen.resize(n as usize, false);
            }
            "contact" => {
                let (sent, useful) = (field(&v, "sent"), field(&v, "useful"));
                r.contacts += 1;
                r.sent += sent;
                r.useful += useful;
                if useful == 0 {
                    r.fruitless += 1;
                } else {
                    let cycle = field(&v, "cycle");
                    for site in [field(&v, "from"), field(&v, "to")] {
                        if let Some(slot) = seen.get_mut(site as usize) {
                            if !*slot {
                                *slot = true;
                                r.delay_count += 1;
                                r.delay_sum += cycle as f64;
                                r.delay_max = r.delay_max.max(cycle);
                                let idx = DELAY_BUCKETS
                                    .iter()
                                    .position(|&b| cycle as f64 <= b)
                                    .unwrap_or(DELAY_BUCKETS.len());
                                r.delay_buckets[idx] += 1;
                            }
                        }
                    }
                }
            }
            "cycle" => r.max_cycle = r.max_cycle.max(field(&v, "cycle")),
            // Totals-only summary line; everything in it is derived from
            // the contact lines the scan already replays.
            "run_end" => {}
            "link" => {
                r.link_contacts += field(&v, "contacts");
                r.link_sent += field(&v, "sent");
                r.link_useful += field(&v, "useful");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    r
}

/// Reads the same quantities out of the sink's serialized aggregate.
fn from_aggregate(agg: &RunAggregate) -> Replay {
    let v = parse(&agg.to_json()).expect("RunAggregate::to_json is valid JSON");
    let totals = v.get("totals").expect("totals");
    let delay = v.get("delay").expect("delay");
    let links = v.get("links").expect("links");
    let link_totals = links.get("totals").expect("link totals");
    Replay {
        runs: field(&v, "runs"),
        sites: field(&v, "sites"),
        max_cycle: field(&v, "max_cycle"),
        contacts: field(totals, "contacts"),
        sent: field(totals, "sent"),
        useful: field(totals, "useful"),
        fruitless: field(totals, "fruitless"),
        delay_count: field(delay, "count"),
        delay_sum: delay.get("sum").and_then(Value::as_f64).expect("delay sum"),
        delay_max: field(delay, "max"),
        delay_buckets: delay
            .get("buckets")
            .and_then(Value::as_array)
            .expect("delay buckets")
            .iter()
            .map(|b| b.as_u64().expect("bucket count"))
            .collect(),
        link_contacts: field(link_totals, "contacts"),
        link_sent: field(link_totals, "sent"),
        link_useful: field(link_totals, "useful"),
    }
}

/// Runs `trials` seeds through `run`, which must observe each trial with
/// a full tracer and a sink; returns the concatenated trace and merged
/// aggregate.
fn observe_trials(
    trials: u64,
    run: impl Fn(u64) -> (String, RunAggregate) + Sync,
) -> (String, RunAggregate) {
    parallel_trials_with(
        TrialRunner::new().threads(1),
        trials,
        run,
        (String::new(), RunAggregate::default()),
        |(mut jsonl, mut agg), (text, trial_agg)| {
            jsonl.push_str(&text);
            agg.merge(&trial_agg);
            (jsonl, agg)
        },
    )
}

#[test]
fn sink_matches_post_hoc_scan_for_a_mixing_table() {
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    ));
    let (jsonl, agg) = observe_trials(3, |trial| {
        let tracer = RunTracer::new(TraceConfig::full()).label_u64("trial", trial);
        let mut trace = TraceObserver::with_tracer(tracer);
        let mut sink = AggregateObserver::new();
        let seed = trial.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 2;
        driver.run_observed(64, seed, &mut (&mut trace, &mut sink));
        (trace.finish(), sink.finish())
    });
    let replayed = scan(&jsonl);
    assert!(replayed.delay_count > 0, "the epidemic must spread");
    assert_eq!(replayed, from_aggregate(&agg));
}

#[test]
fn sink_matches_post_hoc_scan_for_a_scenario() {
    let spec = bundled::by_name("partition").expect("bundled scenario");
    let engine = ScenarioEngine::new(spec).expect("bundled scenarios validate");
    let (jsonl, agg) = observe_trials(2, |trial| {
        let tracer = RunTracer::new(TraceConfig::full()).label_u64("trial", trial);
        let mut trace = TraceObserver::with_tracer(tracer);
        let mut sink = AggregateObserver::new();
        engine.run_observed(
            trial.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            &mut (&mut trace, &mut sink),
        );
        (trace.finish(), sink.finish())
    });
    let replayed = scan(&jsonl);
    assert!(replayed.contacts > 0, "the scenario must run contacts");
    assert_eq!(replayed, from_aggregate(&agg));
}
