//! Golden-output regression tests.
//!
//! These pin the exact rendered text of Table 1, Table 4 and one
//! spatial-rumor cell, at deliberately small trial counts so the suite
//! stays fast. The numbers depend on every RNG draw a driver makes, so
//! any refactor that perturbs the partner-selection, contact or
//! convergence logic — however slightly — shows up as a byte-level diff
//! here. Each table is checked at 1 worker thread and at 8 to prove the
//! trial runner's scheduling never leaks into results.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo test -p epidemic-bench --test golden -- --ignored regenerate
//! ```

use epidemic_bench::figures::{render_spatial_rumor, spatial_rumor_on};
use epidemic_bench::tables::{
    render_mixing, render_spatial, table1_with, table45_on_with, PAPER_TABLE1,
};
use epidemic_net::topologies::{cin, Cin, CinConfig};
use epidemic_net::Spatial;
use epidemic_sim::runner::TrialRunner;

const TABLE1_GOLDEN: &str = include_str!("golden/table1.txt");
const TABLE4_GOLDEN: &str = include_str!("golden/table4.txt");
const SPATIAL_RUMOR_GOLDEN: &str = include_str!("golden/spatial_rumor.txt");

/// The 50-site CIN used by the spatial goldens (same configuration as the
/// in-crate `table45_on` unit test).
fn small_cin() -> Cin {
    cin(&CinConfig {
        na_regions: 4,
        sites_per_region: 10,
        europe_sites: 10,
        backbone_chords: 2,
        seed: 7,
        ..CinConfig::default()
    })
}

fn table1_text(runner: TrialRunner) -> String {
    render_mixing(
        "Table 1 (golden): push, feedback, counter, n=200, 16 trials",
        &table1_with(runner, 200, 16),
        &PAPER_TABLE1,
    )
}

fn table4_text(runner: TrialRunner) -> String {
    render_spatial(
        "Table 4 (golden): push-pull anti-entropy on the 50-site CIN, 6 trials",
        &table45_on_with(runner, &small_cin(), 6, None),
    )
}

fn spatial_rumor_text(runner: TrialRunner) -> String {
    let net = small_cin();
    let rows = spatial_rumor_on(
        runner,
        &net,
        &[("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 })],
        6,
        40,
        8,
    );
    render_spatial_rumor(&rows)
}

#[test]
fn table1_matches_golden_single_thread() {
    assert_eq!(table1_text(TrialRunner::new().threads(1)), TABLE1_GOLDEN);
}

#[test]
fn table1_matches_golden_parallel() {
    assert_eq!(table1_text(TrialRunner::new().threads(8)), TABLE1_GOLDEN);
}

#[test]
fn table4_matches_golden_single_thread() {
    assert_eq!(table4_text(TrialRunner::new().threads(1)), TABLE4_GOLDEN);
}

#[test]
fn table4_matches_golden_parallel() {
    assert_eq!(table4_text(TrialRunner::new().threads(8)), TABLE4_GOLDEN);
}

#[test]
fn spatial_rumor_matches_golden_single_thread() {
    assert_eq!(
        spatial_rumor_text(TrialRunner::new().threads(1)),
        SPATIAL_RUMOR_GOLDEN
    );
}

#[test]
fn spatial_rumor_matches_golden_parallel() {
    assert_eq!(
        spatial_rumor_text(TrialRunner::new().threads(8)),
        SPATIAL_RUMOR_GOLDEN
    );
}

#[test]
#[ignore = "overwrites the checked-in golden files"]
fn regenerate() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    std::fs::create_dir_all(dir).expect("create golden dir");
    let single = TrialRunner::new().threads(1);
    std::fs::write(format!("{dir}/table1.txt"), table1_text(single)).expect("write table1");
    std::fs::write(format!("{dir}/table4.txt"), table4_text(single)).expect("write table4");
    std::fs::write(
        format!("{dir}/spatial_rumor.txt"),
        spatial_rumor_text(single),
    )
    .expect("write spatial_rumor");
}
