//! Golden byte-identity on the flat storage backend.
//!
//! `golden.rs` pins Table 1's rendered text on the default backend; this
//! binary reruns the same experiment with `EPIDEMIC_BACKEND=flat` and
//! asserts the *same* golden file matches byte for byte. That is the
//! strongest cheap statement of the tentpole's equivalence claim: every
//! RNG draw, every timestamp comparison and every rendered digit survives
//! the storage swap.
//!
//! The backend choice is read from the environment once, at the first
//! `Database` construction, and cached for the process lifetime — so the
//! variable must be set before any replica exists. That is why this is a
//! dedicated test binary with exactly one test: a sibling test could
//! construct a `Database` first and freeze the default backend.

use epidemic_bench::tables::{render_mixing, table1_with, PAPER_TABLE1};
use epidemic_db::{Backend, BACKEND_ENV_VAR};
use epidemic_sim::runner::TrialRunner;

const TABLE1_GOLDEN: &str = include_str!("golden/table1.txt");

#[test]
fn table1_on_flat_backend_matches_the_btree_golden() {
    std::env::set_var(BACKEND_ENV_VAR, "flat");
    assert_eq!(
        Backend::from_env(),
        Backend::Flat,
        "env override must be read before any Database is built"
    );
    let rendered = render_mixing(
        "Table 1 (golden): push, feedback, counter, n=200, 16 trials",
        &table1_with(TrialRunner::new().threads(1), 200, 16),
        &PAPER_TABLE1,
    );
    assert_eq!(
        rendered, TABLE1_GOLDEN,
        "flat backend changed Table 1's bytes"
    );
}
