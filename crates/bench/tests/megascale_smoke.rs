//! CI smoke for the megascale sweep: the `n = 10⁴` point of
//! fig-megascale, under the counting allocator, with a wall-clock budget.
//!
//! This pins the tentpole's load-bearing claims at a size CI can
//! afford:
//!
//! * the flat backend runs the *same epidemic* as the BTree backend
//!   (identical `EpidemicResult` on the same seed),
//! * it asks the allocator for strictly less while doing so, and
//! * the fast path plus streaming aggregation allocates *sublinearly* in
//!   `n` — lazy materialization means no replica-per-site, and the
//!   [`AggregateObserver`] folds the whole run into bounded memory.
//!
//! Like `zero_alloc.rs`, this file owns its test binary: it registers
//! [`CountingAlloc`] as the global allocator, so it is compiled out
//! without the `count-allocs` feature. Run it with
//!
//! ```text
//! cargo test -p epidemic-bench --features count-allocs --test megascale_smoke --release
//! ```

#![cfg(feature = "count-allocs")]

use std::time::{Duration, Instant};

use epidemic_bench::alloc_counter::{allocations, CountingAlloc};
use epidemic_db::Backend;
use epidemic_net::DegreeGraph;
use epidemic_sim::engine::AggregateObserver;
use epidemic_sim::MegascaleSim;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const N: usize = 10_000;
/// Generous even for an unoptimized single-CPU debug run; a release build
/// finishes the whole test in a couple of seconds. The budget exists to
/// catch complexity regressions (an accidentally quadratic path at 10⁴
/// sites blows straight past it), not to benchmark.
const BUDGET: Duration = Duration::from_secs(300);

#[test]
fn flat_backend_matches_btree_and_allocates_strictly_less() {
    let start = Instant::now();
    let sim = MegascaleSim::new();
    let seed = 1987 ^ N as u64;

    let before = allocations();
    let tree = sim.run_uniform(N, seed, Backend::BTree);
    let tree_allocs = allocations() - before;

    let before = allocations();
    let flat = sim.run_uniform(N, seed, Backend::Flat);
    let flat_allocs = allocations() - before;

    // Same seed, same RNG stream, observationally equivalent storage:
    // the epidemic itself must be identical to the last bit.
    assert_eq!(tree, flat, "backends diverged on the same epidemic");
    assert!(tree.residue < 0.05, "epidemic failed to spread: {tree:?}");
    assert!(
        flat_allocs < tree_allocs,
        "flat backend allocated {flat_allocs} times, btree {tree_allocs} — \
         the flat backend must allocate strictly less at n = 10^4"
    );

    // Scale-free topology exercises the NeighborPartners + DegreeGraph
    // path the big sweep uses; same equivalence requirement.
    let graph = DegreeGraph::scale_free(N, 2, 1987);
    let tree = sim.run_scale_free(&graph, seed, Backend::BTree);
    let flat = sim.run_scale_free(&graph, seed, Backend::Flat);
    assert_eq!(tree, flat, "backends diverged on the scale-free epidemic");

    let elapsed = start.elapsed();
    assert!(
        elapsed < BUDGET,
        "megascale smoke took {elapsed:?}, budget {BUDGET:?}"
    );
}

/// The fast path's memory claim, in allocator terms: a full fast-path
/// epidemic at `n = 10⁴`, streamed through an [`AggregateObserver`],
/// allocates strictly fewer than one heap allocation per site. The
/// legacy path cannot do this — it materializes a replica per site
/// before the first contact — so this bound is what "lazy site
/// materialization" buys, and it holds for the observer too (the
/// aggregate is bounded, not per-event).
#[test]
fn fast_path_with_streaming_aggregation_allocates_sublinearly() {
    let start = Instant::now();
    let sim = MegascaleSim::new().workers(1);
    let seed = 1987 ^ N as u64;

    let before = allocations();
    let mut sink = AggregateObserver::new();
    let r = sim.run_uniform_fast_observed(N, seed, &mut sink);
    let agg = sink.finish();
    let fast_allocs = allocations() - before;

    assert!(r.residue < 0.05, "epidemic failed to spread: {r:?}");
    assert_eq!(agg.runs(), 1, "aggregate folded exactly one run");
    assert!(
        fast_allocs < N as u64,
        "fast path + aggregation allocated {fast_allocs} times for n = {N} — \
         lazy materialization must stay strictly below one allocation per site"
    );

    let elapsed = start.elapsed();
    assert!(
        elapsed < BUDGET,
        "fast-path smoke took {elapsed:?}, budget {BUDGET:?}"
    );
}
