//! Integration tests for the `repro` binary's CLI contract: selector
//! errors must be loud (nonzero exit + the list of valid names), every
//! experiment — tables, figures, scenarios — must write `--trace`/`--json`
//! artifacts (no experiment runs untraced), and each artifact directory
//! must carry a `manifest.json` recording what ran and under which
//! parallelism/backend knobs.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

/// A unique scratch directory per test (no tempfile dependency).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn only_with_no_match_exits_nonzero_and_lists_names() {
    let out = repro(&["--only", "no-such-experiment"]);
    assert_eq!(out.status.code(), Some(2), "zero-match --only must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("matches no experiment"),
        "stderr must explain the empty match: {stderr}"
    );
    // The valid names must be offered so the user can fix the selector.
    for name in ["table1", "fig-cin-steady", "ablation-churn"] {
        assert!(stderr.contains(name), "stderr must list {name}: {stderr}");
    }
}

#[test]
fn unknown_experiment_exits_nonzero_and_lists_names() {
    let out = repro(&["definitely-not-real"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "{stderr}");
    assert!(stderr.contains("table1"), "{stderr}");
}

#[test]
fn trace_with_empty_selection_is_a_usage_error() {
    // `--trace DIR` with neither experiments nor selectors would write
    // nothing at all; that must be a usage error, not a silent no-op.
    let dir = scratch("empty-trace");
    let out = repro(&["--trace", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        !dir.exists(),
        "an empty selection must not create the artifact directory"
    );
}

#[test]
fn figures_write_artifacts_and_a_manifest() {
    let dir = scratch("figure-artifacts");
    let dir_str = dir.to_str().unwrap();
    let out = repro(&["--trace", dir_str, "--json", dir_str, "fig-line-traffic"]);
    assert!(out.status.success(), "fig-line-traffic runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("untraced"), "{stderr}");
    assert!(!dir.join("untraced.json").exists());
    for ext in ["rows.json", "agg.json", "summary.json"] {
        assert!(
            dir.join(format!("fig-line-traffic.{ext}")).exists(),
            "fig-line-traffic.{ext} must be written"
        );
    }
    // Figures stream into aggregates instead of tracing per cycle, so an
    // empty .jsonl is skipped rather than written.
    assert!(!dir.join("fig-line-traffic.jsonl").exists());
    let rows = std::fs::read_to_string(dir.join("fig-line-traffic.rows.json")).unwrap();
    assert!(rows.contains(r#""kind":"figure""#), "{rows}");
    let manifest = std::fs::read_to_string(dir.join("manifest.json"))
        .expect("manifest.json written next to the artifacts");
    for key in [
        "\"fig-line-traffic\"",
        "\"threads\"",
        "\"shards\"",
        "\"backend\"",
    ] {
        assert!(manifest.contains(key), "manifest records {key}: {manifest}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_knows_fig_megascale() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l == "fig-megascale"),
        "--list must include fig-megascale: {stdout}"
    );
}

#[test]
fn list_groups_experiments_by_kind() {
    let out = repro(&["--list"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    let header = |h: &str| {
        lines
            .iter()
            .position(|l| *l == h)
            .unwrap_or_else(|| panic!("--list must print a {h} header: {stdout}"))
    };
    let (tables, figures, scenarios) = (
        header("[tables]"),
        header("[figures]"),
        header("[scenarios]"),
    );
    assert!(
        tables < figures && figures < scenarios,
        "groups in tables/figures/scenarios order: {stdout}"
    );
    // Bare names stay on their own lines, sorted into the right group.
    let position = |name: &str| {
        lines
            .iter()
            .position(|l| *l == name)
            .unwrap_or_else(|| panic!("--list must include {name}: {stdout}"))
    };
    assert!(position("table4") > tables && position("table4") < figures);
    assert!(position("fig-sir-curve") > figures && position("fig-sir-curve") < scenarios);
    assert!(position("fig-scenarios") > scenarios);
    assert!(position("scenario-churn-partition-heal") > scenarios);
}

#[test]
fn scenario_prefix_selection_writes_artifacts_without_untraced_json() {
    // `--only scenario-` must prefix-match every bundled scenario and
    // write the full artifact trio per experiment; none of them run
    // untraced.
    let dir = scratch("scenario-prefix");
    let dir_str = dir.to_str().unwrap();
    let out = repro(&[
        "--trials",
        "2",
        "--trace",
        dir_str,
        "--json",
        dir_str,
        "--only",
        "scenario-",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("untraced"), "{stderr}");
    assert!(!dir.join("untraced.json").exists());
    for name in [
        "scenario-clearinghouse",
        "scenario-dormant-death",
        "scenario-partition",
        "scenario-crash",
        "scenario-churn",
        "scenario-flash-crowd-lossy",
        "scenario-churn-partition-heal",
    ] {
        for ext in ["jsonl", "summary.json", "rows.json", "agg.json"] {
            assert!(
                dir.join(format!("{name}.{ext}")).exists(),
                "{name}.{ext} must be written"
            );
        }
    }
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"scenario-crash\""), "{manifest}");
    let rows = std::fs::read_to_string(dir.join("scenario-partition.rows.json")).unwrap();
    assert!(rows.contains(r#""scenario":"partition""#), "{rows}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn megascale_honors_the_max_n_cap_and_still_writes_artifacts() {
    // EPIDEMIC_MEGASCALE_MAX_N=0 keeps the sweep empty, so the CLI
    // contract (selection, artifact trio, manifest) is testable without
    // paying for a real epidemic.
    let dir = scratch("megascale");
    let dir_str = dir.to_str().unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--json", dir_str, "--only", "fig-megascale"])
        .env("EPIDEMIC_MEGASCALE_MAX_N", "0")
        .output()
        .expect("repro binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("untraced"), "{stderr}");
    assert!(!dir.join("untraced.json").exists());
    let rows = std::fs::read_to_string(dir.join("fig-megascale.rows.json"))
        .expect("capped sweep still writes rows");
    assert!(rows.contains(r#""experiment":"fig-megascale""#), "{rows}");
    let agg = std::fs::read_to_string(dir.join("fig-megascale.agg.json"))
        .expect("capped sweep still writes aggregates");
    assert!(agg.contains(r#""aggregates":[]"#), "empty sweep: {agg}");
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
    assert!(manifest.contains("\"fig-megascale\""), "{manifest}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_tables_write_rows_and_aggregates() {
    let dir = scratch("tables-only");
    let dir_str = dir.to_str().unwrap();
    let out = repro(&["--trials", "1", "--json", dir_str, "table1"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("untraced"), "{stderr}");
    assert!(!dir.join("untraced.json").exists());
    assert!(dir.join("table1.rows.json").exists());
    let agg = std::fs::read_to_string(dir.join("table1.agg.json")).unwrap();
    assert!(agg.contains(r#""kind":"table""#), "{agg}");
    assert!(
        agg.contains(r#""p90":"#),
        "aggregates carry quantiles: {agg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
