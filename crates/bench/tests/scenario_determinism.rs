//! Thread-count determinism for scenario artifacts: the `fig-scenarios`
//! sweep and single-scenario selections must produce byte-identical
//! traces, rows and summaries whether trials run on one worker or eight.
//! (The CI `scenario-smoke` job re-checks the same property end-to-end
//! through the `repro` binary with `diff -r`.)

use epidemic_bench::scenarios::scenario_artifacts;
use epidemic_sim::runner::TrialRunner;

fn artifacts_at(threads: usize, name: &str, trials: u64) -> epidemic_bench::trace::TableArtifacts {
    scenario_artifacts(TrialRunner::new().threads(threads), name, trials)
        .unwrap_or_else(|| panic!("{name} is a scenario experiment"))
}

#[test]
fn fig_scenarios_artifacts_are_thread_count_invariant() {
    let one = artifacts_at(1, "fig-scenarios", 4);
    let eight = artifacts_at(8, "fig-scenarios", 4);
    assert_eq!(
        one.jsonl, eight.jsonl,
        "trace bytes must not depend on threads"
    );
    assert_eq!(one.rows, eight.rows);
    assert_eq!(one.summary, eight.summary);
    assert_eq!(one.rendered, eight.rendered);
}

#[test]
fn single_scenario_artifacts_are_thread_count_invariant() {
    for name in ["scenario-churn", "scenario-flash-crowd-lossy"] {
        let one = artifacts_at(1, name, 6);
        let eight = artifacts_at(8, name, 6);
        assert_eq!(one.jsonl, eight.jsonl, "{name}");
        assert_eq!(one.rows, eight.rows, "{name}");
        assert_eq!(one.summary, eight.summary, "{name}");
        assert_eq!(one.rendered, eight.rendered, "{name}");
    }
}

#[test]
fn scenario_traces_carry_no_wall_clock_fields() {
    // The determinism contract extends to content: no timestamps or
    // durations may leak into the artifact bytes.
    let a = artifacts_at(2, "fig-scenarios", 2);
    for needle in ["time", "seconds", "duration"] {
        assert!(
            !a.jsonl.contains(needle),
            "trace must stay wall-clock free, found {needle:?}"
        );
    }
}
