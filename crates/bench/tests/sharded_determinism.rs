//! The sharded CIN steady-state figure must be byte-identical at any
//! worker count: trial fan-out returns results in trial order, and each
//! trial's sharded run is a pure function of `(seed, shards)`. This is the
//! bench-layer counterpart of `epidemic-sim`'s `sharded_equivalence`
//! suite, exercised through the exact row-building code the `repro`
//! binary renders.

use epidemic_bench::figures::cin_steady_sharded_rows;
use epidemic_net::topologies::{cin, CinConfig};
use epidemic_sim::runner::TrialRunner;

#[test]
fn cin_steady_sharded_rows_are_worker_invariant() {
    // A small CIN keeps the test fast; determinism does not depend on
    // topology size.
    let net = cin(&CinConfig {
        na_regions: 3,
        sites_per_region: 6,
        europe_sites: 6,
        backbone_chords: 1,
        transatlantic_cost: 1,
        seed: 42,
    });
    let trials = 3;
    let shards = 4;
    let reference = cin_steady_sharded_rows(TrialRunner::new().threads(1), &net, trials, shards, 1);
    assert!(!reference.is_empty());
    for workers in [2usize, 8] {
        // Vary the trial-runner thread count and the intra-trial shard
        // worker count together: neither may affect the rendered rows.
        let rows = cin_steady_sharded_rows(
            TrialRunner::new().threads(workers),
            &net,
            trials,
            shards,
            workers,
        );
        assert_eq!(rows, reference, "rows differ at {workers} workers");
    }
}
