//! The acceptance property behind `repro --trace`: trace artifacts carry
//! no wall-clock fields, and the trial runner returns per-trial results
//! in trial order — so every artifact must be byte-identical at
//! `EPIDEMIC_THREADS=1` and `=8`. These tests pin that down at reduced
//! scale (same code path as the full-size tables, smaller `n`/trials).

use epidemic_bench::tables::table1_with;
use epidemic_bench::trace::{table_artifacts, traced_table1, traced_table45_on};
use epidemic_net::topologies::{cin, CinConfig};
use epidemic_sim::runner::TrialRunner;

#[test]
fn table1_artifacts_are_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        table_artifacts(TrialRunner::new().threads(threads), "table1", 150, 12, 12)
            .expect("table1 is traceable")
    };
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(
        sequential.jsonl, parallel.jsonl,
        "trace bytes must not depend on threads"
    );
    assert_eq!(sequential.summary, parallel.summary);
    assert_eq!(sequential.rows, parallel.rows);
    assert_eq!(sequential.rendered, parallel.rendered);
}

#[test]
fn traced_rows_match_untraced_rows_at_any_thread_count() {
    let (traced, trace) = traced_table1(TrialRunner::new().threads(8), 150, 12);
    let plain = table1_with(TrialRunner::new().threads(1), 150, 12);
    assert_eq!(traced, plain, "tracing must not perturb the experiment");
    assert_eq!(trace.violations, 0);
}

#[test]
fn spatial_trace_is_byte_identical_across_thread_counts() {
    let net = cin(&CinConfig {
        na_regions: 3,
        sites_per_region: 8,
        europe_sites: 8,
        backbone_chords: 2,
        seed: 7,
        ..CinConfig::default()
    });
    let run = |threads: usize| {
        traced_table45_on(
            TrialRunner::new().threads(threads),
            &net,
            8,
            Some(1),
            "table5",
        )
    };
    let (rows1, trace1) = run(1);
    let (rows8, trace8) = run(8);
    assert_eq!(trace1.jsonl, trace8.jsonl);
    assert_eq!(rows1, rows8);
    assert_eq!(
        trace1.violations, 0,
        "spatial anti-entropy is invariant-clean"
    );
    assert!(trace1.jsonl.contains(r#""distribution":"a = 2.0""#));
}
