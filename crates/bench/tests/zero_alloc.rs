//! Proves the tentpole's zero-allocation claim with an allocator, not a
//! profiler: on a converged pair, a steady-state anti-entropy conversation
//! must complete without asking the heap for a single byte, for every §1.3
//! comparison strategy.
//!
//! This file registers [`CountingAlloc`] as the test binary's global
//! allocator, which is why it holds exactly one test: any sibling test
//! running concurrently would bleed allocations into the measured window.
//! It is compiled out entirely without the `count-allocs` feature (default
//! builds keep the stock allocator); run it with
//!
//! ```text
//! cargo test -p epidemic-bench --features count-allocs --test zero_alloc --release
//! ```

#![cfg(feature = "count-allocs")]

use std::hint::black_box;

use epidemic_bench::alloc_counter::{allocations, CountingAlloc};
use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_db::SiteId;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const ENTRIES: u32 = 1_000;
/// Recent window comfortably covering the whole history, so the
/// `RecentList` branch walks a non-trivial list instead of an empty one.
const TAU: u64 = 1_000_000;

/// Allocation count of the cleanest of several measurement windows.
///
/// The counter is process-global, so the libtest harness thread can bleed
/// a stray allocation into any single window (it does so regularly on a
/// single-CPU machine, where the scheduler interleaves the harness's wait
/// loop with the test thread). The *minimum* over independent windows
/// isolates the measured code path itself: a path that truly allocates is
/// dirty in every window, while external noise is transient.
fn min_allocations(attempts: usize, mut f: impl FnMut()) -> u64 {
    (0..attempts)
        .map(|_| {
            let before = allocations();
            f();
            allocations() - before
        })
        .min()
        .expect("at least one attempt")
}

/// A pair that has fully converged on `ENTRIES` entries.
fn converged_pair() -> (Replica<u32, u64>, Replica<u32, u64>) {
    let mut a: Replica<u32, u64> = Replica::new(SiteId::new(0));
    let mut b: Replica<u32, u64> = Replica::new(SiteId::new(1));
    for key in 0..ENTRIES {
        a.client_update(key, u64::from(key));
    }
    AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
    (a, b)
}

#[test]
fn converged_exchanges_do_not_allocate() {
    let strategies = [
        ("full", Comparison::Full),
        ("checksum", Comparison::Checksum),
        ("recent_list", Comparison::RecentList { tau: TAU }),
        ("peel_back", Comparison::PeelBack),
    ];
    for (label, comparison) in strategies {
        let (mut a, mut b) = converged_pair();
        let protocol = AntiEntropy::new(Direction::PushPull, comparison);
        let mut scratch = ExchangeScratch::new();
        // Warm-up: let any lazily-grown scratch capacity settle before the
        // measured window (on a converged pair there should be none, but
        // the assertion is about steady state, not the first contact).
        for _ in 0..2 {
            black_box(protocol.exchange_with(&mut a, &mut b, &mut scratch));
        }
        let mut stats = Default::default();
        let delta = min_allocations(5, || {
            for _ in 0..100 {
                stats = black_box(protocol.exchange_with(&mut a, &mut b, &mut scratch));
            }
        });
        assert_eq!(
            delta, 0,
            "{label}: converged steady-state exchange allocated {delta} times over 100 contacts"
        );
        // Sanity-check the exchange did real comparison work. Note the
        // `recent_list` expectation: every listed entry counts as wire
        // traffic whether or not the receiver accepts it (offered ≠
        // accepted), so a converged pair still reports `ENTRIES` sent each
        // way — and the zero-allocation assertion above proves all of them
        // were rejected without cloning a single one.
        match comparison {
            Comparison::Full => {
                assert!(stats.full_compare, "{label}: full compare not recorded");
                assert!(stats.entries_scanned > 0, "{label}: no diff work recorded");
                assert_eq!(stats.sent_ab + stats.sent_ba, 0, "{label}: shipped entries");
            }
            Comparison::Checksum | Comparison::PeelBack => {
                assert!(
                    stats.checksum_exchanges > 0,
                    "{label}: no checksum compared"
                );
                assert_eq!(stats.sent_ab + stats.sent_ba, 0, "{label}: shipped entries");
            }
            Comparison::RecentList { .. } => {
                assert_eq!(
                    stats.sent_ab, ENTRIES as usize,
                    "{label}: recent list not walked"
                );
                assert_eq!(
                    stats.sent_ba, ENTRIES as usize,
                    "{label}: recent list not walked"
                );
                assert!(
                    !stats.full_compare,
                    "{label}: converged pair fell back to full compare"
                );
            }
        }
    }

    // The sharded engine gives every shard its own `ExchangeScratch`
    // (`ShardableProtocol::make_shard`) instead of the sequential engine's
    // single scratch. Steady-state contacts must stay allocation-free per
    // shard too: the scratch-reuse property cannot depend on there being
    // exactly one scratch. (Same measured window discipline as above; this
    // stays inside the single test so no sibling bleeds allocations.)
    let (mut a, mut b) = converged_pair();
    let protocol = AntiEntropy::new(Direction::PushPull, Comparison::RecentList { tau: TAU });
    let mut shard_scratches = [ExchangeScratch::new(), ExchangeScratch::new()];
    for scratch in &mut shard_scratches {
        for _ in 0..2 {
            black_box(protocol.exchange_with(&mut a, &mut b, scratch));
        }
    }
    let delta = min_allocations(5, || {
        for _ in 0..50 {
            for scratch in &mut shard_scratches {
                black_box(protocol.exchange_with(&mut a, &mut b, scratch));
            }
        }
    });
    assert_eq!(
        delta, 0,
        "per-shard scratch: converged steady-state exchanges allocated {delta} times"
    );

    // The *engine* around those exchanges must be allocation-free per cycle
    // too. The sharded engine's single-worker path used to assemble
    // per-round slice/rng/state/task Vecs on every round of every cycle,
    // which is why fig-cin-steady-sharded out-allocated its sequential twin
    // (954,625 vs 783,861). With the borrows now carved inline, two
    // identical steady-state runs differing only in `max_cycles` must
    // allocate *identically*: the longer run is a strict single-threaded
    // superset of the shorter one, so any difference is per-cycle engine
    // overhead. Zero update injection keeps the replicas converged-empty
    // (isolating the engine), and the two-site line forces deterministic
    // partner choice so the per-pair event buckets reach their high-water
    // capacity in cycle one of both runs — with two shards of one site
    // each, every cycle still runs both the self-pair and the cross-pair
    // inline branches the fix rewrote.
    let topo = epidemic_net::topologies::line(2);
    let run_allocs = |cycles: u32| {
        let sim = epidemic_sim::spatial_steady::SpatialSteadySim::new(
            &topo,
            epidemic_net::Spatial::Uniform,
            epidemic_sim::spatial_steady::SpatialSteadyConfig {
                updates_per_cycle: 0.0,
                warmup: 4,
                cycles,
                ..Default::default()
            },
        );
        min_allocations(5, || {
            black_box(sim.run_sharded(11, 2, 1));
        })
    };
    let short = run_allocs(6);
    let long = run_allocs(56);
    assert_eq!(
        long,
        short,
        "sharded engine allocated {} times over 50 extra steady-state cycles",
        long.saturating_sub(short)
    );
}
