//! Domain-to-server assignment (paper §0.1).
//!
//! "Each domain may be stored (replicated) on as few as one, or as many as
//! all, of the Clearinghouse servers, of which there are several hundred."

use std::collections::BTreeMap;

use epidemic_db::SiteId;

use crate::name::DomainId;

/// The assignment of domains to the server sites that replicate them.
///
/// # Example
///
/// ```
/// use epidemic_clearinghouse::{Directory, DomainId};
/// use epidemic_db::SiteId;
///
/// let mut dir = Directory::new();
/// let d: DomainId = "PARC:Xerox".parse()?;
/// dir.assign(d.clone(), vec![SiteId::new(0), SiteId::new(2)]);
/// assert!(dir.stores(SiteId::new(2), &d));
/// assert!(!dir.stores(SiteId::new(1), &d));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Directory {
    holders: BTreeMap<DomainId, Vec<SiteId>>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory::default()
    }

    /// Assigns `domain` to be replicated at `sites` (replacing any prior
    /// assignment). Duplicate sites are collapsed.
    pub fn assign(&mut self, domain: DomainId, mut sites: Vec<SiteId>) {
        sites.sort_unstable();
        sites.dedup();
        self.holders.insert(domain, sites);
    }

    /// Adds one replica site to an existing (or new) domain.
    pub fn add_replica(&mut self, domain: &DomainId, site: SiteId) {
        let sites = self.holders.entry(domain.clone()).or_default();
        if let Err(pos) = sites.binary_search(&site) {
            sites.insert(pos, site);
        }
    }

    /// The sites replicating `domain` (empty if unknown).
    pub fn holders(&self, domain: &DomainId) -> &[SiteId] {
        self.holders.get(domain).map_or(&[], Vec::as_slice)
    }

    /// Whether `site` replicates `domain`.
    pub fn stores(&self, site: SiteId, domain: &DomainId) -> bool {
        self.holders(domain).binary_search(&site).is_ok()
    }

    /// All known domains, in order.
    pub fn domains(&self) -> impl Iterator<Item = &DomainId> {
        self.holders.keys()
    }

    /// The domains stored at `site`.
    pub fn domains_at(&self, site: SiteId) -> Vec<DomainId> {
        self.holders
            .iter()
            .filter(|(_, sites)| sites.binary_search(&site).is_ok())
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// Number of known domains.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// Whether no domain is assigned.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(s: &str) -> DomainId {
        s.parse().unwrap()
    }

    #[test]
    fn assign_and_query() {
        let mut dir = Directory::new();
        dir.assign(domain("PARC:Xerox"), vec![SiteId::new(2), SiteId::new(0)]);
        assert_eq!(
            dir.holders(&domain("PARC:Xerox")),
            &[SiteId::new(0), SiteId::new(2)]
        );
        assert!(dir.stores(SiteId::new(0), &domain("PARC:Xerox")));
        assert!(!dir.stores(SiteId::new(1), &domain("PARC:Xerox")));
        assert_eq!(dir.holders(&domain("SDD:Xerox")), &[] as &[SiteId]);
    }

    #[test]
    fn duplicates_collapse() {
        let mut dir = Directory::new();
        dir.assign(
            domain("PARC:Xerox"),
            vec![SiteId::new(1), SiteId::new(1), SiteId::new(1)],
        );
        assert_eq!(dir.holders(&domain("PARC:Xerox")).len(), 1);
    }

    #[test]
    fn add_replica_keeps_sorted_unique() {
        let mut dir = Directory::new();
        dir.add_replica(&domain("D:O"), SiteId::new(5));
        dir.add_replica(&domain("D:O"), SiteId::new(1));
        dir.add_replica(&domain("D:O"), SiteId::new(5));
        assert_eq!(
            dir.holders(&domain("D:O")),
            &[SiteId::new(1), SiteId::new(5)]
        );
    }

    #[test]
    fn domains_at_site() {
        let mut dir = Directory::new();
        dir.assign(domain("A:X"), vec![SiteId::new(0), SiteId::new(1)]);
        dir.assign(domain("B:X"), vec![SiteId::new(1)]);
        assert_eq!(dir.domains_at(SiteId::new(1)).len(), 2);
        assert_eq!(dir.domains_at(SiteId::new(0)).len(), 1);
        assert_eq!(dir.domains_at(SiteId::new(9)).len(), 0);
        assert_eq!(dir.len(), 2);
    }
}
