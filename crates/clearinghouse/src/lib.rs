//! A Clearinghouse-style name service built on the epidemic protocols —
//! the application that motivated the paper (§0.1).
//!
//! "The Clearinghouse service maintains translations from three-level,
//! hierarchical names to machine addresses, user identities, etc. The top
//! two levels of the hierarchy partition the name space into a set of
//! *domains*. Each domain may be stored (replicated) on as few as one, or
//! as many as all, of the Clearinghouse servers."
//!
//! This crate provides:
//!
//! * [`Name`] — three-level names `local:domain:organization` and the
//!   [`DomainId`]s they live in;
//! * [`Directory`] — the assignment of domains to server sites;
//! * [`Server`] — one Clearinghouse server holding a
//!   [`Replica`](epidemic_core::Replica) per stored domain;
//! * [`Clearinghouse`] — a fleet of servers with client operations routed
//!   to domain holders and per-domain push-pull anti-entropy.
//!
//! # Example
//!
//! ```
//! use epidemic_clearinghouse::{Clearinghouse, Directory, Name};
//! use epidemic_db::SiteId;
//! use rand::SeedableRng;
//!
//! let mut directory = Directory::new();
//! let parc: Vec<SiteId> = (0..3).map(SiteId::new).collect();
//! directory.assign("PARC:Xerox".parse()?, parc);
//!
//! let mut ch = Clearinghouse::new(4, directory);
//! let mary: Name = "mary:PARC:Xerox".parse()?;
//! ch.bind(&mary, "MV:2048#737".into())?;
//!
//! // Gossip until every replica of the domain agrees.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..8 {
//!     ch.anti_entropy_cycle(&mut rng);
//! }
//! for server in 0..3u32 {
//!     let hit = ch.lookup_at(SiteId::new(server), &mary)?;
//!     assert_eq!(hit.and_then(|o| o.as_address().map(String::from)).as_deref(),
//!                Some("MV:2048#737"));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod directory;
pub mod name;
pub mod object;
pub mod server;
pub mod service;

pub use directory::Directory;
pub use name::{DomainId, Name, ParseNameError};
pub use object::{resolve, Object, ResolveError};
pub use server::Server;
pub use service::{Clearinghouse, ServiceError};
