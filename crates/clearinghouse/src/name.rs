//! Three-level hierarchical names (paper §0.1).
//!
//! A Clearinghouse name has the form `local:domain:organization` — e.g.
//! `mary:PARC:Xerox`. The top two levels form the [`DomainId`], the unit
//! of replication.

use std::fmt;
use std::str::FromStr;

/// A domain: the `domain:organization` pair that names one replicated
/// partition of the name space.
///
/// # Example
///
/// ```
/// use epidemic_clearinghouse::DomainId;
/// let d: DomainId = "PARC:Xerox".parse()?;
/// assert_eq!(d.domain(), "PARC");
/// assert_eq!(d.organization(), "Xerox");
/// # Ok::<(), epidemic_clearinghouse::ParseNameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId {
    domain: String,
    organization: String,
}

impl DomainId {
    /// Creates a domain id from its two components.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if either component is empty or contains
    /// the `:` separator.
    pub fn new(
        domain: impl Into<String>,
        organization: impl Into<String>,
    ) -> Result<Self, ParseNameError> {
        let domain = domain.into();
        let organization = organization.into();
        validate_component(&domain)?;
        validate_component(&organization)?;
        Ok(DomainId {
            domain,
            organization,
        })
    }

    /// The second-level (domain) component.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The top-level (organization) component.
    pub fn organization(&self) -> &str {
        &self.organization
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.domain, self.organization)
    }
}

impl FromStr for DomainId {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(d), Some(o), None) => DomainId::new(d, o),
            _ => Err(ParseNameError::WrongArity),
        }
    }
}

/// A full three-level name `local:domain:organization`.
///
/// # Example
///
/// ```
/// use epidemic_clearinghouse::Name;
/// let n: Name = "daisy:PARC:Xerox".parse()?;
/// assert_eq!(n.local(), "daisy");
/// assert_eq!(n.domain_id().to_string(), "PARC:Xerox");
/// assert_eq!(n.to_string(), "daisy:PARC:Xerox");
/// # Ok::<(), epidemic_clearinghouse::ParseNameError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name {
    local: String,
    domain: DomainId,
}

impl Name {
    /// Creates a name from its local component and domain.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNameError`] if the local component is empty or
    /// contains `:`.
    pub fn new(local: impl Into<String>, domain: DomainId) -> Result<Self, ParseNameError> {
        let local = local.into();
        validate_component(&local)?;
        Ok(Name { local, domain })
    }

    /// The local (third-level) component.
    pub fn local(&self) -> &str {
        &self.local
    }

    /// The domain this name lives in — the unit of replication.
    pub fn domain_id(&self) -> &DomainId {
        &self.domain
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.local, self.domain)
    }
}

impl FromStr for Name {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(l), Some(d), Some(o), None) => Name::new(l, DomainId::new(d, o)?),
            _ => Err(ParseNameError::WrongArity),
        }
    }
}

/// Error parsing a [`Name`] or [`DomainId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseNameError {
    /// The wrong number of `:`-separated components.
    WrongArity,
    /// A component was empty.
    EmptyComponent,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNameError::WrongArity => {
                write!(
                    f,
                    "expected colon-separated components (local:domain:organization)"
                )
            }
            ParseNameError::EmptyComponent => write!(f, "name components must be non-empty"),
        }
    }
}

impl std::error::Error for ParseNameError {}

fn validate_component(s: &str) -> Result<(), ParseNameError> {
    if s.is_empty() {
        Err(ParseNameError::EmptyComponent)
    } else if s.contains(':') {
        Err(ParseNameError::WrongArity)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays_round_trip() {
        let n: Name = "mary:PARC:Xerox".parse().unwrap();
        assert_eq!(n.local(), "mary");
        assert_eq!(n.domain_id().domain(), "PARC");
        assert_eq!(n.domain_id().organization(), "Xerox");
        assert_eq!(n.to_string().parse::<Name>().unwrap(), n);
    }

    #[test]
    fn rejects_wrong_arity() {
        assert_eq!("mary:PARC".parse::<Name>(), Err(ParseNameError::WrongArity));
        assert_eq!("a:b:c:d".parse::<Name>(), Err(ParseNameError::WrongArity));
        assert_eq!(
            "onlyone".parse::<DomainId>(),
            Err(ParseNameError::WrongArity)
        );
    }

    #[test]
    fn rejects_empty_components() {
        assert_eq!(
            ":PARC:Xerox".parse::<Name>(),
            Err(ParseNameError::EmptyComponent)
        );
        assert_eq!(
            "mary::Xerox".parse::<Name>(),
            Err(ParseNameError::EmptyComponent)
        );
    }

    #[test]
    fn domain_ordering_groups_names() {
        let a: Name = "a:PARC:Xerox".parse().unwrap();
        let b: Name = "b:PARC:Xerox".parse().unwrap();
        let c: Name = "a:SDD:Xerox".parse().unwrap();
        assert_eq!(a.domain_id(), b.domain_id());
        assert_ne!(a.domain_id(), c.domain_id());
        assert!(a < b);
    }

    #[test]
    fn error_messages_are_lowercase_and_useful() {
        let e = ParseNameError::EmptyComponent.to_string();
        assert!(e.starts_with(char::is_lowercase));
    }
}
