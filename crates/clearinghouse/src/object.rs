//! Registered objects: what Clearinghouse names bind to.
//!
//! The Clearinghouse mapped names to "machine addresses, user identities,
//! etc." \[Op\]. Three kinds of bindings cover its use:
//!
//! * [`Object::Address`] — a machine/network address (individuals,
//!   printers, file services);
//! * [`Object::Group`] — a set of member names (mail distribution lists,
//!   access-control groups);
//! * [`Object::Alias`] — another name, resolved recursively with loop
//!   protection.
//!
//! Objects are opaque to the epidemic layer — a whole object is one
//! last-writer-wins value, exactly as the paper treats database entries.

use std::collections::BTreeSet;
use std::fmt;

use crate::name::Name;

/// A value registered under a Clearinghouse name.
///
/// # Example
///
/// ```
/// use epidemic_clearinghouse::{Name, Object};
/// let printer: Name = "daisy:PARC:Xerox".parse()?;
/// let alias = Object::Alias(printer.clone());
/// assert_eq!(alias.as_alias(), Some(&printer));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Object {
    /// A network address string (e.g. `MV:2048#737`).
    Address(String),
    /// A set of member names (stored as full name strings for hashing
    /// stability).
    Group(BTreeSet<String>),
    /// A pointer to another name.
    Alias(Name),
}

impl Object {
    /// Creates an address object.
    pub fn address(addr: impl Into<String>) -> Self {
        Object::Address(addr.into())
    }

    /// Creates a group from member names.
    pub fn group<I: IntoIterator<Item = Name>>(members: I) -> Self {
        Object::Group(members.into_iter().map(|n| n.to_string()).collect())
    }

    /// The address, if this is one.
    pub fn as_address(&self) -> Option<&str> {
        match self {
            Object::Address(a) => Some(a),
            _ => None,
        }
    }

    /// The alias target, if this is one.
    pub fn as_alias(&self) -> Option<&Name> {
        match self {
            Object::Alias(n) => Some(n),
            _ => None,
        }
    }

    /// The group members, if this is one.
    pub fn as_group(&self) -> Option<&BTreeSet<String>> {
        match self {
            Object::Group(g) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Object::Address(a) => write!(f, "address {a}"),
            Object::Group(g) => write!(f, "group of {}", g.len()),
            Object::Alias(n) => write!(f, "alias -> {n}"),
        }
    }
}

impl From<&str> for Object {
    fn from(addr: &str) -> Self {
        Object::Address(addr.to_string())
    }
}

/// Error from alias resolution ([`resolve`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The chain exceeded the hop limit (a cycle, or absurd nesting).
    AliasLoop(Name),
    /// A name in the chain is unbound.
    Unbound(Name),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::AliasLoop(n) => write!(f, "alias chain from {n} does not terminate"),
            ResolveError::Unbound(n) => write!(f, "name {n} is not bound"),
        }
    }
}

impl std::error::Error for ResolveError {}

/// Follows alias chains starting from `name` until a non-alias object is
/// found, with a hop limit of `max_hops`.
///
/// `lookup` is the caller's view of the database (typically a closure over
/// a server or the whole service).
///
/// # Errors
///
/// [`ResolveError::Unbound`] if any name in the chain has no object;
/// [`ResolveError::AliasLoop`] if the chain exceeds `max_hops`.
pub fn resolve<F>(name: &Name, mut lookup: F, max_hops: usize) -> Result<Object, ResolveError>
where
    F: FnMut(&Name) -> Option<Object>,
{
    let mut current = name.clone();
    for _ in 0..=max_hops {
        let object = lookup(&current).ok_or_else(|| ResolveError::Unbound(current.clone()))?;
        match object {
            Object::Alias(next) => current = next,
            other => return Ok(other),
        }
    }
    Err(ResolveError::AliasLoop(name.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn world(entries: &[(&str, Object)]) -> BTreeMap<Name, Object> {
        entries.iter().map(|(n, o)| (name(n), o.clone())).collect()
    }

    #[test]
    fn address_round_trip() {
        let o = Object::address("MV:2048#737");
        assert_eq!(o.as_address(), Some("MV:2048#737"));
        assert_eq!(o.as_alias(), None);
        assert_eq!(o.to_string(), "address MV:2048#737");
    }

    #[test]
    fn group_members_are_sorted_and_unique() {
        let g = Object::group(vec![name("b:D:O"), name("a:D:O"), name("b:D:O")]);
        let members = g.as_group().unwrap();
        assert_eq!(
            members.iter().cloned().collect::<Vec<_>>(),
            ["a:D:O", "b:D:O"]
        );
    }

    #[test]
    fn resolve_follows_alias_chains() {
        let db = world(&[
            ("printer:D:O", Object::address("35-2200")),
            ("lpr:D:O", Object::Alias(name("printer:D:O"))),
            ("print:D:O", Object::Alias(name("lpr:D:O"))),
        ]);
        let got = resolve(&name("print:D:O"), |n| db.get(n).cloned(), 8).unwrap();
        assert_eq!(got.as_address(), Some("35-2200"));
    }

    #[test]
    fn resolve_detects_loops() {
        let db = world(&[
            ("a:D:O", Object::Alias(name("b:D:O"))),
            ("b:D:O", Object::Alias(name("a:D:O"))),
        ]);
        let err = resolve(&name("a:D:O"), |n| db.get(n).cloned(), 8).unwrap_err();
        assert_eq!(err, ResolveError::AliasLoop(name("a:D:O")));
    }

    #[test]
    fn resolve_reports_the_unbound_link() {
        let db = world(&[("a:D:O", Object::Alias(name("missing:D:O")))]);
        let err = resolve(&name("a:D:O"), |n| db.get(n).cloned(), 8).unwrap_err();
        assert_eq!(err, ResolveError::Unbound(name("missing:D:O")));
    }

    #[test]
    fn zero_hop_budget_still_resolves_direct_bindings() {
        let db = world(&[("a:D:O", Object::address("x"))]);
        let got = resolve(&name("a:D:O"), |n| db.get(n).cloned(), 0).unwrap();
        assert_eq!(got.as_address(), Some("x"));
    }
}
