//! One Clearinghouse server: a replica per stored domain.

use std::collections::BTreeMap;

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeStats, Replica};
use epidemic_db::{SiteId, Timestamp};

use crate::name::{DomainId, Name};
use crate::object::Object;

/// A Clearinghouse server: holds one epidemic [`Replica`] for each domain
/// assigned to it, keyed by the name's local component.
///
/// # Example
///
/// ```
/// use epidemic_clearinghouse::{DomainId, Name, Server};
/// use epidemic_db::SiteId;
///
/// let parc: DomainId = "PARC:Xerox".parse()?;
/// let mut s = Server::new(SiteId::new(0));
/// s.host(parc.clone());
/// let mary: Name = "mary:PARC:Xerox".parse()?;
/// s.bind(&mary, "MV:2048#737".into());
/// assert_eq!(s.lookup(&mary).and_then(|o| o.as_address()), Some("MV:2048#737"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Server {
    site: SiteId,
    domains: BTreeMap<DomainId, Replica<String, Object>>,
}

impl Server {
    /// Creates a server at `site` hosting no domains yet.
    pub fn new(site: SiteId) -> Self {
        Server {
            site,
            domains: BTreeMap::new(),
        }
    }

    /// This server's site id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Starts hosting `domain` (empty replica). No-op if already hosted.
    pub fn host(&mut self, domain: DomainId) {
        self.domains
            .entry(domain)
            .or_insert_with(|| Replica::new(self.site));
    }

    /// Whether this server hosts `domain`.
    pub fn hosts(&self, domain: &DomainId) -> bool {
        self.domains.contains_key(domain)
    }

    /// The domains hosted here.
    pub fn hosted_domains(&self) -> impl Iterator<Item = &DomainId> {
        self.domains.keys()
    }

    /// The replica for `domain`, if hosted.
    pub fn replica(&self, domain: &DomainId) -> Option<&Replica<String, Object>> {
        self.domains.get(domain)
    }

    /// Mutable replica access, if hosted.
    pub fn replica_mut(&mut self, domain: &DomainId) -> Option<&mut Replica<String, Object>> {
        self.domains.get_mut(domain)
    }

    /// Binds `name` to `value` at this server. Returns the update's
    /// timestamp, or `None` if the name's domain is not hosted here.
    pub fn bind(&mut self, name: &Name, value: Object) -> Option<Timestamp> {
        self.domains
            .get_mut(name.domain_id())
            .map(|r| r.client_update(name.local().to_string(), value))
    }

    /// Unbinds `name` (installs a death certificate). Returns the deletion
    /// timestamp, or `None` if the domain is not hosted here.
    pub fn unbind(&mut self, name: &Name) -> Option<Timestamp> {
        self.domains
            .get_mut(name.domain_id())
            .map(|r| r.client_delete(&name.local().to_string()))
    }

    /// Looks `name` up in the local replica. `None` when the domain is not
    /// hosted or the name is unbound.
    pub fn lookup(&self, name: &Name) -> Option<&Object> {
        self.domains
            .get(name.domain_id())?
            .db()
            .get(&name.local().to_string())
    }

    /// Advances every hosted replica's clock to simulated time `time`.
    pub fn advance_clock(&mut self, time: u64) {
        for replica in self.domains.values_mut() {
            replica.advance_clock(time);
        }
    }

    /// Runs one push-pull anti-entropy exchange for `domain` between two
    /// servers (both must host it).
    ///
    /// # Panics
    ///
    /// Panics if either server does not host `domain`.
    pub fn exchange_domain(a: &mut Server, b: &mut Server, domain: &DomainId) -> ExchangeStats {
        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let ra = a
            .domains
            .get_mut(domain)
            .expect("initiator hosts the domain");
        let rb = b.domains.get_mut(domain).expect("partner hosts the domain");
        protocol.exchange(ra, rb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn domain(s: &str) -> DomainId {
        s.parse().unwrap()
    }

    #[test]
    fn bind_and_lookup_in_hosted_domain() {
        let mut s = Server::new(SiteId::new(0));
        s.host(domain("PARC:Xerox"));
        assert!(s.bind(&name("mary:PARC:Xerox"), "addr".into()).is_some());
        assert_eq!(
            s.lookup(&name("mary:PARC:Xerox")),
            Some(&Object::address("addr"))
        );
    }

    #[test]
    fn operations_on_unhosted_domains_return_none() {
        let mut s = Server::new(SiteId::new(0));
        assert!(s.bind(&name("mary:PARC:Xerox"), "addr".into()).is_none());
        assert!(s.unbind(&name("mary:PARC:Xerox")).is_none());
        assert_eq!(s.lookup(&name("mary:PARC:Xerox")), None);
        assert!(!s.hosts(&domain("PARC:Xerox")));
    }

    #[test]
    fn unbind_leaves_death_certificate() {
        let mut s = Server::new(SiteId::new(0));
        s.host(domain("PARC:Xerox"));
        s.bind(&name("mary:PARC:Xerox"), "addr".into());
        s.unbind(&name("mary:PARC:Xerox"));
        assert_eq!(s.lookup(&name("mary:PARC:Xerox")), None);
        let replica = s.replica(&domain("PARC:Xerox")).unwrap();
        assert_eq!(replica.db().dead_len(), 1);
    }

    #[test]
    fn exchange_converges_a_domain() {
        let d = domain("PARC:Xerox");
        let mut a = Server::new(SiteId::new(0));
        let mut b = Server::new(SiteId::new(1));
        a.host(d.clone());
        b.host(d.clone());
        a.bind(&name("mary:PARC:Xerox"), "a1".into());
        b.bind(&name("daisy:PARC:Xerox"), "b1".into());
        let stats = Server::exchange_domain(&mut a, &mut b, &d);
        assert_eq!(stats.total_sent(), 2);
        assert_eq!(
            a.lookup(&name("daisy:PARC:Xerox")),
            Some(&Object::address("b1"))
        );
        assert_eq!(
            b.lookup(&name("mary:PARC:Xerox")),
            Some(&Object::address("a1"))
        );
    }

    #[test]
    fn domains_are_isolated() {
        let mut s = Server::new(SiteId::new(0));
        s.host(domain("A:X"));
        s.host(domain("B:X"));
        s.bind(&name("n:A:X"), "va".into());
        // Same local name in a different domain is a different binding.
        assert_eq!(s.lookup(&name("n:B:X")), None);
        s.bind(&name("n:B:X"), "vb".into());
        assert_eq!(s.lookup(&name("n:A:X")), Some(&Object::address("va")));
        assert_eq!(s.lookup(&name("n:B:X")), Some(&Object::address("vb")));
    }
}
