//! The whole name service: a fleet of servers, client-operation routing
//! and per-domain anti-entropy scheduling.

use std::fmt;

use epidemic_db::SiteId;
use rand::{Rng, RngExt};

use crate::directory::Directory;
use crate::name::{DomainId, Name};
use crate::object::{resolve, Object, ResolveError};
use crate::server::Server;

/// Errors from client operations against the [`Clearinghouse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The name's domain is not assigned to any server.
    UnknownDomain(DomainId),
    /// The addressed server does not exist in this fleet.
    UnknownServer(SiteId),
    /// The addressed server does not store the name's domain.
    DomainNotStoredAt(SiteId, DomainId),
    /// Alias resolution failed.
    Resolve(ResolveError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownDomain(d) => write!(f, "no server stores domain {d}"),
            ServiceError::UnknownServer(s) => write!(f, "no such server: {s}"),
            ServiceError::DomainNotStoredAt(s, d) => {
                write!(f, "server {s} does not store domain {d}")
            }
            ServiceError::Resolve(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ResolveError> for ServiceError {
    fn from(e: ResolveError) -> Self {
        ServiceError::Resolve(e)
    }
}

/// A fleet of Clearinghouse servers with a [`Directory`] of domain
/// assignments. Client binds are routed to a domain holder; each
/// [`Clearinghouse::anti_entropy_cycle`] has every server run one
/// push-pull exchange per hosted domain with a random co-holder.
#[derive(Debug, Clone)]
pub struct Clearinghouse {
    servers: Vec<Server>,
    directory: Directory,
    time: u64,
}

impl Clearinghouse {
    /// Creates `n` servers (sites `0..n`) hosting the domains the
    /// directory assigns them.
    ///
    /// # Panics
    ///
    /// Panics if the directory references a site `>= n`.
    pub fn new(n: usize, directory: Directory) -> Self {
        let mut servers: Vec<Server> = (0..n).map(|i| Server::new(SiteId::new(i as u32))).collect();
        for domain in directory.domains() {
            for &site in directory.holders(domain) {
                assert!(
                    site.as_usize() < n,
                    "directory references unknown server {site}"
                );
                servers[site.as_usize()].host(domain.clone());
            }
        }
        Clearinghouse {
            servers,
            directory,
            time: 1,
        }
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The domain directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The server at `site`, if any.
    pub fn server(&self, site: SiteId) -> Option<&Server> {
        self.servers.get(site.as_usize())
    }

    /// Binds `name` to `value` at the first server storing its domain —
    /// the update-entry site (§1.1: "each database update is injected at a
    /// single site").
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`] if no server stores the domain.
    pub fn bind(&mut self, name: &Name, value: Object) -> Result<SiteId, ServiceError> {
        let holders = self.directory.holders(name.domain_id());
        let &site = holders
            .first()
            .ok_or_else(|| ServiceError::UnknownDomain(name.domain_id().clone()))?;
        self.servers[site.as_usize()]
            .bind(name, value)
            .expect("directory and hosting are consistent");
        Ok(site)
    }

    /// Unbinds `name` at the first server storing its domain.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownDomain`] if no server stores the domain.
    pub fn unbind(&mut self, name: &Name) -> Result<SiteId, ServiceError> {
        let holders = self.directory.holders(name.domain_id());
        let &site = holders
            .first()
            .ok_or_else(|| ServiceError::UnknownDomain(name.domain_id().clone()))?;
        self.servers[site.as_usize()]
            .unbind(name)
            .expect("directory and hosting are consistent");
        Ok(site)
    }

    /// Looks `name` up at a specific server, as a client bound to that
    /// server would.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownServer`] or
    /// [`ServiceError::DomainNotStoredAt`] when the request cannot be
    /// served there.
    pub fn lookup_at(&self, site: SiteId, name: &Name) -> Result<Option<Object>, ServiceError> {
        let server = self
            .servers
            .get(site.as_usize())
            .ok_or(ServiceError::UnknownServer(site))?;
        if !server.hosts(name.domain_id()) {
            return Err(ServiceError::DomainNotStoredAt(
                site,
                name.domain_id().clone(),
            ));
        }
        Ok(server.lookup(name).cloned())
    }

    /// Resolves `name` through any alias chain, as seen from `site`.
    /// Every name in the chain must live in a domain stored at `site`.
    ///
    /// # Errors
    ///
    /// The addressing errors of [`Clearinghouse::lookup_at`], plus
    /// [`ServiceError::Resolve`] for unbound links and alias loops.
    pub fn resolve_at(&self, site: SiteId, name: &Name) -> Result<Object, ServiceError> {
        let server = self
            .servers
            .get(site.as_usize())
            .ok_or(ServiceError::UnknownServer(site))?;
        Ok(resolve(name, |n| server.lookup(n).cloned(), 16)?)
    }

    /// One anti-entropy cycle: every server, for every domain it hosts,
    /// exchanges with one random co-holder of that domain (§1.3 run
    /// per-domain, as the real Clearinghouse did nightly).
    pub fn anti_entropy_cycle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.time += 1;
        for server in &mut self.servers {
            server.advance_clock(self.time);
        }
        for site_index in 0..self.servers.len() {
            let site = SiteId::new(site_index as u32);
            for domain in self.directory.domains_at(site) {
                let holders = self.directory.holders(&domain);
                if holders.len() < 2 {
                    continue;
                }
                let partner = loop {
                    let p = holders[rng.random_range(0..holders.len())];
                    if p != site {
                        break p;
                    }
                };
                let (a, b) = pair_mut(&mut self.servers, site_index, partner.as_usize());
                Server::exchange_domain(a, b, &domain);
            }
        }
    }

    /// Whether every replica of `domain` holds identical contents.
    pub fn domain_consistent(&self, domain: &DomainId) -> bool {
        let holders = self.directory.holders(domain);
        let Some((&first, rest)) = holders.split_first() else {
            return true;
        };
        let reference = self.servers[first.as_usize()]
            .replica(domain)
            .expect("holders host their domains");
        rest.iter().all(|&s| {
            self.servers[s.as_usize()]
                .replica(domain)
                .expect("holders host their domains")
                .db()
                == reference.db()
        })
    }
}

fn pair_mut(servers: &mut [Server], i: usize, j: usize) -> (&mut Server, &mut Server) {
    assert_ne!(i, j);
    if i < j {
        let (lo, hi) = servers.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = servers.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn domain(s: &str) -> DomainId {
        s.parse().unwrap()
    }

    fn service() -> Clearinghouse {
        let mut dir = Directory::new();
        dir.assign(domain("PARC:Xerox"), (0..4).map(SiteId::new).collect());
        dir.assign(domain("SDD:Xerox"), vec![SiteId::new(4), SiteId::new(5)]);
        dir.assign(domain("Lone:Xerox"), vec![SiteId::new(6)]);
        Clearinghouse::new(8, dir)
    }

    #[test]
    fn binds_route_to_domain_holders() {
        let mut ch = service();
        let site = ch.bind(&name("mary:PARC:Xerox"), "addr".into()).unwrap();
        assert!(ch.directory().stores(site, &domain("PARC:Xerox")));
        assert_eq!(
            ch.bind(&name("x:Nowhere:Y"), "v".into()),
            Err(ServiceError::UnknownDomain(domain("Nowhere:Y")))
        );
    }

    #[test]
    fn gossip_converges_each_domain_to_its_holders_only() {
        let mut ch = service();
        ch.bind(&name("mary:PARC:Xerox"), "parc-addr".into())
            .unwrap();
        ch.bind(&name("db:SDD:Xerox"), "sdd-addr".into()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..12 {
            ch.anti_entropy_cycle(&mut rng);
        }
        assert!(ch.domain_consistent(&domain("PARC:Xerox")));
        assert!(ch.domain_consistent(&domain("SDD:Xerox")));
        // Every PARC holder can answer; SDD holders cannot see PARC names.
        for s in 0..4u32 {
            assert_eq!(
                ch.lookup_at(SiteId::new(s), &name("mary:PARC:Xerox"))
                    .unwrap(),
                Some(crate::object::Object::address("parc-addr"))
            );
        }
        assert_eq!(
            ch.lookup_at(SiteId::new(4), &name("mary:PARC:Xerox")),
            Err(ServiceError::DomainNotStoredAt(
                SiteId::new(4),
                domain("PARC:Xerox")
            ))
        );
    }

    #[test]
    fn single_holder_domains_are_trivially_consistent() {
        let mut ch = service();
        ch.bind(&name("only:Lone:Xerox"), "v".into()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        ch.anti_entropy_cycle(&mut rng);
        assert!(ch.domain_consistent(&domain("Lone:Xerox")));
        assert_eq!(
            ch.lookup_at(SiteId::new(6), &name("only:Lone:Xerox"))
                .unwrap(),
            Some(crate::object::Object::address("v"))
        );
    }

    #[test]
    fn unbind_propagates_as_death_certificate() {
        let mut ch = service();
        ch.bind(&name("mary:PARC:Xerox"), "addr".into()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            ch.anti_entropy_cycle(&mut rng);
        }
        ch.unbind(&name("mary:PARC:Xerox")).unwrap();
        for _ in 0..10 {
            ch.anti_entropy_cycle(&mut rng);
        }
        for s in 0..4u32 {
            assert_eq!(
                ch.lookup_at(SiteId::new(s), &name("mary:PARC:Xerox"))
                    .unwrap(),
                None
            );
        }
        assert!(ch.domain_consistent(&domain("PARC:Xerox")));
    }

    #[test]
    fn lookup_errors_are_precise() {
        let ch = service();
        assert_eq!(
            ch.lookup_at(SiteId::new(99), &name("a:PARC:Xerox")),
            Err(ServiceError::UnknownServer(SiteId::new(99)))
        );
        let e = ServiceError::UnknownDomain(domain("A:B")).to_string();
        assert!(e.contains("A:B"));
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn directory_must_reference_existing_servers() {
        let mut dir = Directory::new();
        dir.assign(domain("D:O"), vec![SiteId::new(10)]);
        Clearinghouse::new(2, dir);
    }
}

#[cfg(test)]
mod resolve_tests {
    use super::*;
    use crate::object::Object;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn service_with_aliases() -> Clearinghouse {
        let mut dir = Directory::new();
        dir.assign(
            "PARC:Xerox".parse().unwrap(),
            vec![SiteId::new(0), SiteId::new(1)],
        );
        let mut ch = Clearinghouse::new(2, dir);
        ch.bind(&name("daisy:PARC:Xerox"), Object::address("35-2200"))
            .unwrap();
        ch.bind(
            &name("lpr:PARC:Xerox"),
            Object::Alias(name("daisy:PARC:Xerox")),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..4 {
            ch.anti_entropy_cycle(&mut rng);
        }
        ch
    }

    #[test]
    fn resolve_follows_aliases_at_any_holder() {
        let ch = service_with_aliases();
        for s in 0..2u32 {
            let got = ch
                .resolve_at(SiteId::new(s), &name("lpr:PARC:Xerox"))
                .unwrap();
            assert_eq!(got.as_address(), Some("35-2200"));
        }
    }

    #[test]
    fn resolve_reports_loops_as_service_errors() {
        let mut ch = service_with_aliases();
        ch.bind(&name("a:PARC:Xerox"), Object::Alias(name("b:PARC:Xerox")))
            .unwrap();
        ch.bind(&name("b:PARC:Xerox"), Object::Alias(name("a:PARC:Xerox")))
            .unwrap();
        let err = ch
            .resolve_at(SiteId::new(0), &name("a:PARC:Xerox"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Resolve(_)));
        assert!(err.to_string().contains("does not terminate"));
    }

    #[test]
    fn groups_survive_gossip_intact() {
        let mut ch = service_with_aliases();
        let members = vec![name("mary:PARC:Xerox"), name("carl:PARC:Xerox")];
        ch.bind(&name("csl:PARC:Xerox"), Object::group(members))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..4 {
            ch.anti_entropy_cycle(&mut rng);
        }
        for s in 0..2u32 {
            let got = ch
                .lookup_at(SiteId::new(s), &name("csl:PARC:Xerox"))
                .unwrap()
                .unwrap();
            assert_eq!(got.as_group().unwrap().len(), 2);
        }
    }
}

impl Clearinghouse {
    /// Runs death-certificate garbage collection (§2.1) at every server
    /// with the given policy. Returns the total certificates discarded.
    pub fn collect_garbage(&mut self, policy: epidemic_db::GcPolicy) -> usize {
        let mut discarded = 0;
        for server in &mut self.servers {
            for domain in server.hosted_domains().cloned().collect::<Vec<_>>() {
                if let Some(replica) = server.replica_mut(&domain) {
                    discarded += replica.collect_garbage(policy).discarded;
                }
            }
        }
        discarded
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;
    use crate::object::Object;
    use epidemic_db::GcPolicy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expired_certificates_are_reclaimed_fleet_wide() {
        let mut dir = Directory::new();
        let d: DomainId = "D:O".parse().unwrap();
        dir.assign(
            d.clone(),
            vec![SiteId::new(0), SiteId::new(1), SiteId::new(2)],
        );
        let mut ch = Clearinghouse::new(3, dir);
        let name: Name = "gone:D:O".parse().unwrap();
        ch.bind(&name, Object::address("x")).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            ch.anti_entropy_cycle(&mut rng);
        }
        ch.unbind(&name).unwrap();
        for _ in 0..5 {
            ch.anti_entropy_cycle(&mut rng);
        }
        // Age everyone far beyond the threshold (cycles advance clocks by
        // 1 tick each; run many cheap cycles).
        for _ in 0..120 {
            ch.anti_entropy_cycle(&mut rng);
        }
        let discarded = ch.collect_garbage(GcPolicy::FixedThreshold { tau: 50 });
        assert_eq!(discarded, 3, "one tombstone per replica");
        for s in 0..3u32 {
            let server = ch.server(SiteId::new(s)).unwrap();
            assert_eq!(server.replica(&d).unwrap().db().len(), 0);
        }
    }
}
