//! Property-based tests for the name service: parsing round-trips and
//! domain-isolation invariants under random workloads.

use epidemic_clearinghouse::{Clearinghouse, Directory, DomainId, Name, Object};
use epidemic_db::SiteId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn component() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,8}".prop_map(|s| s)
}

proptest! {
    /// Display/parse round-trips for arbitrary valid names.
    #[test]
    fn name_roundtrip(l in component(), d in component(), o in component()) {
        let name = Name::new(l, DomainId::new(d, o).unwrap()).unwrap();
        let reparsed: Name = name.to_string().parse().unwrap();
        prop_assert_eq!(name, reparsed);
    }

    /// Binding random names in two disjoint domains and gossiping never
    /// leaks entries across domains, and both domains converge.
    #[test]
    fn domains_stay_isolated(
        names_a in prop::collection::vec(component(), 1..8),
        names_b in prop::collection::vec(component(), 1..8),
        seed in any::<u64>(),
    ) {
        let da: DomainId = "A:Org".parse().unwrap();
        let db_: DomainId = "B:Org".parse().unwrap();
        let mut dir = Directory::new();
        dir.assign(da.clone(), vec![SiteId::new(0), SiteId::new(1), SiteId::new(2)]);
        dir.assign(db_.clone(), vec![SiteId::new(2), SiteId::new(3)]);
        let mut ch = Clearinghouse::new(4, dir);
        for n in &names_a {
            let name = Name::new(n.clone(), da.clone()).unwrap();
            ch.bind(&name, Object::address(format!("a-{n}"))).unwrap();
        }
        for n in &names_b {
            let name = Name::new(n.clone(), db_.clone()).unwrap();
            ch.bind(&name, Object::address(format!("b-{n}"))).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            ch.anti_entropy_cycle(&mut rng);
        }
        prop_assert!(ch.domain_consistent(&da));
        prop_assert!(ch.domain_consistent(&db_));
        // Server 3 stores only B; it must know nothing from A.
        let s3 = ch.server(SiteId::new(3)).unwrap();
        prop_assert!(!s3.hosts(&da));
        // Server 2 stores both and can answer for both.
        for n in &names_a {
            let name = Name::new(n.clone(), da.clone()).unwrap();
            let got = ch.lookup_at(SiteId::new(2), &name).unwrap();
            prop_assert_eq!(got, Some(Object::address(format!("a-{n}"))));
        }
    }

    /// Re-binding a name always surfaces the newest value after gossip —
    /// last-writer-wins at the service level.
    #[test]
    fn rebinding_is_last_writer_wins(values in prop::collection::vec(any::<u16>(), 1..6), seed in any::<u64>()) {
        let d: DomainId = "D:Org".parse().unwrap();
        let mut dir = Directory::new();
        dir.assign(d.clone(), vec![SiteId::new(0), SiteId::new(1), SiteId::new(2)]);
        let mut ch = Clearinghouse::new(3, dir);
        let name = Name::new("obj", d.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for v in &values {
            ch.bind(&name, Object::address(v.to_string())).unwrap();
            ch.anti_entropy_cycle(&mut rng);
        }
        for _ in 0..6 {
            ch.anti_entropy_cycle(&mut rng);
        }
        let expected = Object::address(values.last().unwrap().to_string());
        for s in 0..3u32 {
            let got = ch.lookup_at(SiteId::new(s), &name).unwrap();
            prop_assert_eq!(got, Some(expected.clone()));
        }
    }
}
