//! Peel back ∪ rumor mongering: the failure-free hot-rumor list (§1.5).
//!
//! "Whereas before we needed a search tree to maintain reverse timestamp
//! order, we now use a doubly-linked list to maintain a *local activity
//! order*: sites send updates according to their local list order, and they
//! receive the usual rumor feedback that tells them when an update was
//! useful. The useful updates are moved to the front of their respective
//! lists, while the useless updates slip gradually deeper."
//!
//! Batches are sent from the head of the list until checksum agreement is
//! reached, so — unlike plain rumor mongering — the combined protocol has
//! **no failure probability**: any update can become hot again, and a full
//! pass over both lists is a complete anti-entropy exchange.

use std::collections::VecDeque;
use std::hash::Hash;

use epidemic_db::{Entry, Timestamp};

use crate::anti_entropy::ExchangeStats;
use crate::replica::Replica;

/// A replica's *local activity order* over all of its keys: hottest first.
///
/// # Example
///
/// ```
/// use epidemic_core::activity::ActivityList;
/// let mut list: ActivityList<&str> = ActivityList::new();
/// list.touch("a");
/// list.touch("b");
/// list.touch("a"); // useful again: back to the front
/// assert_eq!(list.iter().copied().collect::<Vec<_>>(), ["a", "b"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActivityList<K> {
    order: VecDeque<K>,
}

impl<K: Eq + Clone> ActivityList<K> {
    /// Creates an empty list.
    pub fn new() -> Self {
        ActivityList {
            order: VecDeque::new(),
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Moves `key` to the front (inserting it if unseen) — called when the
    /// key was updated locally or proved useful to a partner.
    pub fn touch(&mut self, key: K) {
        self.order.retain(|k| k != &key);
        self.order.push_front(key);
    }

    /// Removes `key` (its entry was garbage-collected).
    pub fn forget(&mut self, key: &K) {
        self.order.retain(|k| k != key);
    }

    /// Iterates keys in activity order, hottest first.
    pub fn iter(&self) -> impl Iterator<Item = &K> {
        self.order.iter()
    }

    /// The key at `position` in activity order, if any.
    pub fn get(&self, position: usize) -> Option<&K> {
        self.order.get(position)
    }

    /// Brings the list in sync with the replica's database: keys missing
    /// from the list are prepended (newest timestamp first — fresh updates
    /// are the hottest); keys no longer in the database are dropped.
    pub fn sync_with<V: std::hash::Hash>(&mut self, replica: &Replica<K, V>)
    where
        K: Ord + Hash,
    {
        self.order.retain(|k| replica.db().entry(k).is_some());
        let mut fresh: Vec<(Timestamp, K)> = replica
            .db()
            .iter()
            .filter(|(k, _)| !self.order.contains(k))
            .map(|(k, e)| (e.timestamp(), k.clone()))
            .collect();
        fresh.sort_unstable_by_key(|a| a.0); // oldest first
        for (_, k) in fresh {
            self.order.push_front(k); // newest ends up at the very front
        }
    }
}

/// The combined peel-back / rumor-mongering exchange of §1.5.
///
/// Each conversation ships batches of entries from the head of each
/// participant's activity list until the two databases' checksums agree.
/// Useful updates move to the front of both parties' lists; sends of
/// already-known updates let them sink.
///
/// # Example
///
/// ```
/// use epidemic_core::activity::{ActivityList, PeelBackRumor};
/// use epidemic_core::Replica;
/// use epidemic_db::SiteId;
///
/// let mut a = Replica::new(SiteId::new(0));
/// let mut b = Replica::new(SiteId::new(1));
/// let (mut la, mut lb) = (ActivityList::new(), ActivityList::new());
/// a.client_update("k", 1);
///
/// let protocol = PeelBackRumor::new(4);
/// protocol.exchange(&mut a, &mut la, &mut b, &mut lb);
/// assert_eq!(a.db(), b.db());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeelBackRumor {
    batch: usize,
}

impl PeelBackRumor {
    /// Creates the protocol with the given batch size (entries shipped per
    /// round before re-checking checksums).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        PeelBackRumor { batch }
    }

    /// One conversation. Returns exchange statistics; afterwards the two
    /// databases are identical (zero failure probability).
    pub fn exchange<K, V>(
        &self,
        a: &mut Replica<K, V>,
        a_list: &mut ActivityList<K>,
        b: &mut Replica<K, V>,
        b_list: &mut ActivityList<K>,
    ) -> ExchangeStats
    where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash + Eq,
    {
        let mut stats = ExchangeStats::default();
        a_list.sync_with(a);
        b_list.sync_with(b);
        stats.checksum_exchanges += 1;
        if a.db().checksum() == b.db().checksum() {
            return stats;
        }
        let (mut ia, mut ib) = (0usize, 0usize);
        loop {
            let mut progressed = false;
            // One batch from each side, alternating.
            for _ in 0..self.batch {
                if let Some(key) = a_list.get(ia).cloned() {
                    ia += 1;
                    progressed = true;
                    Self::send_one(a, b, &key, true, a_list, b_list, &mut stats);
                }
                if let Some(key) = b_list.get(ib).cloned() {
                    ib += 1;
                    progressed = true;
                    Self::send_one(b, a, &key, false, b_list, a_list, &mut stats);
                }
            }
            stats.checksum_exchanges += 1;
            if a.db().checksum() == b.db().checksum() {
                return stats;
            }
            if !progressed {
                // Both lists exhausted; databases must now agree.
                debug_assert_eq!(a.db().checksum(), b.db().checksum());
                return stats;
            }
        }
    }

    /// Ships one entry `sender → receiver` with rumor feedback: useful
    /// updates are promoted to the front of both activity lists.
    fn send_one<K, V>(
        sender: &mut Replica<K, V>,
        receiver: &mut Replica<K, V>,
        key: &K,
        a_to_b: bool,
        sender_list: &mut ActivityList<K>,
        receiver_list: &mut ActivityList<K>,
        stats: &mut ExchangeStats,
    ) where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash + Eq,
    {
        let Some(entry) = sender.db().entry(key).cloned() else {
            sender_list.forget(key);
            return;
        };
        let receiver_ts = receiver.db().entry(key).map(Entry::timestamp);
        if receiver_ts == Some(entry.timestamp()) {
            return; // both sides already agree on this key: nothing to send
        }
        if a_to_b {
            stats.sent_ab += 1;
        } else {
            stats.sent_ba += 1;
        }
        stats.entries_scanned += 1;
        let outcome = receiver.receive_quietly(key.clone(), entry);
        if outcome.was_useful() {
            // Rumor feedback: the update was news — to the front at both.
            sender_list.touch(key.clone());
            receiver_list.touch(key.clone());
        }
        if outcome == epidemic_db::store::OfferOutcome::AwakenedDormant {
            stats.awakened += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_db::SiteId;

    type R = Replica<&'static str, u32>;

    fn setup() -> (R, ActivityList<&'static str>, R, ActivityList<&'static str>) {
        (
            Replica::new(SiteId::new(0)),
            ActivityList::new(),
            Replica::new(SiteId::new(1)),
            ActivityList::new(),
        )
    }

    #[test]
    fn converges_disjoint_databases() {
        let (mut a, mut la, mut b, mut lb) = setup();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let stats = PeelBackRumor::new(2).exchange(&mut a, &mut la, &mut b, &mut lb);
        assert_eq!(a.db(), b.db());
        assert_eq!(stats.total_sent(), 2);
    }

    #[test]
    fn identical_databases_cost_one_checksum() {
        let (mut a, mut la, mut b, mut lb) = setup();
        a.client_update("x", 1);
        let p = PeelBackRumor::new(2);
        p.exchange(&mut a, &mut la, &mut b, &mut lb);
        let stats = p.exchange(&mut a, &mut la, &mut b, &mut lb);
        assert_eq!(stats.checksum_exchanges, 1);
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn fresh_updates_ship_before_the_backlog() {
        let (mut a, mut la, mut b, mut lb) = setup();
        // Converge a large shared backlog first.
        let keys: Vec<&'static str> = (0..30)
            .map(|i| Box::leak(format!("k{i}").into_boxed_str()) as &'static str)
            .collect();
        for (i, k) in keys.iter().enumerate() {
            a.client_update(k, i as u32);
        }
        let p = PeelBackRumor::new(4);
        p.exchange(&mut a, &mut la, &mut b, &mut lb);
        assert_eq!(a.db(), b.db());
        // One fresh divergent update: only it (and at most a batch of
        // redundant candidates) is examined.
        a.client_update("fresh", 99);
        let stats = p.exchange(&mut a, &mut la, &mut b, &mut lb);
        assert_eq!(stats.total_sent(), 1, "only the fresh entry ships");
        assert_eq!(a.db(), b.db());
    }

    #[test]
    fn useful_updates_move_to_front_of_both_lists() {
        let (mut a, mut la, mut b, mut lb) = setup();
        a.client_update("old", 1);
        a.client_update("new", 2);
        PeelBackRumor::new(1).exchange(&mut a, &mut la, &mut b, &mut lb);
        // "new" shipped first (it heads a's activity list), then "old";
        // each useful transfer promotes its key, so "old" — the most
        // recently useful — now heads both lists.
        assert_eq!(la.get(0), Some(&"old"));
        assert_eq!(lb.get(0), Some(&"old"));
        assert_eq!(la.len(), 2);
        assert_eq!(lb.len(), 2);
    }

    #[test]
    fn sync_with_drops_vanished_keys_and_adds_fresh_ones() {
        let mut a: R = Replica::new(SiteId::new(0));
        let mut list = ActivityList::new();
        list.touch("ghost");
        a.client_update("real", 1);
        list.sync_with(&a);
        assert_eq!(list.iter().copied().collect::<Vec<_>>(), ["real"]);
    }

    #[test]
    fn never_fails_even_with_cold_rumors() {
        // Unlike plain rumor mongering, convergence is guaranteed no matter
        // the activity state: run many divergent updates through repeated
        // exchanges.
        let (mut a, mut la, mut b, mut lb) = setup();
        for i in 0..20u32 {
            if i % 2 == 0 {
                a.client_update(
                    Box::leak(format!("a{i}").into_boxed_str()) as &'static str,
                    i,
                );
            } else {
                b.client_update(
                    Box::leak(format!("b{i}").into_boxed_str()) as &'static str,
                    i,
                );
            }
        }
        PeelBackRumor::new(3).exchange(&mut a, &mut la, &mut b, &mut lb);
        assert_eq!(a.db(), b.db());
        assert_eq!(a.db().len(), 20);
    }
}
