//! Anti-entropy: the simple epidemic (paper §1.3).
//!
//! "Every site regularly chooses another site at random and by exchanging
//! database contents with it resolves any differences between the two."
//! Anti-entropy is extremely reliable — a simple epidemic that infects the
//! whole population with probability 1 — but examining entire databases is
//! expensive, so §1.3 layers progressively cheaper comparison strategies on
//! top: checksums, recent-update lists with a window `τ`, and *peel back*
//! (exchange in reverse timestamp order until the checksums agree).

use std::hash::Hash;

use epidemic_db::store::OfferOutcome;
use epidemic_db::{Entry, Timestamp};

use crate::replica::Replica;
use crate::Direction;

/// The two one-way diffs computed by [`diff`]: entries to send `a → b`,
/// entries to send `b → a`, and the number of entries scanned.
pub(crate) type DiffResult<K, V> = (Vec<(K, Entry<V>)>, Vec<(K, Entry<V>)>, usize);

/// Reusable buffers for anti-entropy conversations.
///
/// A conversation that falls back to a full comparison fills two diff
/// buffers; peel back snapshots both sides' timestamp indexes. Freshly
/// allocating those `Vec`s per contact dominates steady-state drivers that
/// run thousands of conversations, so the engine threads one scratch
/// through every exchange via [`AntiEntropy::exchange_with`] and the
/// buffers keep their capacity between conversations.
///
/// [`AntiEntropy::exchange`] works on a throwaway scratch — behaviour is
/// identical, only the buffer reuse is lost.
#[derive(Debug, Clone)]
pub struct ExchangeScratch<K, V> {
    /// Full-comparison diff buffer, `a → b`.
    a_to_b: Vec<(K, Entry<V>)>,
    /// Full-comparison diff buffer, `b → a`.
    b_to_a: Vec<(K, Entry<V>)>,
    /// Peel-back snapshot of the initiator's timestamp index.
    peel_a: Vec<(Timestamp, K)>,
    /// Peel-back snapshot of the partner's timestamp index.
    peel_b: Vec<(Timestamp, K)>,
}

impl<K, V> ExchangeScratch<K, V> {
    /// Creates an empty scratch. No allocation happens until a
    /// conversation actually needs a buffer.
    pub fn new() -> Self {
        ExchangeScratch {
            a_to_b: Vec::new(),
            b_to_a: Vec::new(),
            peel_a: Vec::new(),
            peel_b: Vec::new(),
        }
    }
}

impl<K, V> Default for ExchangeScratch<K, V> {
    fn default() -> Self {
        ExchangeScratch::new()
    }
}

/// How two databases are compared before updates flow (§1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// Compare complete databases every time — the basic, expensive form.
    Full,
    /// Exchange checksums first; compare full databases only on mismatch.
    /// Effective only while updates distribute faster than they arrive.
    Checksum,
    /// Exchange *recent update lists* (entries younger than `tau`), apply
    /// them, then compare checksums; fall back to a full comparison only if
    /// the checksums still disagree.
    RecentList {
        /// Window `τ`: must exceed the expected update distribution time.
        tau: u64,
    },
    /// *Peel back*: walk both databases in reverse timestamp order,
    /// shipping entries until the checksums agree. Nearly ideal traffic,
    /// at the price of the timestamp-inverted index. Inherently
    /// bidirectional: the configured [`Direction`] is ignored.
    PeelBack,
}

/// Traffic and work accounting for one anti-entropy conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeStats {
    /// Entries transmitted initiator → partner.
    pub sent_ab: usize,
    /// Entries transmitted partner → initiator.
    pub sent_ba: usize,
    /// Checksum values exchanged/compared.
    pub checksum_exchanges: usize,
    /// Whether a full database comparison was needed.
    pub full_compare: bool,
    /// Entries examined while diffing (work, not network traffic).
    pub entries_scanned: usize,
    /// Dormant death certificates awakened by obsolete incoming data.
    pub awakened: usize,
}

impl ExchangeStats {
    /// Whether any update had to be sent in either direction — the
    /// "Update Traffic" event counted in Tables 4 and 5.
    pub fn update_flowed(&self) -> bool {
        self.sent_ab + self.sent_ba > 0
    }

    /// Total entries transmitted.
    pub fn total_sent(&self) -> usize {
        self.sent_ab + self.sent_ba
    }
}

/// The anti-entropy protocol: a [`Direction`] plus a [`Comparison`].
///
/// # Example
///
/// ```
/// use epidemic_core::{AntiEntropy, Comparison, Direction, Replica};
/// use epidemic_db::SiteId;
///
/// let ae = AntiEntropy::new(Direction::Pull, Comparison::Full);
/// let mut a = Replica::new(SiteId::new(0));
/// let mut b = Replica::new(SiteId::new(1));
/// b.client_update("k", 9);
/// ae.exchange(&mut a, &mut b); // a pulls from b
/// assert_eq!(a.db().get(&"k"), Some(&9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AntiEntropy {
    direction: Direction,
    comparison: Comparison,
}

impl AntiEntropy {
    /// Creates an anti-entropy protocol configuration.
    pub const fn new(direction: Direction, comparison: Comparison) -> Self {
        AntiEntropy {
            direction,
            comparison,
        }
    }

    /// The configured transfer direction.
    pub const fn direction(self) -> Direction {
        self.direction
    }

    /// The configured comparison strategy.
    pub const fn comparison(self) -> Comparison {
        self.comparison
    }

    /// Performs `ResolveDifference[a, b]` (§1.3): one conversation between
    /// the initiator `a` and partner `b`. Both replicas end up consistent
    /// on every key a transfer direction allows.
    pub fn exchange<K, V>(&self, a: &mut Replica<K, V>, b: &mut Replica<K, V>) -> ExchangeStats
    where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash + Eq,
    {
        self.exchange_with(a, b, &mut ExchangeScratch::new())
    }

    /// As [`AntiEntropy::exchange`], reusing the caller's
    /// [`ExchangeScratch`] buffers. Steady-state drivers thread one scratch
    /// through every conversation so diff buffers and peel-back snapshots
    /// stop allocating per contact. Statistics and database outcomes are
    /// identical to `exchange`.
    pub fn exchange_with<K, V>(
        &self,
        a: &mut Replica<K, V>,
        b: &mut Replica<K, V>,
        scratch: &mut ExchangeScratch<K, V>,
    ) -> ExchangeStats
    where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash + Eq,
    {
        let mut stats = ExchangeStats::default();
        match self.comparison {
            Comparison::Full => {
                stats.full_compare = true;
                full_resolve(self.direction, a, b, scratch, &mut stats);
            }
            Comparison::Checksum => {
                stats.checksum_exchanges += 1;
                if a.db().checksum() != b.db().checksum() {
                    stats.full_compare = true;
                    full_resolve(self.direction, a, b, scratch, &mut stats);
                }
            }
            Comparison::RecentList { tau } => {
                exchange_recent(self.direction, a, b, tau, scratch, &mut stats);
                stats.checksum_exchanges += 1;
                if a.db().checksum() != b.db().checksum() {
                    stats.full_compare = true;
                    full_resolve(self.direction, a, b, scratch, &mut stats);
                }
            }
            Comparison::PeelBack => {
                peel_back(a, b, scratch, &mut stats);
            }
        }
        stats
    }
}

/// Offers an entry quietly and accounts for awakened certificates.
fn offer_counted<K, V>(to: &mut Replica<K, V>, key: K, entry: Entry<V>, stats: &mut ExchangeStats)
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
{
    if to.receive_quietly(key, entry) == OfferOutcome::AwakenedDormant {
        stats.awakened += 1;
    }
}

/// [`offer_counted`] from borrowed data: the receiver clones the entry
/// only if the offer changes its state.
fn offer_counted_ref<K, V>(
    to: &mut Replica<K, V>,
    key: &K,
    entry: &Entry<V>,
    stats: &mut ExchangeStats,
) where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
{
    if to.receive_quietly_ref(key, entry) == OfferOutcome::AwakenedDormant {
        stats.awakened += 1;
    }
}

/// Computes the two one-way diffs between replicas: entries `a` holds
/// strictly newer than `b` (or that `b` lacks), and vice versa. Returns the
/// pair `(a_to_b, b_to_a)` plus the number of entries scanned. Entries are
/// cloned only for the directions `direction` allows to flow — a one-way
/// exchange never materialises the list it would discard.
pub(crate) fn diff<K, V>(
    direction: Direction,
    a: &Replica<K, V>,
    b: &Replica<K, V>,
) -> DiffResult<K, V>
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
{
    let mut a_to_b: Vec<(K, Entry<V>)> = Vec::new();
    let mut b_to_a: Vec<(K, Entry<V>)> = Vec::new();
    let scanned = diff_into(direction, a, b, &mut a_to_b, &mut b_to_a);
    (a_to_b, b_to_a, scanned)
}

/// [`diff`] into caller-provided buffers (cleared first), so a reused
/// scratch keeps its capacity across conversations. Returns the number of
/// entries scanned.
pub(crate) fn diff_into<K, V>(
    direction: Direction,
    a: &Replica<K, V>,
    b: &Replica<K, V>,
    a_to_b: &mut Vec<(K, Entry<V>)>,
    b_to_a: &mut Vec<(K, Entry<V>)>,
) -> usize
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
{
    a_to_b.clear();
    b_to_a.clear();
    let mut scanned = 0;
    let mut ia = a.db().iter().peekable();
    let mut ib = b.db().iter().peekable();
    loop {
        match (ia.peek(), ib.peek()) {
            (None, None) => break,
            (Some((ka, ea)), None) => {
                if direction.pushes() {
                    a_to_b.push(((*ka).clone(), (*ea).clone()));
                }
                ia.next();
            }
            (None, Some((kb, eb))) => {
                if direction.pulls() {
                    b_to_a.push(((*kb).clone(), (*eb).clone()));
                }
                ib.next();
            }
            (Some((ka, ea)), Some((kb, eb))) => {
                use std::cmp::Ordering;
                match ka.cmp(kb) {
                    Ordering::Less => {
                        if direction.pushes() {
                            a_to_b.push(((*ka).clone(), (*ea).clone()));
                        }
                        ia.next();
                    }
                    Ordering::Greater => {
                        if direction.pulls() {
                            b_to_a.push(((*kb).clone(), (*eb).clone()));
                        }
                        ib.next();
                    }
                    Ordering::Equal => {
                        if ea.timestamp() > eb.timestamp() {
                            if direction.pushes() {
                                a_to_b.push(((*ka).clone(), (*ea).clone()));
                            }
                        } else if eb.timestamp() > ea.timestamp() && direction.pulls() {
                            b_to_a.push(((*kb).clone(), (*eb).clone()));
                        }
                        ia.next();
                        ib.next();
                    }
                }
            }
        }
        // Counted after the terminal check so diffing two empty databases
        // reports zero entries scanned.
        scanned += 1;
    }
    scanned
}

/// Complete database comparison and resolution (§1.3's basic algorithm).
fn full_resolve<K, V>(
    direction: Direction,
    a: &mut Replica<K, V>,
    b: &mut Replica<K, V>,
    scratch: &mut ExchangeScratch<K, V>,
    stats: &mut ExchangeStats,
) where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
{
    stats.entries_scanned += diff_into(direction, a, b, &mut scratch.a_to_b, &mut scratch.b_to_a);
    for (k, e) in scratch.a_to_b.drain(..) {
        stats.sent_ab += 1;
        offer_counted(b, k, e, stats);
    }
    for (k, e) in scratch.b_to_a.drain(..) {
        stats.sent_ba += 1;
        offer_counted(a, k, e, stats);
    }
}

/// Exchanges recent-update lists (§1.3's refined checksum scheme).
///
/// Both lists are walked straight off the peel-back index
/// ([`Database::recent_index`](epidemic_db::Database::recent_index)):
/// every listed entry still counts as wire traffic (`sent_ab`/`sent_ba` —
/// the sender cannot know what the receiver holds), but the receiver's
/// borrow-only [`would_accept`](epidemic_db::Database::would_accept)
/// prefilter rejects already-known updates on a single map probe, without
/// even fetching the sender's entry. Only accepted offers touch the entry
/// store, and only they clone. The pull-direction list is read after
/// push-direction offers complete, exactly as the snapshot version did.
fn exchange_recent<K, V>(
    direction: Direction,
    a: &mut Replica<K, V>,
    b: &mut Replica<K, V>,
    tau: u64,
    scratch: &mut ExchangeScratch<K, V>,
    stats: &mut ExchangeStats,
) where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
{
    if direction.pushes() {
        stats.sent_ab += offer_recent(a, b, tau, &mut scratch.peel_a, stats);
    }
    if direction.pulls() {
        stats.sent_ba += offer_recent(b, a, tau, &mut scratch.peel_a, stats);
    }
}

/// One direction of the recent-list exchange. Returns the number of
/// entries listed (each is wire traffic whether or not it is accepted).
///
/// The receiver's timestamp index is walked in lockstep with the sender's
/// recent list: both run in descending `(timestamp, key)` order, so an
/// exactly-matching pair proves the receiver already holds that version
/// and the offer is rejected with no map probe at all. On a converged
/// pair every listed entry short-circuits this way. Mismatches fall back
/// to the borrow-only `would_accept` probe, and the rare accepted offers
/// are deferred into `pending` (offers touch distinct keys, so deferral
/// cannot change any outcome) because the receiver cannot be mutated
/// while its index is being walked. The lockstep shortcut is disabled
/// when the receiver parks dormant death certificates, since those make
/// an offer mutate state even for an already-held timestamp.
fn offer_recent<K, V>(
    from: &mut Replica<K, V>,
    to: &mut Replica<K, V>,
    tau: u64,
    pending: &mut Vec<(Timestamp, K)>,
    stats: &mut ExchangeStats,
) -> usize
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
{
    let now = from.local_time();
    let mut listed = 0;
    pending.clear();
    {
        let from_db = from.db();
        let to_db = to.db();
        let lockstep = to_db.dormant_len() == 0;
        let mut rx = to_db.timestamp_index();
        let mut rx_cur = rx.next();
        for (t, k) in from_db.recent_index(now, tau) {
            listed += 1;
            if lockstep {
                while let Some((rt, rk)) = rx_cur {
                    if (rt, rk) > (t, k) {
                        rx_cur = rx.next();
                    } else {
                        break;
                    }
                }
                if rx_cur == Some((t, k)) {
                    rx_cur = rx.next();
                    continue;
                }
            }
            if to_db.would_accept(k, t) {
                pending.push((t, k.clone()));
            }
        }
    }
    for (_, k) in pending.drain(..) {
        let e = from.db().entry(&k).expect("peel index is consistent");
        offer_counted_ref(to, &k, e, stats);
    }
    listed
}

/// Peel back (§1.3): ship entries in reverse timestamp order until the
/// checksums agree. Always bidirectional.
fn peel_back<K, V>(
    a: &mut Replica<K, V>,
    b: &mut Replica<K, V>,
    scratch: &mut ExchangeScratch<K, V>,
    stats: &mut ExchangeStats,
) where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
{
    stats.checksum_exchanges += 1;
    if a.db().checksum() == b.db().checksum() {
        return;
    }
    // Snapshot both sides' (timestamp, key) indexes into the reused
    // scratch buffers, newest first, and walk the merged order. Key
    // snapshots are needed (not borrows) because transfers install entries
    // on both sides while the walk is in progress.
    scratch.peel_a.clear();
    scratch.peel_b.clear();
    scratch.peel_a.extend(
        a.db()
            .newest_first()
            .map(|(k, e)| (e.timestamp(), k.clone())),
    );
    scratch.peel_b.extend(
        b.db()
            .newest_first()
            .map(|(k, e)| (e.timestamp(), k.clone())),
    );
    let (av, bv) = (&scratch.peel_a, &scratch.peel_b);
    let (mut i, mut j) = (0, 0);
    while i < av.len() || j < bv.len() {
        // Pick the globally newest unprocessed record.
        let take_a = match (av.get(i), bv.get(j)) {
            (Some(x), Some(y)) => x.0 >= y.0,
            (Some(_), None) => true,
            _ => false,
        };
        let key: &K = if take_a {
            let k = &av[i].1;
            i += 1;
            k
        } else {
            let k = &bv[j].1;
            j += 1;
            k
        };
        stats.entries_scanned += 1;
        // Resolve this key against *current* state (an earlier transfer may
        // have already reconciled it).
        let ta = a.db().entry(key).map(Entry::timestamp);
        let tb = b.db().entry(key).map(Entry::timestamp);
        if ta > tb {
            let entry = a.db().entry(key).expect("ta is Some");
            stats.sent_ab += 1;
            offer_counted_ref(b, key, entry, stats);
        } else if tb > ta {
            let entry = b.db().entry(key).expect("tb is Some");
            stats.sent_ba += 1;
            offer_counted_ref(a, key, entry, stats);
        }
        stats.checksum_exchanges += 1;
        if a.db().checksum() == b.db().checksum() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_db::SiteId;

    fn pair() -> (Replica<&'static str, u32>, Replica<&'static str, u32>) {
        (Replica::new(SiteId::new(0)), Replica::new(SiteId::new(1)))
    }

    #[test]
    fn push_pull_converges_disjoint_databases() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let stats = ae.exchange(&mut a, &mut b);
        assert_eq!(a.db(), b.db());
        assert_eq!(stats.sent_ab, 1);
        assert_eq!(stats.sent_ba, 1);
        assert!(stats.update_flowed());
    }

    #[test]
    fn diffing_empty_databases_scans_nothing() {
        let (mut a, mut b) = pair();
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let stats = ae.exchange(&mut a, &mut b);
        assert_eq!(stats.entries_scanned, 0, "no entries exist to examine");
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn scan_count_equals_merged_entry_walk() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        b.client_update("z", 3);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let stats = ae.exchange(&mut a, &mut b);
        assert_eq!(stats.entries_scanned, 3, "one step per distinct key");
    }

    #[test]
    fn push_only_moves_data_one_way() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let ae = AntiEntropy::new(Direction::Push, Comparison::Full);
        ae.exchange(&mut a, &mut b);
        assert_eq!(b.db().get(&"x"), Some(&1));
        assert_eq!(a.db().get(&"y"), None);
    }

    #[test]
    fn pull_only_moves_data_the_other_way() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let ae = AntiEntropy::new(Direction::Pull, Comparison::Full);
        ae.exchange(&mut a, &mut b);
        assert_eq!(a.db().get(&"y"), Some(&2));
        assert_eq!(b.db().get(&"x"), None);
    }

    #[test]
    fn newer_timestamp_wins_on_conflict() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        b.advance_clock(100);
        b.client_update("k", 2);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        ae.exchange(&mut a, &mut b);
        assert_eq!(a.db().get(&"k"), Some(&2));
        assert_eq!(b.db().get(&"k"), Some(&2));
    }

    #[test]
    fn checksum_short_circuits_identical_databases() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let ae_full = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        ae_full.exchange(&mut a, &mut b);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Checksum);
        let stats = ae.exchange(&mut a, &mut b);
        assert_eq!(stats.checksum_exchanges, 1);
        assert!(!stats.full_compare);
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn checksum_falls_back_to_full_compare() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Checksum);
        let stats = ae.exchange(&mut a, &mut b);
        assert!(stats.full_compare);
        assert_eq!(a.db(), b.db());
    }

    #[test]
    fn recent_list_avoids_full_compare_for_fresh_updates() {
        let (mut a, mut b) = pair();
        // Shared old state.
        a.client_update("base", 0);
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        // One fresh update at a, well within the window.
        a.advance_clock(100);
        b.advance_clock(100);
        a.client_update("fresh", 1);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::RecentList { tau: 50 });
        let stats = ae.exchange(&mut a, &mut b);
        assert!(!stats.full_compare, "recent list should reconcile alone");
        assert_eq!(b.db().get(&"fresh"), Some(&1));
        assert_eq!(a.db(), b.db());
    }

    #[test]
    fn recent_list_falls_back_when_window_too_small() {
        let (mut a, mut b) = pair();
        a.client_update("old", 1); // t = 1
        a.advance_clock(1_000);
        b.advance_clock(1_000);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::RecentList { tau: 5 });
        let stats = ae.exchange(&mut a, &mut b);
        assert!(stats.full_compare, "stale diff is beyond the window");
        assert_eq!(a.db(), b.db());
    }

    #[test]
    fn peel_back_converges_and_stops_early() {
        let (mut a, mut b) = pair();
        // Large shared prefix.
        for i in 0..50u32 {
            a.client_update(
                Box::leak(format!("k{i}").into_boxed_str()) as &'static str,
                i,
            );
        }
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        // One fresh divergent update.
        a.advance_clock(10_000);
        b.advance_clock(10_000);
        a.client_update("fresh", 99);
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::PeelBack);
        let stats = ae.exchange(&mut a, &mut b);
        assert_eq!(a.db(), b.db());
        assert_eq!(stats.total_sent(), 1, "only the divergent entry ships");
        assert!(stats.entries_scanned <= 3, "peel back stops near the top");
    }

    #[test]
    fn peel_back_identical_databases_costs_one_checksum() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        let stats =
            AntiEntropy::new(Direction::PushPull, Comparison::PeelBack).exchange(&mut a, &mut b);
        assert_eq!(stats.checksum_exchanges, 1);
        assert_eq!(stats.total_sent(), 0);
    }

    #[test]
    fn peel_back_handles_disjoint_databases() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        b.client_update("z", 3);
        let stats =
            AntiEntropy::new(Direction::PushPull, Comparison::PeelBack).exchange(&mut a, &mut b);
        assert_eq!(a.db(), b.db());
        assert_eq!(stats.total_sent(), 3);
    }

    #[test]
    fn death_certificates_propagate_and_cancel() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        a.client_delete(&"k");
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        assert_eq!(b.db().get(&"k"), None);
        assert!(b.db().entry(&"k").is_some_and(Entry::is_dead));
    }

    #[test]
    fn exchange_with_reused_scratch_matches_exchange() {
        // One scratch threaded through all four strategies in sequence, so
        // buffers left over from one conversation feed the next — results
        // must be indistinguishable from throwaway-scratch exchanges.
        let mut scratch = ExchangeScratch::new();
        for comparison in [
            Comparison::Full,
            Comparison::Checksum,
            Comparison::RecentList { tau: 1_000 },
            Comparison::PeelBack,
        ] {
            let build = || {
                let (mut a, mut b) = pair();
                a.client_update("x", 1);
                b.client_update("y", 2);
                b.client_update("z", 3);
                (a, b)
            };
            let (mut a1, mut b1) = build();
            let (mut a2, mut b2) = build();
            let ae = AntiEntropy::new(Direction::PushPull, comparison);
            let fresh = ae.exchange(&mut a1, &mut b1);
            let reused = ae.exchange_with(&mut a2, &mut b2, &mut scratch);
            assert_eq!(fresh, reused, "{comparison:?}");
            assert_eq!(a1.db(), a2.db());
            assert_eq!(b1.db(), b2.db());
        }
    }

    #[test]
    fn deletion_without_certificate_would_resurrect() {
        // Demonstrates §2's motivation: dropping an entry outright lets
        // anti-entropy resurrect it.
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
        // "Delete" on a by garbage-collecting the entry with no certificate:
        // simulate via a fresh replica holding nothing.
        let mut naive = Replica::<&str, u32>::new(SiteId::new(2));
        AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut naive, &mut b);
        assert_eq!(naive.db().get(&"k"), Some(&1), "the item comes back");
    }
}

#[cfg(test)]
mod directional_tests {
    use super::*;
    use epidemic_db::SiteId;

    fn pair() -> (Replica<&'static str, u32>, Replica<&'static str, u32>) {
        (Replica::new(SiteId::new(0)), Replica::new(SiteId::new(1)))
    }

    #[test]
    fn checksum_mode_respects_push_direction() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let ae = AntiEntropy::new(Direction::Push, Comparison::Checksum);
        let stats = ae.exchange(&mut a, &mut b);
        assert!(stats.full_compare);
        assert_eq!(b.db().get(&"x"), Some(&1));
        assert_eq!(a.db().get(&"y"), None, "push never pulls");
    }

    #[test]
    fn recent_list_mode_respects_pull_direction() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let ae = AntiEntropy::new(Direction::Pull, Comparison::RecentList { tau: 1_000 });
        ae.exchange(&mut a, &mut b);
        assert_eq!(a.db().get(&"y"), Some(&2));
        assert_eq!(b.db().get(&"x"), None, "pull never pushes");
    }

    #[test]
    fn one_way_exchanges_are_idempotent_per_direction() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        let push = AntiEntropy::new(Direction::Push, Comparison::Full);
        let first = push.exchange(&mut a, &mut b);
        let second = push.exchange(&mut a, &mut b);
        assert_eq!(first.sent_ab, 1);
        assert_eq!(second.sent_ab, 0, "nothing newer remains to send");
    }

    #[test]
    fn accessors_expose_configuration() {
        let ae = AntiEntropy::new(Direction::Pull, Comparison::PeelBack);
        assert_eq!(ae.direction(), Direction::Pull);
        assert_eq!(ae.comparison(), Comparison::PeelBack);
        assert!(Direction::Pull.pulls() && !Direction::Pull.pushes());
        assert!(Direction::PushPull.pulls() && Direction::PushPull.pushes());
    }
}
