//! Backing up a complex epidemic with anti-entropy (paper §1.5).
//!
//! Rumor mongering can fail: all copies of a rumor can go cold while some
//! sites remain susceptible. Running anti-entropy infrequently eliminates
//! that possibility. The interesting question is what to do when an
//! anti-entropy exchange *discovers* a missing update:
//!
//! * [`Redistribution::None`] — just reconcile the pair and let
//!   anti-entropy finish the job (the "conservative" response);
//! * [`Redistribution::Rumor`] — make the discovered updates hot rumors
//!   again at both participants, which is cheap even in the worst case;
//! * [`Redistribution::Mail`] — re-mail them to everyone. The paper's
//!   Clearinghouse originally did this and had to abandon it: if half the
//!   sites miss an update, the next anti-entropy round generates `O(n²)`
//!   mail messages.

use std::hash::Hash;

use epidemic_db::Entry;

use crate::anti_entropy::{diff, ExchangeStats};
use crate::replica::Replica;
use crate::Direction;

/// What to do with updates discovered missing during backup anti-entropy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Redistribution {
    /// Reconcile the pair only.
    None,
    /// Re-ignite discovered updates as hot rumors at both participants.
    Rumor,
    /// Hand discovered updates back for re-mailing to all sites (the
    /// caller mails them; see [`BackupOutcome::remail`]).
    Mail,
}

/// Result of one backup anti-entropy exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupOutcome<K, V> {
    /// Ordinary exchange statistics.
    pub stats: ExchangeStats,
    /// Updates the caller should re-mail (only under
    /// [`Redistribution::Mail`]).
    pub remail: Vec<(K, Entry<V>)>,
}

/// Anti-entropy configured as the backup for a complex epidemic (§1.5).
///
/// The backup pass always compares full databases push-pull — it runs
/// infrequently, and its purpose is certainty.
///
/// # Example
///
/// ```
/// use epidemic_core::{BackupAntiEntropy, Redistribution, Replica};
/// use epidemic_db::SiteId;
///
/// let mut a = Replica::new(SiteId::new(0));
/// let mut b = Replica::new(SiteId::new(1));
/// a.client_update("k", 1);
/// a.hot_mut().clear(); // the rumor died before reaching b
///
/// let backup = BackupAntiEntropy::new(Redistribution::Rumor);
/// let outcome = backup.exchange(&mut a, &mut b);
/// assert_eq!(outcome.stats.sent_ab, 1);
/// // Both participants now treat the update as a hot rumor again.
/// assert!(a.is_infective(&"k") && b.is_infective(&"k"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BackupAntiEntropy {
    redistribution: Redistribution,
}

impl BackupAntiEntropy {
    /// Creates a backup pass with the given redistribution policy.
    pub const fn new(redistribution: Redistribution) -> Self {
        BackupAntiEntropy { redistribution }
    }

    /// The configured redistribution policy.
    pub const fn redistribution(self) -> Redistribution {
        self.redistribution
    }

    /// One push-pull full-database exchange with redistribution.
    pub fn exchange<K, V>(
        &self,
        a: &mut Replica<K, V>,
        b: &mut Replica<K, V>,
    ) -> BackupOutcome<K, V>
    where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash + Eq,
    {
        let mut stats = ExchangeStats {
            full_compare: true,
            ..ExchangeStats::default()
        };
        let (a_to_b, b_to_a, scanned) = diff(Direction::PushPull, a, b);
        stats.entries_scanned = scanned;
        let mut remail = Vec::new();

        for (k, e) in a_to_b {
            stats.sent_ab += 1;
            self.apply_one(b, a, k, e, &mut remail, &mut stats);
        }
        for (k, e) in b_to_a {
            stats.sent_ba += 1;
            self.apply_one(a, b, k, e, &mut remail, &mut stats);
        }
        BackupOutcome { stats, remail }
    }

    /// Delivers one discovered update from `sender` to `receiver`, applying
    /// the redistribution policy.
    fn apply_one<K, V>(
        &self,
        receiver: &mut Replica<K, V>,
        sender: &mut Replica<K, V>,
        key: K,
        entry: Entry<V>,
        remail: &mut Vec<(K, Entry<V>)>,
        stats: &mut ExchangeStats,
    ) where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash + Eq,
    {
        use epidemic_db::store::OfferOutcome;
        let outcome = match self.redistribution {
            Redistribution::None => receiver.receive_quietly(key.clone(), entry.clone()),
            Redistribution::Rumor => {
                // Re-ignite at both ends: the receiver just heard news, and
                // the sender just learned its partner was missing it.
                let outcome = receiver.receive_rumor(key.clone(), entry.clone());
                if outcome.was_useful() {
                    sender.hot_mut().insert(key.clone());
                }
                outcome
            }
            Redistribution::Mail => {
                let outcome = receiver.receive_quietly(key.clone(), entry.clone());
                if outcome.was_useful() {
                    remail.push((key.clone(), entry));
                }
                outcome
            }
        };
        if outcome == OfferOutcome::AwakenedDormant {
            stats.awakened += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_db::SiteId;

    fn cold_pair() -> (Replica<&'static str, u32>, Replica<&'static str, u32>) {
        let mut a = Replica::new(SiteId::new(0));
        let b = Replica::new(SiteId::new(1));
        a.client_update("k", 1);
        a.hot_mut().clear(); // rumor died at a before spreading
        (a, b)
    }

    #[test]
    fn conservative_backup_reconciles_without_reigniting() {
        let (mut a, mut b) = cold_pair();
        let outcome = BackupAntiEntropy::new(Redistribution::None).exchange(&mut a, &mut b);
        assert_eq!(outcome.stats.sent_ab, 1);
        assert_eq!(b.db().get(&"k"), Some(&1));
        assert!(!a.is_infective(&"k") && !b.is_infective(&"k"));
        assert!(outcome.remail.is_empty());
    }

    #[test]
    fn rumor_redistribution_reignites_both_parties() {
        let (mut a, mut b) = cold_pair();
        let outcome = BackupAntiEntropy::new(Redistribution::Rumor).exchange(&mut a, &mut b);
        assert!(outcome.remail.is_empty());
        assert!(a.is_infective(&"k") && b.is_infective(&"k"));
    }

    #[test]
    fn mail_redistribution_hands_back_updates() {
        let (mut a, mut b) = cold_pair();
        let outcome = BackupAntiEntropy::new(Redistribution::Mail).exchange(&mut a, &mut b);
        assert_eq!(outcome.remail.len(), 1);
        assert_eq!(outcome.remail[0].0, "k");
        assert!(!b.is_infective(&"k"));
    }

    #[test]
    fn redundant_exchange_redistributes_nothing() {
        let (mut a, mut b) = cold_pair();
        let backup = BackupAntiEntropy::new(Redistribution::Rumor);
        backup.exchange(&mut a, &mut b);
        a.hot_mut().clear();
        b.hot_mut().clear();
        let outcome = backup.exchange(&mut a, &mut b);
        assert_eq!(outcome.stats.total_sent(), 0);
        assert!(!a.is_infective(&"k") && !b.is_infective(&"k"));
    }

    #[test]
    fn backup_flows_both_directions() {
        let (mut a, mut b) = cold_pair();
        b.client_update("j", 9);
        b.hot_mut().clear();
        let outcome = BackupAntiEntropy::new(Redistribution::Rumor).exchange(&mut a, &mut b);
        assert_eq!(outcome.stats.sent_ab, 1);
        assert_eq!(outcome.stats.sent_ba, 1);
        assert!(a.is_infective(&"j") && b.is_infective(&"k"));
        assert_eq!(a.db(), b.db());
    }
}
