//! Direct mail: best-effort immediate notification (paper §1.2).
//!
//! "Each new update is immediately mailed from its entry site to all other
//! sites. This is timely and reasonably efficient but not entirely
//! reliable." The `PostMail` operation queues messages on stable storage,
//! yet still loses them when queues overflow or destinations stay
//! unreachable — and the sender's list of sites may be incomplete. Both
//! failure modes are modelled here; they are what anti-entropy exists to
//! repair.

use std::collections::VecDeque;
use std::hash::Hash;

use epidemic_db::{Entry, SiteId};
use rand::{Rng, RngExt};

use crate::replica::Replica;

/// Failure model for the mail system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MailConfig {
    /// Probability that any posted message is silently lost in transit
    /// (destination unreachable for too long, server mishap).
    pub loss_probability: f64,
    /// Bound on each destination's inbound queue; messages posted to a full
    /// queue are discarded, the paper's "physical queue overflow".
    pub queue_capacity: usize,
}

impl Default for MailConfig {
    fn default() -> Self {
        MailConfig {
            loss_probability: 0.0,
            queue_capacity: usize::MAX,
        }
    }
}

/// One queued update notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Letter<K, V> {
    /// Key the update concerns.
    pub key: K,
    /// The updated entry.
    pub entry: Entry<V>,
}

/// Counters describing the mail system's lifetime behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MailStats {
    /// Messages accepted into a queue.
    pub posted: usize,
    /// Messages lost in transit.
    pub lost: usize,
    /// Messages dropped because a queue was full.
    pub overflowed: usize,
    /// Messages handed to their destination.
    pub delivered: usize,
}

/// A store-and-forward mail transport with bounded queues and message loss —
/// the paper's fallible `PostMail` (§1.2).
///
/// # Example
///
/// ```
/// use epidemic_core::{MailConfig, MailSystem};
/// use epidemic_db::{Entry, SiteId, Timestamp};
/// use rand::SeedableRng;
///
/// let mut mail: MailSystem<&str, u32> = MailSystem::new(3, MailConfig::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let entry = Entry::live(7, Timestamp::new(1, SiteId::new(0)));
/// mail.post(SiteId::new(2), "k", entry, &mut rng);
/// assert_eq!(mail.deliver(SiteId::new(2)).len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MailSystem<K, V> {
    config: MailConfig,
    queues: Vec<VecDeque<Letter<K, V>>>,
    stats: MailStats,
}

impl<K, V> MailSystem<K, V> {
    /// Creates a mail system serving sites `0..sites`.
    pub fn new(sites: usize, config: MailConfig) -> Self {
        MailSystem {
            config,
            queues: (0..sites).map(|_| VecDeque::new()).collect(),
            stats: MailStats::default(),
        }
    }

    /// Posts one update notification to `to`. Returns `false` if the
    /// message was lost or the destination queue was full.
    pub fn post<R: Rng + ?Sized>(
        &mut self,
        to: SiteId,
        key: K,
        entry: Entry<V>,
        rng: &mut R,
    ) -> bool {
        if self.config.loss_probability > 0.0 && rng.random::<f64>() < self.config.loss_probability
        {
            self.stats.lost += 1;
            return false;
        }
        let queue = &mut self.queues[to.as_usize()];
        if queue.len() >= self.config.queue_capacity {
            self.stats.overflowed += 1;
            return false;
        }
        queue.push_back(Letter { key, entry });
        self.stats.posted += 1;
        true
    }

    /// Drains and returns everything queued for `site`.
    pub fn deliver(&mut self, site: SiteId) -> Vec<Letter<K, V>> {
        let letters: Vec<_> = self.queues[site.as_usize()].drain(..).collect();
        self.stats.delivered += letters.len();
        letters
    }

    /// Messages currently queued for `site`.
    pub fn queued(&self, site: SiteId) -> usize {
        self.queues[site.as_usize()].len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> MailStats {
        self.stats
    }
}

/// The direct-mail protocol of §1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirectMail;

impl DirectMail {
    /// Creates the protocol marker.
    pub const fn new() -> Self {
        DirectMail
    }

    /// Executes `FOR EACH s' ∈ S DO PostMail[...]` at the update's entry
    /// site: mails `key`'s current entry to every site in `recipients`
    /// (the origin's possibly *incomplete* view of S).
    ///
    /// Returns the number of messages successfully queued.
    pub fn broadcast<K, V, R>(
        &self,
        origin: &Replica<K, V>,
        recipients: &[SiteId],
        key: &K,
        mail: &mut MailSystem<K, V>,
        rng: &mut R,
    ) -> usize
    where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash,
        R: Rng + ?Sized,
    {
        let Some(entry) = origin.db().entry(key).cloned() else {
            return 0;
        };
        recipients
            .iter()
            .filter(|&&to| to != origin.site())
            .filter(|&&to| mail.post(to, key.clone(), entry.clone(), rng))
            .count()
    }

    /// Delivers the site's queued mail into its replica: `IF s.ValueOf.t <
    /// t THEN s.ValueOf ← (v, t)`. Mailed updates are merged quietly — in a
    /// direct-mail system receipt does not trigger further mailing.
    ///
    /// Returns the number of letters that carried news.
    pub fn deliver<K, V>(&self, replica: &mut Replica<K, V>, mail: &mut MailSystem<K, V>) -> usize
    where
        K: Ord + Clone + Hash + Eq,
        V: Clone + Hash,
    {
        mail.deliver(replica.site())
            .into_iter()
            .filter(|letter| {
                replica
                    .receive_quietly(letter.key.clone(), letter.entry.clone())
                    .was_useful()
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn broadcast_reaches_all_recipients() {
        let mut rng = rng();
        let mut mail = MailSystem::new(4, MailConfig::default());
        let mut origin: Replica<&str, u32> = Replica::new(SiteId::new(0));
        origin.client_update("k", 9);
        let all: Vec<SiteId> = (0..4).map(SiteId::new).collect();
        let sent = DirectMail::new().broadcast(&origin, &all, &"k", &mut mail, &mut rng);
        assert_eq!(sent, 3, "origin does not mail itself");
        let mut r1: Replica<&str, u32> = Replica::new(SiteId::new(1));
        let news = DirectMail::new().deliver(&mut r1, &mut mail);
        assert_eq!(news, 1);
        assert_eq!(r1.db().get(&"k"), Some(&9));
        assert!(!r1.is_infective(&"k"), "mail delivery is quiet");
    }

    #[test]
    fn lossy_mail_drops_messages() {
        let mut rng = rng();
        let mut mail: MailSystem<&str, u32> = MailSystem::new(
            2,
            MailConfig {
                loss_probability: 1.0,
                queue_capacity: usize::MAX,
            },
        );
        let entry = Entry::live(1, epidemic_db::Timestamp::new(1, SiteId::new(0)));
        assert!(!mail.post(SiteId::new(1), "k", entry, &mut rng));
        assert_eq!(mail.stats().lost, 1);
        assert_eq!(mail.queued(SiteId::new(1)), 0);
    }

    #[test]
    fn full_queues_overflow() {
        let mut rng = rng();
        let mut mail: MailSystem<&str, u32> = MailSystem::new(
            2,
            MailConfig {
                loss_probability: 0.0,
                queue_capacity: 2,
            },
        );
        let entry = Entry::live(1, epidemic_db::Timestamp::new(1, SiteId::new(0)));
        assert!(mail.post(SiteId::new(1), "a", entry.clone(), &mut rng));
        assert!(mail.post(SiteId::new(1), "b", entry.clone(), &mut rng));
        assert!(!mail.post(SiteId::new(1), "c", entry, &mut rng));
        assert_eq!(mail.stats().overflowed, 1);
        assert_eq!(mail.deliver(SiteId::new(1)).len(), 2);
    }

    #[test]
    fn incomplete_site_view_misses_sites() {
        let mut rng = rng();
        let mut mail = MailSystem::new(3, MailConfig::default());
        let mut origin: Replica<&str, u32> = Replica::new(SiteId::new(0));
        origin.client_update("k", 1);
        // The origin only knows about site 1, not site 2.
        let stale_view = [SiteId::new(0), SiteId::new(1)];
        DirectMail::new().broadcast(&origin, &stale_view, &"k", &mut mail, &mut rng);
        assert_eq!(mail.queued(SiteId::new(1)), 1);
        assert_eq!(mail.queued(SiteId::new(2)), 0);
    }

    #[test]
    fn stale_mail_does_not_regress_newer_data() {
        let mut rng = rng();
        let mut mail = MailSystem::new(2, MailConfig::default());
        let mut origin: Replica<&str, u32> = Replica::new(SiteId::new(0));
        let mut dest: Replica<&str, u32> = Replica::new(SiteId::new(1));
        origin.client_update("k", 1);
        DirectMail::new().broadcast(&origin, &[SiteId::new(1)], &"k", &mut mail, &mut rng);
        dest.advance_clock(100);
        dest.client_update("k", 2); // newer local value
        let news = DirectMail::new().deliver(&mut dest, &mut mail);
        assert_eq!(news, 0);
        assert_eq!(dest.db().get(&"k"), Some(&2));
    }

    #[test]
    fn broadcast_of_unknown_key_is_a_noop() {
        let mut rng = rng();
        let mut mail = MailSystem::new(2, MailConfig::default());
        let origin: Replica<&str, u32> = Replica::new(SiteId::new(0));
        let sent =
            DirectMail::new().broadcast(&origin, &[SiteId::new(1)], &"k", &mut mail, &mut rng);
        assert_eq!(sent, 0);
    }
}
