//! Per-replica hot-rumor state (paper §1.4).
//!
//! "The sender keeps a list of infective updates, and the recipient tries to
//! insert each update into its own database and adds all new updates to its
//! infective list. The only complication lies in deciding when to remove an
//! update from the infective list." The removal rules themselves live in
//! [`rumor`](crate::rumor); this module is the list.

/// One hot rumor: a key the replica is actively spreading, with the
/// unnecessary-contact counter used by the counter removal rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotItem<K> {
    key: K,
    counter: u32,
    // Deferred feedback accumulated during the current cycle, used by the
    // pull rule of Table 3's footnote: "if any recipient needed the update
    // then the counter is reset; if all recipients did not need the update
    // then one is added".
    pending_needed: bool,
    pending_useless: bool,
}

impl<K> HotItem<K> {
    /// The rumor's key.
    pub fn key(&self) -> &K {
        &self.key
    }

    /// Unnecessary contacts accumulated so far.
    pub fn counter(&self) -> u32 {
        self.counter
    }
}

/// The infective list of one replica: hot rumors in *local activity order*
/// (most recently useful first, per the §1.5 combination with peel back).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HotList<K> {
    items: Vec<HotItem<K>>,
}

impl<K: Eq + Clone> HotList<K> {
    /// Creates an empty list.
    pub fn new() -> Self {
        HotList { items: Vec::new() }
    }

    /// Number of hot rumors.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no rumor is hot — the replica is not infective.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `key` is hot here.
    pub fn contains(&self, key: &K) -> bool {
        self.items.iter().any(|i| &i.key == key)
    }

    /// The counter for `key`, if hot.
    pub fn counter(&self, key: &K) -> Option<u32> {
        self.items.iter().find(|i| &i.key == key).map(|i| i.counter)
    }

    /// Makes `key` hot with a zero counter (new rumor, or reactivated death
    /// certificate per §2.3). Re-inserting an already-hot key moves it to
    /// the front and resets its counter.
    pub fn insert(&mut self, key: K) {
        self.remove(&key);
        self.items.insert(
            0,
            HotItem {
                key,
                counter: 0,
                pending_needed: false,
                pending_useless: false,
            },
        );
    }

    /// Removes `key` from the hot list (the rumor becomes *removed* in the
    /// epidemic sense). Returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let before = self.items.len();
        self.items.retain(|i| &i.key != key);
        before != self.items.len()
    }

    /// Drops every rumor.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates the hot keys in activity order (hottest first).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.items.iter().map(|i| &i.key)
    }

    /// Iterates the hot items in activity order.
    pub fn iter(&self) -> impl Iterator<Item = &HotItem<K>> {
        self.items.iter()
    }

    /// Snapshot of the hot keys (hottest first). Convenient when the caller
    /// must mutate the replica while walking its rumors.
    pub fn keys_snapshot(&self) -> Vec<K> {
        self.items.iter().map(|i| i.key.clone()).collect()
    }

    /// Adds `delta` unnecessary contacts to `key`'s counter and returns the
    /// new value; `None` if the key is not hot.
    pub fn bump_counter(&mut self, key: &K, delta: u32) -> Option<u32> {
        self.items.iter_mut().find(|i| &i.key == key).map(|i| {
            i.counter += delta;
            i.counter
        })
    }

    /// Resets `key`'s counter to zero (a useful contact under the
    /// reset-on-useful rule) and moves it to the front of the activity
    /// order.
    pub fn mark_useful(&mut self, key: &K) {
        if let Some(pos) = self.items.iter().position(|i| &i.key == key) {
            let mut item = self.items.remove(pos);
            item.counter = 0;
            self.items.insert(0, item);
        }
    }

    /// Records deferred feedback for `key` during the current cycle (pull
    /// semantics, Table 3 footnote). Applied by [`HotList::end_cycle`].
    pub fn record_pending(&mut self, key: &K, needed: bool) {
        if let Some(item) = self.items.iter_mut().find(|i| &i.key == key) {
            if needed {
                item.pending_needed = true;
            } else {
                item.pending_useless = true;
            }
        }
    }

    /// Applies the Table 3 footnote at end of cycle: for each rumor that was
    /// pulled at least once, reset the counter if *any* recipient needed it
    /// (when `reset_on_useful` is set — the footnote's rule), otherwise add
    /// one. Rumors whose counter reaches `k` are removed.
    ///
    /// Returns the keys that ceased to be hot.
    pub fn end_cycle(&mut self, k: u32, reset_on_useful: bool) -> Vec<K> {
        let mut deactivated = Vec::new();
        self.end_cycle_retain(k, reset_on_useful, |key| deactivated.push(key.clone()));
        deactivated
    }

    /// [`HotList::end_cycle`] when only the number of deactivations is
    /// needed: identical bookkeeping, no key collection, no allocation.
    pub fn end_cycle_count(&mut self, k: u32, reset_on_useful: bool) -> usize {
        let mut deactivated = 0;
        self.end_cycle_retain(k, reset_on_useful, |_| deactivated += 1);
        deactivated
    }

    fn end_cycle_retain(
        &mut self,
        k: u32,
        reset_on_useful: bool,
        mut on_deactivate: impl FnMut(&K),
    ) {
        for item in &mut self.items {
            if item.pending_needed {
                if reset_on_useful {
                    item.counter = 0;
                }
            } else if item.pending_useless {
                item.counter += 1;
            }
            item.pending_needed = false;
            item.pending_useless = false;
        }
        self.items.retain(|i| {
            if i.counter >= k {
                on_deactivate(&i.key);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_remove() {
        let mut list = HotList::new();
        assert!(list.is_empty());
        list.insert("a");
        list.insert("b");
        assert_eq!(list.len(), 2);
        assert!(list.contains(&"a"));
        assert!(list.remove(&"a"));
        assert!(!list.remove(&"a"));
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn reinsert_resets_counter_and_moves_to_front() {
        let mut list = HotList::new();
        list.insert("a");
        list.insert("b");
        list.bump_counter(&"a", 3);
        list.insert("a");
        assert_eq!(list.counter(&"a"), Some(0));
        assert_eq!(list.keys_snapshot(), ["a", "b"]);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn bump_counter_accumulates() {
        let mut list = HotList::new();
        list.insert("a");
        assert_eq!(list.bump_counter(&"a", 1), Some(1));
        assert_eq!(list.bump_counter(&"a", 2), Some(3));
        assert_eq!(list.bump_counter(&"zzz", 1), None);
    }

    #[test]
    fn mark_useful_resets_and_promotes() {
        let mut list = HotList::new();
        list.insert("a");
        list.insert("b"); // b now in front
        list.bump_counter(&"a", 2);
        list.mark_useful(&"a");
        assert_eq!(list.counter(&"a"), Some(0));
        assert_eq!(list.keys_snapshot(), ["a", "b"]);
    }

    #[test]
    fn end_cycle_applies_footnote_rule() {
        let mut list = HotList::new();
        list.insert("reset"); // pulled by someone who needed it
        list.insert("bump"); // pulled only by those who knew it
        list.insert("idle"); // not pulled at all
        list.bump_counter(&"reset", 1);
        list.bump_counter(&"idle", 1);
        list.record_pending(&"reset", true);
        list.record_pending(&"reset", false); // mixed: any-needed wins
        list.record_pending(&"bump", false);
        let mut removed = list.end_cycle(1, true);
        removed.sort_unstable();
        // "bump" reached k=1 and is deactivated; "idle" already sat at the
        // threshold; "reset" went back to 0 and stays hot.
        assert_eq!(removed, ["bump", "idle"]);
        assert_eq!(list.counter(&"reset"), Some(0));
        assert!(!list.contains(&"bump"));
    }

    #[test]
    fn end_cycle_removes_any_item_at_threshold() {
        let mut list = HotList::new();
        list.insert("a");
        list.bump_counter(&"a", 2);
        let removed = list.end_cycle(2, true);
        assert_eq!(removed, ["a"]);
        assert!(list.is_empty());
    }
}
