//! The epidemic update-propagation protocols of Demers et al.,
//! *Epidemic Algorithms for Replicated Database Maintenance* (PODC 1987) —
//! the paper's primary contribution.
//!
//! Three families of randomized protocols drive replicas toward
//! consistency:
//!
//! * **Direct mail** (§1.2, [`direct_mail`]): the update's entry site mails
//!   it to every site it knows of. Timely but unreliable — mail queues
//!   overflow and site lists go stale.
//! * **Anti-entropy** (§1.3, [`anti_entropy`]): each site periodically
//!   resolves *all* differences with a random partner, by [`Direction::Push`],
//!   [`Direction::Pull`] or [`Direction::PushPull`], optionally short-cut by
//!   checksums, recent-update lists or *peel back*. A simple epidemic:
//!   converges with probability 1.
//! * **Rumor mongering** (§1.4, [`rumor`]): sites share only *hot* rumors
//!   and lose interest after enough unnecessary contacts — cheap cycles, but
//!   a tunable, nonzero failure probability. Backed up by anti-entropy
//!   (§1.5, [`backup`]) the combination is both cheap and certain.
//!
//! All protocol steps are expressed as exchanges between two [`Replica`]s,
//! and [`wire`] additionally realizes anti-entropy as explicit
//! request/response messages over a [`Transport`] for real deployments.
//! A replica is a [`Database`](epidemic_db::Database) plus a local clock and
//! the per-update rumor state ([`hot::HotList`]). The round-synchronous
//! driver lives in the `epidemic-sim` crate; nothing here depends on it, so
//! the same exchange logic can be driven by a real transport.
//!
//! # Example: push-pull anti-entropy converges two replicas
//!
//! ```
//! use epidemic_core::{anti_entropy::{AntiEntropy, Comparison}, Direction, Replica};
//! use epidemic_db::SiteId;
//!
//! let mut a = Replica::new(SiteId::new(0));
//! let mut b = Replica::new(SiteId::new(1));
//! a.client_update("key", 1);
//! b.client_update("other", 2);
//!
//! let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
//! let stats = protocol.exchange(&mut a, &mut b);
//! assert_eq!(stats.sent_ab + stats.sent_ba, 2);
//! assert_eq!(a.db(), b.db());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod anti_entropy;
pub mod backup;
pub mod direct_mail;
pub mod hot;
pub mod replica;
pub mod rumor;
pub mod wire;

pub use anti_entropy::{AntiEntropy, Comparison, ExchangeScratch, ExchangeStats};
pub use backup::{BackupAntiEntropy, Redistribution};
pub use direct_mail::{DirectMail, MailConfig, MailSystem};
pub use replica::Replica;
pub use rumor::{Feedback, Removal, RumorConfig, RumorScratch, RumorStats};
pub use wire::{handle_request, sync_via, SyncRequest, SyncResponse, Transport};

/// Transfer direction of an exchange (§1.3, §1.4).
///
/// With *push*, the initiating site sends what it knows; with *pull* it asks
/// for what the partner knows; *push-pull* does both. For anti-entropy used
/// as a backup, §1.3 shows pull and push-pull converge like `p²` per cycle
/// versus push's `p·e⁻¹` once few susceptibles remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Initiator sends newer data to the partner.
    Push,
    /// Initiator fetches newer data from the partner.
    Pull,
    /// Both directions in one conversation.
    PushPull,
}

impl Direction {
    /// Whether data flows initiator → partner.
    pub const fn pushes(self) -> bool {
        matches!(self, Direction::Push | Direction::PushPull)
    }

    /// Whether data flows partner → initiator.
    pub const fn pulls(self) -> bool {
        matches!(self, Direction::Pull | Direction::PushPull)
    }
}
