//! A database site: replica store, local clock and rumor state.

use std::hash::Hash;

use epidemic_db::store::OfferOutcome;
use epidemic_db::{
    ApplyOutcome, Backend, Clock, Database, Entry, GcPolicy, GcStats, SimClock, SiteId, Timestamp,
};

use crate::hot::HotList;

/// One site of the replicated database: the unit the epidemic protocols
/// exchange between.
///
/// Bundles the [`Database`] with the site's local [`SimClock`] and its
/// infective list ([`HotList`]). With respect to a given update a replica is
/// *susceptible* (no entry), *infective* (entry present and hot) or
/// *removed* (entry present, no longer hot) — the S/I/R states of §1.4.
///
/// # Example
///
/// ```
/// use epidemic_core::Replica;
/// use epidemic_db::SiteId;
///
/// let mut r = Replica::new(SiteId::new(3));
/// r.client_update("printer:daisy", "building-35");
/// assert!(r.is_infective(&"printer:daisy"));
/// assert_eq!(r.db().get(&"printer:daisy"), Some(&"building-35"));
/// ```
#[derive(Debug, Clone)]
pub struct Replica<K, V> {
    site: SiteId,
    clock: SimClock,
    db: Database<K, V>,
    hot: HotList<K>,
}

impl<K, V> Replica<K, V>
where
    K: Ord + Clone + Hash + Eq,
    V: Hash,
{
    /// Creates an empty replica for `site`, on the backend selected by the
    /// `EPIDEMIC_BACKEND` environment variable
    /// ([`Backend::from_env`](epidemic_db::Backend::from_env)).
    pub fn new(site: SiteId) -> Self {
        Replica::with_backend(site, Backend::from_env())
    }

    /// Creates an empty replica for `site` on an explicit storage backend,
    /// for side-by-side backend comparisons in one process (e.g. the
    /// `fig-megascale` sweep).
    pub fn with_backend(site: SiteId, backend: Backend) -> Self {
        Replica {
            site,
            clock: SimClock::new(site),
            db: Database::with_backend(backend),
            hot: HotList::new(),
        }
    }

    /// This replica's site id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The underlying store.
    pub fn db(&self) -> &Database<K, V> {
        &self.db
    }

    /// Mutable access to the underlying store, for protocol internals and
    /// tests. Mutations made here do not touch the rumor state.
    pub fn db_mut(&mut self) -> &mut Database<K, V> {
        &mut self.db
    }

    /// The infective list.
    pub fn hot(&self) -> &HotList<K> {
        &self.hot
    }

    /// Mutable access to the infective list.
    pub fn hot_mut(&mut self) -> &mut HotList<K> {
        &mut self.hot
    }

    /// Whether this replica is actively spreading `key`.
    pub fn is_infective(&self, key: &K) -> bool {
        self.hot.contains(key)
    }

    /// Whether this replica has never heard of `key`.
    pub fn is_susceptible(&self, key: &K) -> bool {
        self.db.entry(key).is_none() && self.db.dormant_certificate(key).is_none()
    }

    /// Whether receiving an entry for `key` stamped `timestamp` would
    /// change this replica's database
    /// ([`Database::would_accept`](epidemic_db::Database::would_accept)).
    /// Senders use this borrow-only check to skip cloning entries the
    /// recipient already holds.
    pub fn needs(&self, key: &K, timestamp: Timestamp) -> bool {
        self.db.would_accept(key, timestamp)
    }

    /// Local clock reading.
    pub fn local_time(&self) -> u64 {
        self.clock.peek()
    }

    /// Consumes and returns a fresh, globally unique timestamp.
    pub fn now(&mut self) -> Timestamp {
        self.clock.now()
    }

    /// A non-consuming observation timestamp: the current local clock
    /// reading paired with this site's id. Used to stamp death-certificate
    /// activations on receipt — activation timestamps control dormancy
    /// windows, not supersession, so they need not be unique, and taking
    /// one must not advance local time (a replica receiving thousands of
    /// entries would otherwise drift far ahead of real time and corrupt
    /// every age-based window).
    pub fn observation(&self) -> Timestamp {
        Timestamp::new(self.clock.peek(), self.site)
    }

    /// Advances the local clock to global simulated time `time` (the
    /// simulator calls this once per cycle).
    pub fn advance_clock(&mut self, time: u64) {
        self.clock.advance_to(time);
    }

    /// Client `Update` operation (§1.1): writes a value at this site and
    /// makes it a hot rumor. Returns the assigned timestamp.
    pub fn client_update(&mut self, key: K, value: V) -> Timestamp {
        let at = self.db.update(key.clone(), value, &mut self.clock);
        self.hot.insert(key);
        at
    }

    /// Client deletion (§2): installs a death certificate with no retention
    /// sites and makes it hot.
    pub fn client_delete(&mut self, key: &K) -> Timestamp {
        let at = self.db.delete(key, &mut self.clock);
        self.hot.insert(key.clone());
        at
    }

    /// Client deletion whose certificate keeps dormant copies at the given
    /// retention sites (§2.1).
    pub fn client_delete_with_retention(&mut self, key: &K, retention: Vec<SiteId>) -> Timestamp {
        let at = self
            .db
            .delete_with_retention(key, retention, &mut self.clock);
        self.hot.insert(key.clone());
        at
    }

    /// Receives an entry through a *rumor-carrying* channel (direct mail,
    /// rumor mongering, redistribution): if it is news, it becomes a hot
    /// rumor here (§1.4: "every person hearing the rumor also becomes
    /// active"). Dormant death certificates are honored and awakened ones
    /// also become hot (§2.3).
    pub fn receive_rumor(&mut self, key: K, entry: Entry<V>) -> OfferOutcome {
        let now = self.observation();
        let outcome = self.db.offer(key.clone(), entry, now);
        match outcome {
            OfferOutcome::Applied | OfferOutcome::AwakenedDormant => self.hot.insert(key),
            OfferOutcome::AlreadyKnown | OfferOutcome::Obsolete => {}
        }
        outcome
    }

    /// Receives an entry through a *quiet* channel (plain anti-entropy):
    /// the entry is merged but does **not** become a hot rumor — except for
    /// an awakened dormant death certificate, which must propagate again
    /// (§2.2) and is therefore marked hot.
    pub fn receive_quietly(&mut self, key: K, entry: Entry<V>) -> OfferOutcome {
        let now = self.observation();
        let outcome = self.db.offer(key.clone(), entry, now);
        if outcome == OfferOutcome::AwakenedDormant {
            self.hot.insert(key);
        }
        outcome
    }

    /// [`Replica::receive_quietly`] from borrowed data
    /// ([`Database::offer_ref`](epidemic_db::Database::offer_ref)): the
    /// anti-entropy hot path offers entries by reference and lets the
    /// store clone only those that actually change state. Offered-but-
    /// rejected entries cost one probe and zero allocations.
    pub fn receive_quietly_ref(&mut self, key: &K, entry: &Entry<V>) -> OfferOutcome
    where
        V: Clone,
    {
        let now = self.observation();
        let outcome = self.db.offer_ref(key, entry, now);
        if outcome == OfferOutcome::AwakenedDormant {
            self.hot.insert(key.clone());
        }
        outcome
    }

    /// Runs death-certificate garbage collection (§2.1) with this site's
    /// identity and local time.
    pub fn collect_garbage(&mut self, policy: GcPolicy) -> GcStats {
        self.db
            .collect_garbage(self.site, self.clock.peek(), policy)
    }

    /// Convenience: merges an entry under plain last-writer-wins without
    /// dormant handling. Prefer [`Replica::receive_rumor`] /
    /// [`Replica::receive_quietly`] in protocol code.
    pub fn apply(&mut self, key: K, entry: Entry<V>) -> ApplyOutcome {
        self.db.apply(key, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replica(site: u32) -> Replica<&'static str, u32> {
        Replica::new(SiteId::new(site))
    }

    #[test]
    fn client_update_is_infective() {
        let mut r = replica(0);
        assert!(r.is_susceptible(&"k"));
        r.client_update("k", 7);
        assert!(r.is_infective(&"k"));
        assert!(!r.is_susceptible(&"k"));
    }

    #[test]
    fn receive_rumor_becomes_hot_only_when_news() {
        let mut a = replica(0);
        let mut b = replica(1);
        let at = a.client_update("k", 7);
        let entry = Entry::live(7, at);
        assert_eq!(b.receive_rumor("k", entry.clone()), OfferOutcome::Applied);
        assert!(b.is_infective(&"k"));
        b.hot_mut().remove(&"k");
        assert_eq!(b.receive_rumor("k", entry), OfferOutcome::AlreadyKnown);
        assert!(!b.is_infective(&"k")); // stale news does not re-ignite
    }

    #[test]
    fn receive_quietly_never_ignites_fresh_updates() {
        let mut a = replica(0);
        let mut b = replica(1);
        let at = a.client_update("k", 7);
        assert_eq!(
            b.receive_quietly("k", Entry::live(7, at)),
            OfferOutcome::Applied
        );
        assert!(!b.is_infective(&"k"));
    }

    #[test]
    fn awakened_dormant_certificate_is_hot_even_quietly() {
        let mut a = replica(0);
        let retention = a.site();
        a.client_update("k", 1);
        let t_old = a.db().entry(&"k").unwrap().timestamp();
        a.client_delete_with_retention(&"k", vec![retention]);
        a.hot_mut().clear();
        // Age the certificate past tau1 so it goes dormant at this site.
        a.advance_clock(1_000);
        a.collect_garbage(GcPolicy::Dormant {
            tau1: 10,
            tau2: 100_000,
        });
        assert_eq!(a.db().len(), 0);
        // An obsolete copy arrives via plain anti-entropy.
        let outcome = a.receive_quietly("k", Entry::live(1, t_old));
        assert_eq!(outcome, OfferOutcome::AwakenedDormant);
        assert!(a.is_infective(&"k"));
    }

    #[test]
    fn clocks_advance_monotonically() {
        let mut r = replica(0);
        r.advance_clock(50);
        assert_eq!(r.local_time(), 50);
        r.advance_clock(10);
        assert_eq!(r.local_time(), 50);
        let t = r.client_update("k", 1);
        assert_eq!(t.time(), 50);
    }
}
