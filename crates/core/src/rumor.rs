//! Rumor mongering: the complex epidemic (paper §1.4).
//!
//! Sites holding a *hot* rumor periodically share it with random partners
//! and lose interest after enough unnecessary contacts. The paper explores
//! a matrix of variants, all implemented here:
//!
//! * **Blind vs. feedback** — lose interest regardless of the recipient, or
//!   only on contacts the recipient did not need.
//! * **Counter vs. coin** — lose interest after `k` unnecessary contacts, or
//!   with probability `1/k` per (unnecessary) contact.
//! * **Push vs. pull vs. push-pull** — who drives the data flow. Pull
//!   counters follow the Table 3 footnote: all pulls served in a cycle are
//!   aggregated, any useful one resets the counter
//!   ([`crate::hot::HotList::end_cycle`]).
//! * **Minimization** — in a push-pull contact where *both* parties already
//!   know the update, only the smaller counter is incremented (both on a
//!   tie).
//!
//! Connection limits and hunting are scheduling concerns and live in the
//! simulator crate; this module implements the pairwise contacts.

use std::hash::Hash;

use epidemic_db::Entry;
use rand::{Rng, RngExt};

use crate::replica::Replica;
use crate::Direction;

/// Whether a sender learns if its contact was unnecessary (§1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// The recipient reports whether it already knew the rumor; interest is
    /// lost only on unnecessary contacts.
    Feedback,
    /// No response from the recipient; interest is lost regardless of the
    /// recipient's state ("obviates the bit-vector response").
    Blind,
}

/// The interest-loss rule (§1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Removal {
    /// Become removed after `k` (unnecessary) contacts.
    Counter {
        /// Loss threshold.
        k: u32,
    },
    /// Become removed with probability `1/k` per (unnecessary) contact.
    Coin {
        /// Inverse loss probability.
        k: u32,
    },
}

impl Removal {
    /// The variant's `k` parameter.
    pub const fn k(self) -> u32 {
        match self {
            Removal::Counter { k } | Removal::Coin { k } => k,
        }
    }
}

/// Full rumor-mongering configuration.
///
/// # Example
///
/// ```
/// use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
/// // Table 1's protocol: (feedback, counter, push).
/// let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k: 2 });
/// assert!(!cfg.reset_on_useful); // push counters are monotone
/// // Table 3's protocol: (feedback, counter, pull) — footnote semantics.
/// let cfg = RumorConfig::new(Direction::Pull, Feedback::Feedback, Removal::Counter { k: 2 });
/// assert!(cfg.reset_on_useful);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RumorConfig {
    /// Who drives data flow in a contact.
    pub direction: Direction,
    /// Blind or feedback interest loss.
    pub feedback: Feedback,
    /// Counter or coin removal rule.
    pub removal: Removal,
    /// Whether a useful contact resets the counter (Table 3 footnote).
    /// Defaults to `true` for pull, `false` otherwise.
    pub reset_on_useful: bool,
    /// §1.4 "Minimization": in push-pull, when both parties know the
    /// update, increment only the smaller counter (both on a tie).
    pub minimization: bool,
}

impl RumorConfig {
    /// Creates a configuration with the paper's per-direction counter
    /// semantics (pull resets counters on useful contacts, push does not).
    pub fn new(direction: Direction, feedback: Feedback, removal: Removal) -> Self {
        RumorConfig {
            direction,
            feedback,
            removal,
            reset_on_useful: matches!(direction, Direction::Pull),
            minimization: false,
        }
    }

    /// Enables §1.4 minimization (meaningful for push-pull).
    pub fn with_minimization(mut self) -> Self {
        self.minimization = true;
        self
    }

    /// Overrides the counter-reset rule (for ablations).
    pub fn with_reset_on_useful(mut self, reset: bool) -> Self {
        self.reset_on_useful = reset;
        self
    }
}

/// Outcome of one rumor contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RumorStats {
    /// Updates transmitted over the network (the paper's traffic unit).
    pub sent: usize,
    /// Transmissions the recipient actually needed.
    pub useful: usize,
    /// Rumors that ceased to be hot at either party during this contact.
    pub deactivated: usize,
}

impl RumorStats {
    /// Accumulates another contact's statistics into this one.
    pub fn merge(&mut self, other: RumorStats) {
        self.sent += other.sent;
        self.useful += other.useful;
        self.deactivated += other.deactivated;
    }
}

/// Reusable buffers for the hot-key snapshots a rumor contact takes of
/// each party. Steady-state drivers keep one per protocol and thread it
/// through [`contact_with`], so a fleet under continuous update load
/// stops allocating a fresh `Vec` on every multi-rumor contact — the
/// rumor-side counterpart of `ExchangeScratch`.
#[derive(Debug, Default)]
pub struct RumorScratch<K> {
    /// Snapshot buffer for the initiator's hot keys.
    pub a_keys: Vec<K>,
    /// Snapshot buffer for the partner's hot keys.
    pub b_keys: Vec<K>,
}

impl<K> RumorScratch<K> {
    /// Creates empty buffers. No allocation happens until a contact
    /// actually snapshots more than one hot rumor.
    pub fn new() -> Self {
        RumorScratch {
            a_keys: Vec::new(),
            b_keys: Vec::new(),
        }
    }
}

/// Start-of-contact snapshot of a replica's hot keys. The single-update
/// experiments keep at most one rumor hot per site, so that case borrows
/// into a stack slot instead of touching the caller's buffer at all.
enum HotKeys<'s, K> {
    UpToOne(Option<K>),
    Many(&'s [K]),
}

impl<'s, K: Ord + Clone + Hash + Eq> HotKeys<'s, K> {
    fn snapshot<V: Hash>(replica: &Replica<K, V>, buf: &'s mut Vec<K>) -> Self {
        let hot = replica.hot();
        if hot.len() <= 1 {
            HotKeys::UpToOne(hot.keys().next().cloned())
        } else {
            buf.clear();
            buf.extend(hot.keys().cloned());
            HotKeys::Many(buf)
        }
    }

    fn as_slice(&self) -> &[K] {
        match self {
            HotKeys::UpToOne(one) => one.as_slice(),
            HotKeys::Many(keys) => keys,
        }
    }
}

/// Offers the hot rumor `key` from `from` to `to`. The entry is cloned
/// only when `to` actually needs it — a borrow-only timestamp check
/// decides, so the common late-epidemic case (everyone already knows the
/// update) transmits nothing owned. Returns `None` when `from` no longer
/// holds an entry for the key (e.g. an expired death certificate), after
/// dropping the stale rumor; otherwise `Some(useful)`.
fn offer_rumor<K, V>(from: &mut Replica<K, V>, to: &mut Replica<K, V>, key: &K) -> Option<bool>
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
{
    let Some(timestamp) = from.db().entry(key).map(Entry::timestamp) else {
        from.hot_mut().remove(key);
        return None;
    };
    if !to.needs(key, timestamp) {
        // The offer would be a no-op at the recipient; skip the clone.
        return Some(false);
    }
    let entry = from.db().entry(key).expect("entry observed above").clone();
    Some(to.receive_rumor(key.clone(), entry).was_useful())
}

/// One **push** contact: `sender` offers every hot rumor to `receiver`
/// (§1.4's basic scenario). Interest-loss is applied immediately per the
/// configured feedback/removal rules.
pub fn push_contact<K, V, R>(
    cfg: &RumorConfig,
    sender: &mut Replica<K, V>,
    receiver: &mut Replica<K, V>,
    rng: &mut R,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    push_contact_with(cfg, sender, receiver, rng, &mut Vec::new())
}

/// [`push_contact`] with a caller-owned snapshot buffer (see
/// [`RumorScratch`]).
pub fn push_contact_with<K, V, R>(
    cfg: &RumorConfig,
    sender: &mut Replica<K, V>,
    receiver: &mut Replica<K, V>,
    rng: &mut R,
    buf: &mut Vec<K>,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    let mut stats = RumorStats::default();
    let keys = HotKeys::snapshot(sender, buf);
    for key in keys.as_slice() {
        let Some(useful) = offer_rumor(sender, receiver, key) else {
            continue;
        };
        stats.sent += 1;
        if useful {
            stats.useful += 1;
        }
        apply_interest_loss(cfg, sender, key, useful, rng, &mut stats);
    }
    stats
}

/// One **pull** contact: `requester` asks `source` for its hot rumors.
/// Counter bookkeeping is *deferred*: the source records whether each pull
/// was needed and applies the Table 3 footnote at end of cycle via
/// [`end_cycle`]. Coin removal is applied immediately.
pub fn pull_contact<K, V, R>(
    cfg: &RumorConfig,
    requester: &mut Replica<K, V>,
    source: &mut Replica<K, V>,
    rng: &mut R,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    pull_contact_with(cfg, requester, source, rng, &mut Vec::new())
}

/// [`pull_contact`] with a caller-owned snapshot buffer (see
/// [`RumorScratch`]).
pub fn pull_contact_with<K, V, R>(
    cfg: &RumorConfig,
    requester: &mut Replica<K, V>,
    source: &mut Replica<K, V>,
    rng: &mut R,
    buf: &mut Vec<K>,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    let mut stats = RumorStats::default();
    let keys = HotKeys::snapshot(source, buf);
    for key in keys.as_slice() {
        let Some(useful) = offer_rumor(source, requester, key) else {
            continue;
        };
        stats.sent += 1;
        if useful {
            stats.useful += 1;
        }
        match cfg.removal {
            Removal::Counter { .. } => {
                // Deferred to end_cycle (Table 3 footnote). Blind pull
                // records every serve as useless — no feedback reaches the
                // source.
                let needed = match cfg.feedback {
                    Feedback::Feedback => useful,
                    Feedback::Blind => false,
                };
                source.hot_mut().record_pending(key, needed);
            }
            Removal::Coin { .. } => {
                apply_interest_loss(cfg, source, key, useful, rng, &mut stats);
            }
        }
    }
    stats
}

/// One **push-pull** contact: both parties offer their hot rumors, with
/// immediate interest-loss and optional §1.4 minimization.
pub fn push_pull_contact<K, V, R>(
    cfg: &RumorConfig,
    a: &mut Replica<K, V>,
    b: &mut Replica<K, V>,
    rng: &mut R,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    push_pull_contact_with(cfg, a, b, rng, &mut RumorScratch::new())
}

/// [`push_pull_contact`] with caller-owned snapshot buffers (see
/// [`RumorScratch`]).
pub fn push_pull_contact_with<K, V, R>(
    cfg: &RumorConfig,
    a: &mut Replica<K, V>,
    b: &mut Replica<K, V>,
    rng: &mut R,
    scratch: &mut RumorScratch<K>,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    let mut stats = RumorStats::default();
    let RumorScratch { a_keys, b_keys } = scratch;
    let a_keys = HotKeys::snapshot(a, a_keys);
    let b_keys = HotKeys::snapshot(b, b_keys);

    for key in a_keys.as_slice() {
        let both_hot = b_keys.as_slice().contains(key);
        let Some(useful) = offer_rumor(a, b, key) else {
            continue;
        };
        stats.sent += 1;
        if useful {
            stats.useful += 1;
        }
        if cfg.minimization && both_hot && !useful {
            // Both parties knew the rumor: increment only the smaller
            // counter; on ties increment both (§1.4 Minimization). The
            // b→a direction for this key is subsumed here.
            minimize_counters(cfg, a, b, key, &mut stats);
            continue;
        }
        apply_interest_loss(cfg, a, key, useful, rng, &mut stats);
    }
    for key in b_keys.as_slice() {
        if cfg.minimization && a_keys.as_slice().contains(key) {
            continue; // handled in the first loop
        }
        let Some(useful) = offer_rumor(b, a, key) else {
            continue;
        };
        stats.sent += 1;
        if useful {
            stats.useful += 1;
        }
        apply_interest_loss(cfg, b, key, useful, rng, &mut stats);
    }
    stats
}

/// One contact in the configured [`Direction`]: dispatches to
/// [`push_contact`], [`pull_contact`] or [`push_pull_contact`].
///
/// `initiator` is the site that opened the connection — the sender under
/// push, the requester under pull, either party under push-pull. This is
/// the single entry point the `epidemic-sim` engine drivers use, so the
/// direction dispatch lives in exactly one place.
pub fn contact<K, V, R>(
    cfg: &RumorConfig,
    initiator: &mut Replica<K, V>,
    partner: &mut Replica<K, V>,
    rng: &mut R,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    contact_with(cfg, initiator, partner, rng, &mut RumorScratch::new())
}

/// [`contact`] with caller-owned snapshot buffers: the form the
/// steady-state drivers use, one [`RumorScratch`] per protocol, so
/// multi-rumor contacts stop allocating a snapshot `Vec` apiece.
pub fn contact_with<K, V, R>(
    cfg: &RumorConfig,
    initiator: &mut Replica<K, V>,
    partner: &mut Replica<K, V>,
    rng: &mut R,
    scratch: &mut RumorScratch<K>,
) -> RumorStats
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
    R: Rng + ?Sized,
{
    match cfg.direction {
        Direction::Push => push_contact_with(cfg, initiator, partner, rng, &mut scratch.a_keys),
        Direction::Pull => pull_contact_with(cfg, initiator, partner, rng, &mut scratch.b_keys),
        Direction::PushPull => push_pull_contact_with(cfg, initiator, partner, rng, scratch),
    }
}

/// End-of-cycle processing for pull counters (Table 3 footnote). Call once
/// per site per cycle after all contacts. Returns deactivation count.
pub fn end_cycle<K, V>(cfg: &RumorConfig, site: &mut Replica<K, V>) -> usize
where
    K: Ord + Clone + Hash + Eq,
    V: Hash,
{
    match cfg.removal {
        Removal::Counter { k } => site.hot_mut().end_cycle_count(k, cfg.reset_on_useful),
        Removal::Coin { .. } => 0,
    }
}

/// Applies the configured interest-loss rule to `holder` after a contact
/// about `key` whose usefulness was `useful`. Exposed so round-synchronous
/// drivers can judge usefulness against start-of-cycle state instead of the
/// sequential outcome (see `epidemic-sim`).
pub fn record_feedback<K, V, R>(
    cfg: &RumorConfig,
    holder: &mut Replica<K, V>,
    key: &K,
    useful: bool,
    rng: &mut R,
) -> bool
where
    K: Ord + Clone + Hash + Eq,
    V: Hash,
    R: Rng + ?Sized,
{
    let mut stats = RumorStats::default();
    apply_interest_loss(cfg, holder, key, useful, rng, &mut stats);
    stats.deactivated > 0
}

/// Applies the configured interest-loss rule to `holder` after a contact
/// about `key` whose usefulness was `useful`.
fn apply_interest_loss<K, V, R>(
    cfg: &RumorConfig,
    holder: &mut Replica<K, V>,
    key: &K,
    useful: bool,
    rng: &mut R,
    stats: &mut RumorStats,
) where
    K: Ord + Clone + Hash + Eq,
    V: Hash,
    R: Rng + ?Sized,
{
    let counts_against = match cfg.feedback {
        Feedback::Feedback => !useful,
        Feedback::Blind => true,
    };
    if !counts_against {
        if useful && cfg.reset_on_useful {
            holder.hot_mut().mark_useful(key);
        }
        return;
    }
    match cfg.removal {
        Removal::Counter { k } => {
            if let Some(c) = holder.hot_mut().bump_counter(key, 1) {
                if c >= k {
                    holder.hot_mut().remove(key);
                    stats.deactivated += 1;
                }
            }
        }
        Removal::Coin { k } => {
            if rng.random::<f64>() < 1.0 / f64::from(k.max(1)) && holder.hot_mut().remove(key) {
                stats.deactivated += 1;
            }
        }
    }
}

/// §1.4 minimization: both parties hold `key` hot and the push was
/// unnecessary — increment only the smaller counter (both on a tie) and
/// deactivate whoever reaches `k`.
fn minimize_counters<K, V>(
    cfg: &RumorConfig,
    a: &mut Replica<K, V>,
    b: &mut Replica<K, V>,
    key: &K,
    stats: &mut RumorStats,
) where
    K: Ord + Clone + Hash + Eq,
    V: Hash,
{
    let Removal::Counter { k } = cfg.removal else {
        return; // minimization is defined for counters only
    };
    let ca = a.hot().counter(key).unwrap_or(0);
    let cb = b.hot().counter(key).unwrap_or(0);
    use std::cmp::Ordering;
    let (bump_a, bump_b) = match ca.cmp(&cb) {
        Ordering::Less => (true, false),
        Ordering::Greater => (false, true),
        Ordering::Equal => (true, true),
    };
    for (holder, bump) in [(&mut *a, bump_a), (&mut *b, bump_b)] {
        if !bump {
            continue;
        }
        if let Some(c) = holder.hot_mut().bump_counter(key, 1) {
            if c >= k {
                holder.hot_mut().remove(key);
                stats.deactivated += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_db::SiteId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> (Replica<&'static str, u32>, Replica<&'static str, u32>) {
        (Replica::new(SiteId::new(0)), Replica::new(SiteId::new(1)))
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn push_spreads_and_ignites_receiver() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let cfg = RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let stats = push_contact(&cfg, &mut a, &mut b, &mut rng());
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.useful, 1);
        assert!(b.is_infective(&"k"));
        assert!(a.is_infective(&"k"), "useful contact keeps the rumor hot");
    }

    #[test]
    fn feedback_counter_deactivates_after_k_unnecessary() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let cfg = RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let mut r = rng();
        push_contact(&cfg, &mut a, &mut b, &mut r); // useful
        b.hot_mut().clear(); // keep b from counting for this test
        push_contact(&cfg, &mut a, &mut b, &mut r); // unnecessary #1
        assert!(a.is_infective(&"k"));
        let stats = push_contact(&cfg, &mut a, &mut b, &mut r); // unnecessary #2
        assert_eq!(stats.deactivated, 1);
        assert!(!a.is_infective(&"k"));
        assert_eq!(a.db().get(&"k"), Some(&1), "update retained after removal");
    }

    #[test]
    fn blind_counter_counts_every_contact() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let cfg = RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Counter { k: 2 });
        let mut r = rng();
        push_contact(&cfg, &mut a, &mut b, &mut r); // useful, still counts
        assert_eq!(a.hot().counter(&"k"), Some(1));
        push_contact(&cfg, &mut a, &mut b, &mut r);
        assert!(!a.is_infective(&"k"));
    }

    #[test]
    fn coin_with_k1_removes_after_first_unnecessary_contact() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        b.client_update("k2", 2); // make b non-susceptible on key k? no: k unknown to b
        let cfg = RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Coin { k: 1 });
        let stats = push_contact(&cfg, &mut a, &mut b, &mut rng());
        // Blind coin with k=1: removed with probability 1 after the send.
        assert_eq!(stats.deactivated, 1);
        assert!(!a.is_infective(&"k"));
        assert!(b.is_infective(&"k"), "the recipient caught the rumor first");
    }

    #[test]
    fn pull_transfers_from_infective_source() {
        let (mut a, mut b) = pair();
        b.client_update("k", 1);
        let cfg = RumorConfig::new(
            Direction::Pull,
            Feedback::Feedback,
            Removal::Counter { k: 1 },
        );
        let stats = pull_contact(&cfg, &mut a, &mut b, &mut rng());
        assert_eq!(stats.sent, 1);
        assert_eq!(a.db().get(&"k"), Some(&1));
        // Counter is deferred: b still hot until end_cycle.
        assert!(b.is_infective(&"k"));
        let deactivated = end_cycle(&cfg, &mut b);
        assert_eq!(deactivated, 0, "a useful serve resets the counter");
    }

    #[test]
    fn pull_footnote_counter_semantics() {
        let (mut a, mut b) = pair();
        b.client_update("k", 1);
        let cfg = RumorConfig::new(
            Direction::Pull,
            Feedback::Feedback,
            Removal::Counter { k: 1 },
        );
        let mut r = rng();
        // Cycle 1: two pulls, one useful (a needs it) one not (c knows it).
        let mut c: Replica<&str, u32> = Replica::new(SiteId::new(2));
        c.client_update("other", 5);
        pull_contact(&cfg, &mut a, &mut b, &mut r); // useful
        pull_contact(&cfg, &mut c, &mut b, &mut r); // c needed it too actually
        end_cycle(&cfg, &mut b);
        assert!(b.is_infective(&"k"), "some recipient needed the update");
        // Cycle 2: only unnecessary pulls.
        pull_contact(&cfg, &mut a, &mut b, &mut r);
        pull_contact(&cfg, &mut c, &mut b, &mut r);
        let removed = end_cycle(&cfg, &mut b);
        assert_eq!(removed, 1);
        assert!(!b.is_infective(&"k"));
    }

    #[test]
    fn push_pull_exchanges_both_ways() {
        let (mut a, mut b) = pair();
        a.client_update("x", 1);
        b.client_update("y", 2);
        let cfg = RumorConfig::new(
            Direction::PushPull,
            Feedback::Feedback,
            Removal::Counter { k: 3 },
        );
        let stats = push_pull_contact(&cfg, &mut a, &mut b, &mut rng());
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.useful, 2);
        assert_eq!(a.db().get(&"y"), Some(&2));
        assert_eq!(b.db().get(&"x"), Some(&1));
        assert!(a.is_infective(&"y") && b.is_infective(&"x"));
    }

    #[test]
    fn minimization_increments_only_smaller_counter() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let cfg = RumorConfig::new(
            Direction::PushPull,
            Feedback::Feedback,
            Removal::Counter { k: 5 },
        )
        .with_minimization();
        let mut r = rng();
        // Spread to b, then pre-load a's counter.
        push_pull_contact(&cfg, &mut a, &mut b, &mut r);
        a.hot_mut().bump_counter(&"k", 2); // a: 2, b: 0
        push_pull_contact(&cfg, &mut a, &mut b, &mut r);
        assert_eq!(a.hot().counter(&"k"), Some(2), "larger counter untouched");
        assert_eq!(b.hot().counter(&"k"), Some(1), "smaller counter bumped");
    }

    #[test]
    fn minimization_increments_both_counters_on_ties() {
        let (mut a, mut b) = pair();
        a.client_update("k", 1);
        let cfg = RumorConfig::new(
            Direction::PushPull,
            Feedback::Feedback,
            Removal::Counter { k: 5 },
        )
        .with_minimization();
        let mut r = rng();
        push_pull_contact(&cfg, &mut a, &mut b, &mut r); // both infective, a:0 b:0
        push_pull_contact(&cfg, &mut a, &mut b, &mut r); // tie: both bump to 1
        assert_eq!(a.hot().counter(&"k"), Some(1));
        assert_eq!(b.hot().counter(&"k"), Some(1));
    }

    #[test]
    fn minimization_lowers_population_residue() {
        // §1.4: minimization "results in the smallest residue we have seen
        // so far". In a two-site system counters re-tie and the variants
        // coincide; the benefit appears at population scale, where random
        // meetings leave counters unequal and minimization spends only the
        // smaller one. Mini-simulation: 60 sites, push-pull, k = 2.
        let mut r = rng();
        let residue = |cfg: &RumorConfig, r: &mut StdRng| {
            let mut total = 0.0;
            let trials = 30;
            for _ in 0..trials {
                let n = 60;
                let mut sites: Vec<Replica<u8, u8>> = (0..n)
                    .map(|i| Replica::new(epidemic_db::SiteId::new(i)))
                    .collect();
                sites[0].client_update(0, 1);
                let mut guard = 0;
                while sites.iter().any(|s| !s.hot().is_empty()) {
                    for i in 0..n as usize {
                        if sites[i].hot().is_empty() {
                            continue;
                        }
                        let mut j = usize::try_from(r.random_range(0..n - 1)).unwrap();
                        if j >= i {
                            j += 1;
                        }
                        let (x, y) = if i < j {
                            let (lo, hi) = sites.split_at_mut(j);
                            (&mut lo[i], &mut hi[0])
                        } else {
                            let (lo, hi) = sites.split_at_mut(i);
                            (&mut hi[0], &mut lo[j])
                        };
                        push_pull_contact(cfg, x, y, r);
                    }
                    guard += 1;
                    assert!(guard < 10_000);
                }
                let missing = sites.iter().filter(|s| s.db().entry(&0).is_none()).count();
                total += missing as f64 / f64::from(n);
            }
            total / 30.0
        };
        let plain = RumorConfig::new(
            Direction::PushPull,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let minimized = plain.with_minimization();
        let plain_res = residue(&plain, &mut r);
        let min_res = residue(&minimized, &mut r);
        assert!(
            min_res <= plain_res,
            "minimized {min_res} vs plain {plain_res}"
        );
    }

    #[test]
    fn hot_keys_without_entries_are_dropped_not_sent() {
        // A hot rumor whose entry was garbage-collected (an expired death
        // certificate) must silently leave the hot list.
        let (mut a, mut b) = pair();
        a.hot_mut().insert("ghost");
        let cfg = RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 1 },
        );
        let stats = push_contact(&cfg, &mut a, &mut b, &mut rng());
        assert_eq!(stats.sent, 0);
        assert!(!a.is_infective(&"ghost"));
        let stats = push_pull_contact(&cfg, &mut a, &mut b, &mut rng());
        assert_eq!(stats.sent, 0);
    }
}
