//! A message-level realization of the anti-entropy exchange.
//!
//! The rest of this crate expresses `ResolveDifference` as a direct
//! function over two co-located [`Replica`]s — ideal for simulation. This
//! module shows the same §1.3 protocol as explicit request/response
//! messages, so it can run over a real network: the initiator drives
//! [`sync_via`] against any [`Transport`]; the responder side is the pure
//! function [`handle_request`]. Every message is self-contained and every
//! merge is idempotent and monotone, so lost messages or crashed
//! conversations never corrupt state — retrying is always safe, exactly
//! the property the paper's randomized protocols rely on ("merely depend
//! on eventual delivery of repeated messages").
//!
//! The message flow (push-pull with recent-update lists, §1.3):
//!
//! ```text
//! initiator                                  partner
//!    | -- Probe { recent, checksum } ------->  merge recent
//!    | <---- Recent { recent, checksum } ----  |
//!  merge recent; checksums match? done.
//!    | -- FullDump { entries } ------------->  merge all
//!    | <---- FullDump { entries } -----------  |
//!  merge all: exact convergence.
//! ```

use std::hash::Hash;

use epidemic_db::{Checksum, Entry, SiteId};

use crate::anti_entropy::ExchangeStats;
use crate::replica::Replica;

/// A request message from the sync initiator.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncRequest<K, V> {
    /// First round: the initiator's recent updates (entries younger than
    /// its window) and the checksum of its database *after* local
    /// bookkeeping.
    Probe {
        /// The initiator's recent-update list.
        recent: Vec<(K, Entry<V>)>,
        /// Checksum of the initiator's full database.
        checksum: Checksum,
        /// The window `τ` the list was built with (the partner replies
        /// with a list over the same window).
        window: u64,
    },
    /// Second round (only when checksums still disagree): the initiator's
    /// complete database.
    FullDump {
        /// Every entry the initiator holds.
        entries: Vec<(K, Entry<V>)>,
    },
}

/// The responder's reply.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncResponse<K, V> {
    /// Reply to [`SyncRequest::Probe`]: the partner's own recent list and
    /// its post-merge checksum.
    Recent {
        /// The partner's recent-update list.
        recent: Vec<(K, Entry<V>)>,
        /// Checksum of the partner's database after merging the probe.
        checksum: Checksum,
    },
    /// Reply to [`SyncRequest::FullDump`]: the partner's complete database
    /// (after merging the dump).
    FullDump {
        /// Every entry the partner holds.
        entries: Vec<(K, Entry<V>)>,
    },
}

/// A request/response channel to remote replicas.
///
/// Implementations may fail (timeouts, crashes); because every state
/// change on both sides is an idempotent merge, callers simply retry the
/// whole [`sync_via`] conversation later — the paper's "eventual delivery
/// of repeated messages" assumption.
pub trait Transport<K, V> {
    /// Transport-level failure (the remote never saw or never answered).
    type Error;

    /// Delivers `request` to `to`'s replica and returns its response.
    fn call(
        &mut self,
        to: SiteId,
        request: SyncRequest<K, V>,
    ) -> Result<SyncResponse<K, V>, Self::Error>;
}

/// Server side of the protocol: merges the request into `replica` and
/// builds the reply. Pure with respect to the transport — wire formats,
/// retries and authentication live outside.
pub fn handle_request<K, V>(
    replica: &mut Replica<K, V>,
    request: SyncRequest<K, V>,
) -> SyncResponse<K, V>
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash,
{
    match request {
        SyncRequest::Probe {
            recent,
            checksum: _,
            window,
        } => {
            for (k, e) in recent {
                replica.receive_quietly(k, e);
            }
            let mine = replica
                .db()
                .recent_updates(replica.local_time(), window)
                .into_items();
            SyncResponse::Recent {
                recent: mine,
                checksum: replica.db().checksum(),
            }
        }
        SyncRequest::FullDump { entries } => {
            for (k, e) in entries {
                replica.receive_quietly(k, e);
            }
            let mine = replica
                .db()
                .iter()
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect();
            SyncResponse::FullDump { entries: mine }
        }
    }
}

/// Client side: one full push-pull conversation between the local
/// `initiator` and the remote replica at `partner`, over `transport`.
///
/// On success both replicas hold identical databases (the conversation
/// ends with full dumps whenever the cheap recent-list round was not
/// enough). On transport error the local replica is left in a valid —
/// possibly partially advanced — state; retrying later is safe.
///
/// # Errors
///
/// Propagates the transport's error unchanged.
pub fn sync_via<K, V, T>(
    initiator: &mut Replica<K, V>,
    partner: SiteId,
    window: u64,
    transport: &mut T,
) -> Result<ExchangeStats, T::Error>
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
    T: Transport<K, V>,
{
    let mut stats = ExchangeStats::default();
    let recent = initiator
        .db()
        .recent_updates(initiator.local_time(), window)
        .into_items();
    stats.sent_ab += recent.len();
    let response = transport.call(
        partner,
        SyncRequest::Probe {
            recent,
            checksum: initiator.db().checksum(),
            window,
        },
    )?;
    let SyncResponse::Recent { recent, checksum } = response else {
        // A well-behaved responder never answers a Probe with a dump;
        // treat it as convergence-unknown and fall through to a full sync.
        return full_sync(initiator, partner, transport, stats);
    };
    stats.sent_ba += recent.len();
    for (k, e) in recent {
        initiator.receive_quietly(k, e);
    }
    stats.checksum_exchanges += 1;
    if initiator.db().checksum() == checksum {
        return Ok(stats);
    }
    full_sync(initiator, partner, transport, stats)
}

fn full_sync<K, V, T>(
    initiator: &mut Replica<K, V>,
    partner: SiteId,
    transport: &mut T,
    mut stats: ExchangeStats,
) -> Result<ExchangeStats, T::Error>
where
    K: Ord + Clone + Hash + Eq,
    V: Clone + Hash + Eq,
    T: Transport<K, V>,
{
    stats.full_compare = true;
    let entries: Vec<(K, Entry<V>)> = initiator
        .db()
        .iter()
        .map(|(k, e)| (k.clone(), e.clone()))
        .collect();
    stats.sent_ab += entries.len();
    let response = transport.call(partner, SyncRequest::FullDump { entries })?;
    if let SyncResponse::FullDump { entries } = response {
        stats.sent_ba += entries.len();
        for (k, e) in entries {
            initiator.receive_quietly(k, e);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use std::collections::BTreeMap;

    /// A test transport over an in-process fleet, with optional message
    /// loss.
    struct InProcess {
        fleet: BTreeMap<SiteId, Replica<u32, u64>>,
        loss: f64,
        rng: StdRng,
    }

    #[derive(Debug, PartialEq, Eq)]
    struct Timeout;

    impl Transport<u32, u64> for InProcess {
        type Error = Timeout;

        fn call(
            &mut self,
            to: SiteId,
            request: SyncRequest<u32, u64>,
        ) -> Result<SyncResponse<u32, u64>, Timeout> {
            if self.loss > 0.0 && self.rng.random::<f64>() < self.loss {
                return Err(Timeout);
            }
            let replica = self.fleet.get_mut(&to).expect("known peer");
            // The request may be applied even when the *response* is lost.
            let response = handle_request(replica, request);
            if self.loss > 0.0 && self.rng.random::<f64>() < self.loss {
                return Err(Timeout);
            }
            Ok(response)
        }
    }

    fn fleet(n: u32) -> InProcess {
        InProcess {
            fleet: (0..n)
                .map(|i| (SiteId::new(i), Replica::new(SiteId::new(i))))
                .collect(),
            loss: 0.0,
            rng: StdRng::seed_from_u64(1),
        }
    }

    #[test]
    fn wire_sync_converges_like_the_direct_exchange() {
        let mut transport = fleet(2);
        let mut local: Replica<u32, u64> = Replica::new(SiteId::new(9));
        local.client_update(1, 10);
        transport
            .fleet
            .get_mut(&SiteId::new(0))
            .unwrap()
            .client_update(2, 20);
        let stats = sync_via(&mut local, SiteId::new(0), 1_000, &mut transport).unwrap();
        assert!(stats.total_sent() >= 2);
        let remote = &transport.fleet[&SiteId::new(0)];
        assert_eq!(local.db(), remote.db());
        assert_eq!(local.db().len(), 2);
    }

    #[test]
    fn recent_round_alone_suffices_for_fresh_divergence() {
        let mut transport = fleet(1);
        let mut local: Replica<u32, u64> = Replica::new(SiteId::new(9));
        // Converge once, then make one fresh update.
        local.client_update(1, 10);
        sync_via(&mut local, SiteId::new(0), 1_000, &mut transport).unwrap();
        local.advance_clock(50);
        transport
            .fleet
            .get_mut(&SiteId::new(0))
            .unwrap()
            .advance_clock(50);
        local.client_update(7, 70);
        let stats = sync_via(&mut local, SiteId::new(0), 1_000, &mut transport).unwrap();
        assert!(!stats.full_compare, "recent lists should reconcile alone");
        assert_eq!(local.db(), transport.fleet[&SiteId::new(0)].db());
    }

    #[test]
    fn stale_divergence_falls_back_to_full_dump() {
        let mut transport = fleet(1);
        let mut local: Replica<u32, u64> = Replica::new(SiteId::new(9));
        local.client_update(1, 10); // t = 1
        local.advance_clock(10_000);
        transport
            .fleet
            .get_mut(&SiteId::new(0))
            .unwrap()
            .advance_clock(10_000);
        // Window 5 excludes the old divergence → full dump round needed.
        let stats = sync_via(&mut local, SiteId::new(0), 5, &mut transport).unwrap();
        assert!(stats.full_compare);
        assert_eq!(local.db(), transport.fleet[&SiteId::new(0)].db());
    }

    #[test]
    fn lossy_transport_errors_but_never_corrupts_and_retry_completes() {
        let mut transport = fleet(1);
        transport.loss = 0.5;
        let mut local: Replica<u32, u64> = Replica::new(SiteId::new(9));
        for key in 0..20u32 {
            local.client_update(key, u64::from(key));
        }
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 1_000, "retries should eventually succeed");
            match sync_via(&mut local, SiteId::new(0), 1_000, &mut transport) {
                Ok(_) => {
                    // One successful full conversation may still leave the
                    // sides unequal if it was the recent round of a
                    // previously half-applied conversation; loop until the
                    // checksums agree.
                    if local.db().checksum() == transport.fleet[&SiteId::new(0)].db().checksum() {
                        break;
                    }
                }
                Err(Timeout) => continue,
            }
        }
        assert_eq!(local.db(), transport.fleet[&SiteId::new(0)].db());
        assert_eq!(local.db().len(), 20);
    }

    #[test]
    fn a_fleet_of_wire_peers_reaches_global_consistency() {
        let mut transport = fleet(6);
        let mut rng = StdRng::seed_from_u64(3);
        // Scatter updates across the remote fleet directly.
        for key in 0..30u32 {
            let site = SiteId::new(rng.random_range(0..6));
            transport
                .fleet
                .get_mut(&site)
                .unwrap()
                .client_update(key, u64::from(key));
        }
        // One local replica gossips with random peers until the whole
        // fleet (driven through it) converges.
        let mut local: Replica<u32, u64> = Replica::new(SiteId::new(9));
        for round in 0..200 {
            let peer = SiteId::new(rng.random_range(0..6));
            sync_via(&mut local, peer, 10_000, &mut transport).unwrap();
            let all_equal = transport.fleet.values().all(|r| r.db() == local.db());
            if all_equal && local.db().len() == 30 {
                return;
            }
            let _ = round;
        }
        panic!("fleet failed to converge through the wire protocol");
    }
}
