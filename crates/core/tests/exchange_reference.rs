//! Differential property test for the zero-copy exchange path.
//!
//! [`AntiEntropy::exchange_with`] earns its speed through borrowed walks, a
//! lockstep index merge, and reused scratch buffers — all of which must be
//! *observationally invisible*. This test pins that claim against a naive
//! reference implementation written the obvious, allocation-happy way:
//! owned snapshots, fresh `Vec`s per conversation, clone-everything offers
//! through the public [`Replica`] API. For random update/delete/GC
//! histories, every direction × comparison strategy must produce an
//! identical [`ExchangeStats`] and identical final replica states, with one
//! dirty scratch threaded through all of the optimized runs.

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, ExchangeStats, Replica};
use epidemic_db::{Entry, GcPolicy, OfferOutcome, SiteId, Timestamp};
use proptest::prelude::*;

type Rep = Replica<u8, u16>;

/// Quiet owned-entry offer with awakened-certificate accounting — the
/// reference counterpart of the hot path's borrow-only offers.
fn offer(to: &mut Rep, key: u8, entry: Entry<u16>, stats: &mut ExchangeStats) {
    if to.receive_quietly(key, entry) == OfferOutcome::AwakenedDormant {
        stats.awakened += 1;
    }
}

/// Full database comparison the snapshot-happy way: clone both databases
/// into sorted vectors, merge-walk them, clone every difference into fresh
/// send lists, then offer.
fn reference_full_resolve(
    direction: Direction,
    a: &mut Rep,
    b: &mut Rep,
    stats: &mut ExchangeStats,
) {
    let snap_a: Vec<(u8, Entry<u16>)> = a.db().iter().map(|(k, e)| (*k, e.clone())).collect();
    let snap_b: Vec<(u8, Entry<u16>)> = b.db().iter().map(|(k, e)| (*k, e.clone())).collect();
    let mut a_to_b: Vec<(u8, Entry<u16>)> = Vec::new();
    let mut b_to_a: Vec<(u8, Entry<u16>)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    loop {
        match (snap_a.get(i), snap_b.get(j)) {
            (None, None) => break,
            (Some((ka, ea)), None) => {
                if direction.pushes() {
                    a_to_b.push((*ka, ea.clone()));
                }
                i += 1;
            }
            (None, Some((kb, eb))) => {
                if direction.pulls() {
                    b_to_a.push((*kb, eb.clone()));
                }
                j += 1;
            }
            (Some((ka, ea)), Some((kb, eb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Less => {
                    if direction.pushes() {
                        a_to_b.push((*ka, ea.clone()));
                    }
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if direction.pulls() {
                        b_to_a.push((*kb, eb.clone()));
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if ea.timestamp() > eb.timestamp() {
                        if direction.pushes() {
                            a_to_b.push((*ka, ea.clone()));
                        }
                    } else if eb.timestamp() > ea.timestamp() && direction.pulls() {
                        b_to_a.push((*kb, eb.clone()));
                    }
                    i += 1;
                    j += 1;
                }
            },
        }
        stats.entries_scanned += 1;
    }
    for (k, e) in a_to_b {
        stats.sent_ab += 1;
        offer(b, k, e, stats);
    }
    for (k, e) in b_to_a {
        stats.sent_ba += 1;
        offer(a, k, e, stats);
    }
}

/// One direction of the recent-list exchange, snapshot style: clone the
/// whole window up front, offer every listed entry, count each as wire
/// traffic whether or not it lands.
fn reference_offer_recent(from: &Rep, to: &mut Rep, tau: u64, stats: &mut ExchangeStats) -> usize {
    let now = from.local_time();
    let listed: Vec<(u8, Entry<u16>)> = from
        .db()
        .recent_entries(now, tau)
        .map(|(k, e)| (*k, e.clone()))
        .collect();
    let count = listed.len();
    for (k, e) in listed {
        offer(to, k, e, stats);
    }
    count
}

/// Peel back with owned index snapshots: newest-first `(timestamp, key)`
/// vectors for both sides, merged walk, checksum after every key.
fn reference_peel_back(a: &mut Rep, b: &mut Rep, stats: &mut ExchangeStats) {
    stats.checksum_exchanges += 1;
    if a.db().checksum() == b.db().checksum() {
        return;
    }
    let av: Vec<(Timestamp, u8)> = a
        .db()
        .newest_first()
        .map(|(k, e)| (e.timestamp(), *k))
        .collect();
    let bv: Vec<(Timestamp, u8)> = b
        .db()
        .newest_first()
        .map(|(k, e)| (e.timestamp(), *k))
        .collect();
    let (mut i, mut j) = (0, 0);
    while i < av.len() || j < bv.len() {
        let take_a = match (av.get(i), bv.get(j)) {
            (Some(x), Some(y)) => x.0 >= y.0,
            (Some(_), None) => true,
            _ => false,
        };
        let key = if take_a {
            let k = av[i].1;
            i += 1;
            k
        } else {
            let k = bv[j].1;
            j += 1;
            k
        };
        stats.entries_scanned += 1;
        let ta = a.db().entry(&key).map(Entry::timestamp);
        let tb = b.db().entry(&key).map(Entry::timestamp);
        if ta > tb {
            let entry = a.db().entry(&key).expect("ta is Some").clone();
            stats.sent_ab += 1;
            offer(b, key, entry, stats);
        } else if tb > ta {
            let entry = b.db().entry(&key).expect("tb is Some").clone();
            stats.sent_ba += 1;
            offer(a, key, entry, stats);
        }
        stats.checksum_exchanges += 1;
        if a.db().checksum() == b.db().checksum() {
            return;
        }
    }
}

/// The naive conversation: same protocol skeleton as
/// [`AntiEntropy::exchange_with`], but every stage works on owned
/// snapshots and freshly allocated buffers.
fn reference_exchange(
    direction: Direction,
    comparison: Comparison,
    a: &mut Rep,
    b: &mut Rep,
) -> ExchangeStats {
    let mut stats = ExchangeStats::default();
    match comparison {
        Comparison::Full => {
            stats.full_compare = true;
            reference_full_resolve(direction, a, b, &mut stats);
        }
        Comparison::Checksum => {
            stats.checksum_exchanges += 1;
            if a.db().checksum() != b.db().checksum() {
                stats.full_compare = true;
                reference_full_resolve(direction, a, b, &mut stats);
            }
        }
        Comparison::RecentList { tau } => {
            if direction.pushes() {
                stats.sent_ab += reference_offer_recent(&*a, b, tau, &mut stats);
            }
            if direction.pulls() {
                stats.sent_ba += reference_offer_recent(&*b, a, tau, &mut stats);
            }
            stats.checksum_exchanges += 1;
            if a.db().checksum() != b.db().checksum() {
                stats.full_compare = true;
                reference_full_resolve(direction, a, b, &mut stats);
            }
        }
        Comparison::PeelBack => reference_peel_back(a, b, &mut stats),
    }
    stats
}

/// One step of a random pair history. Deletes with retention plus dormant
/// GC park dormant death certificates, steering the exchange into the
/// awakening path the lockstep shortcut must stand aside for.
#[derive(Debug, Clone)]
enum Hist {
    Write { on_b: bool, key: u8, value: u16 },
    Delete { on_b: bool, key: u8 },
    DeleteRetained { on_b: bool, key: u8 },
    Advance { dt: u16 },
    Sync,
    Gc { on_b: bool },
}

fn hist_step() -> impl Strategy<Value = Hist> {
    prop_oneof![
        (any::<bool>(), 0u8..12, any::<u16>()).prop_map(|(on_b, key, value)| Hist::Write {
            on_b,
            key,
            value
        }),
        (any::<bool>(), 0u8..12, any::<u16>()).prop_map(|(on_b, key, value)| Hist::Write {
            on_b,
            key,
            value
        }),
        (any::<bool>(), 0u8..12).prop_map(|(on_b, key)| Hist::Delete { on_b, key }),
        (any::<bool>(), 0u8..12).prop_map(|(on_b, key)| Hist::DeleteRetained { on_b, key }),
        (1u16..400).prop_map(|dt| Hist::Advance { dt }),
        Just(Hist::Sync),
        any::<bool>().prop_map(|on_b| Hist::Gc { on_b }),
    ]
}

/// Replays a history onto a fresh pair. Clocks stay loosely coupled: both
/// advance together on `Advance`, so recent windows overlap realistically.
fn run_history(hist: &[Hist]) -> (Rep, Rep) {
    let mut a: Rep = Replica::new(SiteId::new(0));
    let mut b: Rep = Replica::new(SiteId::new(1));
    let mut time = 10;
    for step in hist {
        time += 10;
        a.advance_clock(time);
        b.advance_clock(time);
        match step {
            Hist::Write { on_b, key, value } => {
                let r = if *on_b { &mut b } else { &mut a };
                r.client_update(*key, *value);
            }
            Hist::Delete { on_b, key } => {
                let r = if *on_b { &mut b } else { &mut a };
                r.client_delete(key);
            }
            Hist::DeleteRetained { on_b, key } => {
                let r = if *on_b { &mut b } else { &mut a };
                r.client_delete_with_retention(key, vec![SiteId::new(0), SiteId::new(1)]);
            }
            Hist::Advance { dt } => {
                time += u64::from(*dt);
                a.advance_clock(time);
                b.advance_clock(time);
            }
            Hist::Sync => {
                AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
            }
            Hist::Gc { on_b } => {
                let r = if *on_b { &mut b } else { &mut a };
                r.collect_garbage(GcPolicy::Dormant {
                    tau1: 50,
                    tau2: 2_000,
                });
            }
        }
    }
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any history, every direction × strategy conversation run through
    /// one dirty reused scratch matches the naive reference bit for bit:
    /// same stats, same databases, same hot lists.
    #[test]
    fn scratch_exchange_matches_naive_reference(
        hist in prop::collection::vec(hist_step(), 0..50),
        tau in prop_oneof![Just(1u64), 1u64..1_500, Just(1_000_000u64)],
    ) {
        let (a0, b0) = run_history(&hist);
        let mut scratch = ExchangeScratch::new();
        for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
            for comparison in [
                Comparison::Full,
                Comparison::Checksum,
                Comparison::RecentList { tau },
                Comparison::PeelBack,
            ] {
                let (mut ar, mut br) = (a0.clone(), b0.clone());
                let (mut ax, mut bx) = (a0.clone(), b0.clone());
                let want = reference_exchange(direction, comparison, &mut ar, &mut br);
                let got = AntiEntropy::new(direction, comparison)
                    .exchange_with(&mut ax, &mut bx, &mut scratch);
                prop_assert_eq!(want, got, "stats diverge: {:?} {:?}", direction, comparison);
                prop_assert_eq!(ar.db(), ax.db(), "initiator db diverges: {:?} {:?}", direction, comparison);
                prop_assert_eq!(br.db(), bx.db(), "partner db diverges: {:?} {:?}", direction, comparison);
                prop_assert_eq!(ar.hot(), ax.hot(), "initiator hot list diverges: {:?} {:?}", direction, comparison);
                prop_assert_eq!(br.hot(), bx.hot(), "partner hot list diverges: {:?} {:?}", direction, comparison);
            }
        }
    }
}
