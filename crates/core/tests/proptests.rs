//! Property-based tests for the protocol layer: no mix of protocol
//! actions can lose or regress data, and rumor bookkeeping stays sound.

use epidemic_core::rumor::{self, RumorConfig};
use epidemic_core::{
    AntiEntropy, BackupAntiEntropy, Comparison, Direction, Feedback, Redistribution, Removal,
    Replica,
};
use epidemic_db::{Entry, SiteId, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SITES: usize = 5;

/// One protocol action in a random schedule.
#[derive(Debug, Clone)]
enum Action {
    Write {
        site: u8,
        key: u8,
        value: u16,
    },
    Delete {
        site: u8,
        key: u8,
    },
    AntiEntropy {
        a: u8,
        b: u8,
        comparison: u8,
        direction: u8,
    },
    RumorPush {
        a: u8,
        b: u8,
        cfg: u8,
    },
    RumorPull {
        a: u8,
        b: u8,
        cfg: u8,
    },
    RumorPushPull {
        a: u8,
        b: u8,
        cfg: u8,
    },
    Backup {
        a: u8,
        b: u8,
        policy: u8,
    },
    EndCycle {
        site: u8,
    },
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u8>(), 0u8..12, any::<u16>()).prop_map(|(site, key, value)| Action::Write {
            site,
            key,
            value
        }),
        (any::<u8>(), 0u8..12).prop_map(|(site, key)| Action::Delete { site, key }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(a, b, comparison, direction)| Action::AntiEntropy {
                a,
                b,
                comparison,
                direction
            }
        ),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, cfg)| Action::RumorPush {
            a,
            b,
            cfg
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, cfg)| Action::RumorPull {
            a,
            b,
            cfg
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, cfg)| Action::RumorPushPull {
            a,
            b,
            cfg
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, policy)| Action::Backup {
            a,
            b,
            policy
        }),
        any::<u8>().prop_map(|site| Action::EndCycle { site }),
    ]
}

fn rumor_config(code: u8) -> RumorConfig {
    let direction = match code % 3 {
        0 => Direction::Push,
        1 => Direction::Pull,
        _ => Direction::PushPull,
    };
    let feedback = if code & 4 == 0 {
        Feedback::Feedback
    } else {
        Feedback::Blind
    };
    let k = u32::from(code >> 5) + 1;
    let removal = if code & 8 == 0 {
        Removal::Counter { k }
    } else {
        Removal::Coin { k }
    };
    let cfg = RumorConfig::new(direction, feedback, removal);
    if code & 16 == 0 {
        cfg
    } else {
        cfg.with_minimization()
    }
}

fn comparison(code: u8) -> Comparison {
    match code % 4 {
        0 => Comparison::Full,
        1 => Comparison::Checksum,
        2 => Comparison::RecentList { tau: 40 },
        _ => Comparison::PeelBack,
    }
}

fn split_pair(
    replicas: &mut [Replica<u8, u16>],
    i: usize,
    j: usize,
) -> (&mut Replica<u8, u16>, &mut Replica<u8, u16>) {
    if i < j {
        let (lo, hi) = replicas.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

/// Executes a schedule and after every action checks the safety
/// invariants:
/// * per-replica, per-key timestamps never decrease (no regression);
/// * every entry anywhere corresponds to an operation some client made
///   (here: timestamps only ever originate from client writes/deletes).
fn run_schedule(actions: &[Action]) -> Vec<Replica<u8, u16>> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut replicas: Vec<Replica<u8, u16>> = (0..SITES)
        .map(|i| Replica::new(SiteId::new(i as u32)))
        .collect();
    let mut watermark: Vec<std::collections::BTreeMap<u8, Timestamp>> =
        vec![Default::default(); SITES];
    let mut time = 10;
    for action in actions {
        time += 10;
        for r in replicas.iter_mut() {
            r.advance_clock(time);
        }
        match action {
            Action::Write { site, key, value } => {
                let s = *site as usize % SITES;
                replicas[s].client_update(*key, *value);
            }
            Action::Delete { site, key } => {
                let s = *site as usize % SITES;
                replicas[s].client_delete(key);
            }
            Action::AntiEntropy {
                a,
                b,
                comparison: c,
                direction,
            } => {
                let (i, j) = (*a as usize % SITES, *b as usize % SITES);
                if i != j {
                    let dir = match direction % 3 {
                        0 => Direction::Push,
                        1 => Direction::Pull,
                        _ => Direction::PushPull,
                    };
                    let protocol = AntiEntropy::new(dir, comparison(*c));
                    let (x, y) = split_pair(&mut replicas, i, j);
                    protocol.exchange(x, y);
                }
            }
            Action::RumorPush { a, b, cfg } => {
                let (i, j) = (*a as usize % SITES, *b as usize % SITES);
                if i != j {
                    let (x, y) = split_pair(&mut replicas, i, j);
                    rumor::push_contact(&rumor_config(*cfg), x, y, &mut rng);
                }
            }
            Action::RumorPull { a, b, cfg } => {
                let (i, j) = (*a as usize % SITES, *b as usize % SITES);
                if i != j {
                    let (x, y) = split_pair(&mut replicas, i, j);
                    rumor::pull_contact(&rumor_config(*cfg), x, y, &mut rng);
                }
            }
            Action::RumorPushPull { a, b, cfg } => {
                let (i, j) = (*a as usize % SITES, *b as usize % SITES);
                if i != j {
                    let (x, y) = split_pair(&mut replicas, i, j);
                    rumor::push_pull_contact(&rumor_config(*cfg), x, y, &mut rng);
                }
            }
            Action::Backup { a, b, policy } => {
                let (i, j) = (*a as usize % SITES, *b as usize % SITES);
                if i != j {
                    let redistribution = match policy % 3 {
                        0 => Redistribution::None,
                        1 => Redistribution::Rumor,
                        _ => Redistribution::Mail,
                    };
                    let (x, y) = split_pair(&mut replicas, i, j);
                    BackupAntiEntropy::new(redistribution).exchange(x, y);
                }
            }
            Action::EndCycle { site } => {
                let s = *site as usize % SITES;
                let cfg = rumor_config(*site);
                rumor::end_cycle(&cfg, &mut replicas[s]);
            }
        }
        // Safety: no replica's view of any key may move backwards.
        for (idx, replica) in replicas.iter().enumerate() {
            for (key, entry) in replica.db().iter() {
                let ts = entry.timestamp();
                let prev = watermark[idx].entry(*key).or_insert(ts);
                assert!(
                    ts >= *prev,
                    "replica {idx} key {key} regressed from {prev} to {ts}"
                );
                *prev = ts;
            }
        }
    }
    replicas
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of client operations and protocol actions
    /// preserves per-key timestamp monotonicity at every replica.
    #[test]
    fn no_action_sequence_regresses_any_replica(actions in prop::collection::vec(action(), 0..80)) {
        run_schedule(&actions);
    }

    /// After any schedule, a saturating round of push-pull anti-entropy
    /// converges all replicas to one state in which every key carries the
    /// globally maximal timestamp observed for it.
    #[test]
    fn full_anti_entropy_always_heals(actions in prop::collection::vec(action(), 0..60)) {
        let mut replicas = run_schedule(&actions);
        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        for _ in 0..3 {
            for i in 0..SITES {
                for j in (i + 1)..SITES {
                    let (a, b) = split_pair(&mut replicas, i, j);
                    protocol.exchange(a, b);
                }
            }
        }
        // Global max timestamp per key across all replicas.
        let mut global: std::collections::BTreeMap<u8, Timestamp> = Default::default();
        for r in &replicas {
            for (k, e) in r.db().iter() {
                let ts = e.timestamp();
                global
                    .entry(*k)
                    .and_modify(|t| *t = (*t).max(ts))
                    .or_insert(ts);
            }
        }
        for r in &replicas[1..] {
            prop_assert_eq!(r.db(), replicas[0].db());
        }
        for (k, e) in replicas[0].db().iter() {
            prop_assert_eq!(e.timestamp(), global[k]);
        }
    }

    /// Rumor contacts never fabricate entries: every entry held anywhere
    /// is observable at the replica that wrote it or superseded.
    #[test]
    fn rumor_traffic_is_conservative(actions in prop::collection::vec(action(), 0..60)) {
        let replicas = run_schedule(&actions);
        // Keys present anywhere must have been written/deleted by some
        // client action (keys are drawn from 0..12 by construction).
        for r in &replicas {
            for (k, _) in r.db().iter() {
                prop_assert!(*k < 12);
            }
        }
    }

    /// Hot-list counters never exceed the configured threshold k after a
    /// contact (they are removed exactly at k).
    #[test]
    fn counters_never_exceed_k(cfg_code in any::<u8>(), contacts in 1usize..30) {
        let cfg = rumor_config(cfg_code);
        let Removal::Counter { k } = cfg.removal else { return Ok(()); };
        let mut rng = StdRng::seed_from_u64(3);
        let mut a: Replica<u8, u16> = Replica::new(SiteId::new(0));
        let mut b: Replica<u8, u16> = Replica::new(SiteId::new(1));
        a.client_update(1, 1);
        b.client_update(1, 2); // b newer? same tick, site tie-break: b wins
        for _ in 0..contacts {
            match cfg.direction {
                Direction::Push => rumor::push_contact(&cfg, &mut a, &mut b, &mut rng),
                Direction::Pull => rumor::pull_contact(&cfg, &mut a, &mut b, &mut rng),
                Direction::PushPull => rumor::push_pull_contact(&cfg, &mut a, &mut b, &mut rng),
            };
            rumor::end_cycle(&cfg, &mut a);
            rumor::end_cycle(&cfg, &mut b);
            for r in [&a, &b] {
                for item in r.hot().iter() {
                    prop_assert!(item.counter() < k, "counter {} vs k {k}", item.counter());
                }
            }
        }
    }

    /// Death certificates propagate through any protocol like ordinary
    /// data: if a delete's timestamp is globally maximal for its key,
    /// healing converges everyone to the tombstone.
    #[test]
    fn deletes_win_when_newest(actions in prop::collection::vec(action(), 0..40)) {
        let mut replicas = run_schedule(&actions);
        // Issue a final delete, then heal.
        let t = 1_000_000;
        for r in replicas.iter_mut() {
            r.advance_clock(t);
        }
        replicas[0].client_delete(&5);
        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        for _ in 0..2 {
            for i in 0..SITES {
                for j in (i + 1)..SITES {
                    let (a, b) = split_pair(&mut replicas, i, j);
                    protocol.exchange(a, b);
                }
            }
        }
        for r in &replicas {
            prop_assert_eq!(r.db().get(&5), None);
            prop_assert!(r.db().entry(&5).is_some_and(Entry::is_dead));
        }
    }
}
