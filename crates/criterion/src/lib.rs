//! Offline, in-workspace stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so `cargo bench` is
//! served by this minimal wall-clock harness instead: it runs each
//! registered routine for a fixed number of timed samples and prints
//! `name … median ns/iter` lines. No statistical analysis, plots, or
//! baseline storage — just enough to keep the workspace's `harness =
//! false` benches compiling, running, and producing comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How batched inputs are grouped between setup calls.
///
/// This harness always re-runs setup per sample, so the variants only
/// exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large inputs (setup dominates; run routine once per setup).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifies the benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times one routine; passed to the closure given to `bench_function`.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, recorded by `iter`/`iter_batched`.
    measured_ns: f64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly and recording the median
    /// sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow the batch until one batch takes >= 1ms, so
        // per-call timer overhead is amortized for fast routines.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        self.measured_ns = median(&mut samples_ns);
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
        self.measured_ns = median(&mut samples_ns);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are never NaN"));
    samples[samples.len() / 2]
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        measured_ns: 0.0,
    };
    f(&mut bencher);
    let ns = bencher.measured_ns;
    if ns >= 1e9 {
        println!("{name:<50} {:>12.3} s/iter", ns / 1e9);
    } else if ns >= 1e6 {
        println!("{name:<50} {:>12.3} ms/iter", ns / 1e6);
    } else if ns >= 1e3 {
        println!("{name:<50} {:>12.3} µs/iter", ns / 1e3);
    } else {
        println!("{name:<50} {:>12.1} ns/iter", ns);
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group; benchmarks inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Ends the group (a no-op here; results print as they run).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u64;
        Criterion::default()
            .sample_size(3)
            .bench_function("counts", |b| {
                b.iter(|| runs += 1);
            });
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut criterion = Criterion::default().sample_size(4);
        let mut group = criterion.benchmark_group("g");
        let mut seen = Vec::new();
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            let mut counter = 0u32;
            b.iter_batched(
                || {
                    counter += 1;
                    counter
                },
                |input| seen.push(input),
                BatchSize::LargeInput,
            );
        });
        group.finish();
        assert_eq!(seen, (1..=4).collect::<Vec<_>>());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("push-pull").id, "push-pull");
    }
}
