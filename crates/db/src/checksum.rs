//! Incremental database checksums (paper §1.3).
//!
//! "Each site maintains a checksum of its database contents, recomputing the
//! checksum incrementally as the database is updated." We realize this with
//! an order-independent XOR of per-entry FNV-1a digests: inserting or
//! removing an entry toggles its digest in or out in `O(1)`, and two
//! databases have equal checksums whenever they hold equal `(key, entry)`
//! sets (up to the vanishingly small probability of a 64-bit collision).
//!
//! The hasher is hand-rolled (FNV-1a) rather than `DefaultHasher` so that
//! checksums are stable across processes and Rust releases — two *different*
//! simulated sites must agree on the digest of an identical entry.

use std::fmt;
use std::hash::{Hash, Hasher};

/// An order-independent checksum over a set of hashable items.
///
/// # Example
///
/// ```
/// use epidemic_db::Checksum;
/// let mut a = Checksum::new();
/// let mut b = Checksum::new();
/// a.toggle(&("k1", 10));
/// a.toggle(&("k2", 20));
/// b.toggle(&("k2", 20));
/// b.toggle(&("k1", 10));
/// assert_eq!(a, b); // insertion order is irrelevant
/// a.toggle(&("k1", 10)); // toggling again removes the item
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Checksum(u64);

impl Checksum {
    /// The checksum of an empty database.
    pub const fn new() -> Self {
        Checksum(0)
    }

    /// Adds or removes an item. Because the combination is XOR, toggling
    /// the same item twice restores the previous checksum; replacing an
    /// entry is `toggle(old); toggle(new)`.
    pub fn toggle<T: Hash + ?Sized>(&mut self, item: &T) {
        self.0 ^= fnv1a_hash(item);
    }

    /// The raw 64-bit digest.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Checksum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::LowerHex for Checksum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Hashes one value with the process-independent FNV-1a hasher.
pub fn fnv1a_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv1a::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// FNV-1a 64-bit [`Hasher`], stable across processes and platforms.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// Creates a hasher at the standard FNV offset basis.
    pub const fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_checksums_are_equal() {
        assert_eq!(Checksum::new(), Checksum::default());
        assert_eq!(Checksum::new().value(), 0);
    }

    #[test]
    fn toggle_twice_is_identity() {
        let mut c = Checksum::new();
        let before = c;
        c.toggle("hello");
        assert_ne!(c, before);
        c.toggle("hello");
        assert_eq!(c, before);
    }

    #[test]
    fn order_independent() {
        let items = ["a", "b", "c", "d"];
        let mut fwd = Checksum::new();
        let mut rev = Checksum::new();
        for i in &items {
            fwd.toggle(i);
        }
        for i in items.iter().rev() {
            rev.toggle(i);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // FNV-1a("") over no bytes is the offset basis.
        assert_eq!(Fnv1a::new().finish(), FNV_OFFSET);
        // Known vector: fnv1a_64 of bytes "a" = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn distinct_entries_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(fnv1a_hash(&i)), "collision at {i}");
        }
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let mut c = Checksum::new();
        c.toggle(&1u8);
        assert_eq!(c.to_string().len(), 16);
    }
}
