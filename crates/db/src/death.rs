//! Death certificates, dormancy and reactivation (paper §2).
//!
//! Deleting an item by merely removing it would let the propagation
//! mechanism *resurrect* it from other replicas. Deletions are therefore
//! recorded as death certificates that spread like ordinary data (§2). This
//! module adds the paper's two space-reclamation schemes:
//!
//! * **fixed threshold** — discard a certificate once it is older than `τ`;
//! * **dormant death certificates** (§2.1) — discard at most sites after
//!   `τ₁`, but keep *dormant* copies at `r` randomly chosen retention sites
//!   until `τ₁ + τ₂`, reactivating them (§2.2–2.3) whenever an obsolete copy
//!   of the item is encountered.
//!
//! Reactivation uses a second *activation timestamp* so that a revived
//! certificate does not cancel legitimate updates (such as a reinstatement)
//! that are newer than the original deletion but older than the revival.

use crate::timestamp::{SiteId, Timestamp};

/// A death certificate: tombstone for a deleted item (§2).
///
/// Carries the *ordinary* (deletion) timestamp used for supersession, the
/// *activation* timestamp that governs dormancy and propagation (§2.2), and
/// the list of retention sites that keep dormant copies (§2.1).
///
/// # Example
///
/// ```
/// use epidemic_db::{DeathCertificate, SiteId, Timestamp};
/// let del = Timestamp::new(10, SiteId::new(0));
/// let mut dc = DeathCertificate::with_retention(del, vec![SiteId::new(3)]);
/// assert_eq!(dc.activation(), del);
/// dc.reactivate(Timestamp::new(99, SiteId::new(1)));
/// assert_eq!(dc.deleted_at(), del);          // supersession unchanged
/// assert_eq!(dc.activation().time(), 99);    // propagates afresh
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeathCertificate {
    deleted_at: Timestamp,
    activation: Timestamp,
    retention: Vec<SiteId>,
}

impl DeathCertificate {
    /// Creates a certificate with no retention sites. Its activation
    /// timestamp starts equal to the deletion timestamp (§2.2).
    pub fn new(deleted_at: Timestamp) -> Self {
        DeathCertificate {
            deleted_at,
            activation: deleted_at,
            retention: Vec::new(),
        }
    }

    /// Creates a certificate whose dormant copies will be retained at the
    /// given sites (chosen at random by the deleting site, §2.1).
    pub fn with_retention(deleted_at: Timestamp, retention: Vec<SiteId>) -> Self {
        DeathCertificate {
            deleted_at,
            activation: deleted_at,
            retention,
        }
    }

    /// The ordinary timestamp: when the item was deleted. This is what
    /// cancels old copies of the item.
    pub fn deleted_at(&self) -> Timestamp {
        self.deleted_at
    }

    /// The activation timestamp: controls dormancy and propagation (§2.2).
    pub fn activation(&self) -> Timestamp {
        self.activation
    }

    /// Sites holding dormant copies between `τ₁` and `τ₁ + τ₂`.
    pub fn retention_sites(&self) -> &[SiteId] {
        &self.retention
    }

    /// Whether `site` is one of the retention sites.
    pub fn retains_at(&self, site: SiteId) -> bool {
        self.retention.contains(&site)
    }

    /// Reactivates the certificate: sets the activation timestamp to `now`,
    /// leaving the ordinary timestamp unchanged (§2.2). Called when a
    /// dormant certificate meets an obsolete copy of its item.
    pub fn reactivate(&mut self, now: Timestamp) {
        debug_assert!(now >= self.activation, "activation must not go backwards");
        self.activation = now;
    }

    /// The certificate's lifecycle stage at local time `now` under a dormant
    /// scheme with thresholds `τ₁` and `τ₂`, as seen from `site`.
    pub fn stage(&self, site: SiteId, now: u64, tau1: u64, tau2: u64) -> DeathStage {
        let age = self.activation.age(now);
        if age <= tau1 {
            DeathStage::Active
        } else if age <= tau1 + tau2 && self.retains_at(site) {
            DeathStage::Dormant
        } else {
            DeathStage::Expired
        }
    }
}

/// Lifecycle stage of a death certificate under the dormant scheme (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeathStage {
    /// Younger than `τ₁`: held at every site and propagated normally.
    Active,
    /// Between `τ₁` and `τ₁+τ₂` at a retention site: held but **not**
    /// propagated by anti-entropy (§2.2) until reactivated.
    Dormant,
    /// Older than its retention window (or past `τ₁` at a non-retention
    /// site): may be discarded.
    Expired,
}

/// Garbage-collection policy for death certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcPolicy {
    /// Keep every certificate forever (baseline; unbounded space).
    KeepForever,
    /// Discard certificates older than `tau` at every site (§2's "30 days"
    /// strategy). Risks resurrection of items deleted longer ago than `tau`.
    FixedThreshold {
        /// Retention window in ticks.
        tau: u64,
    },
    /// Dormant death certificates (§2.1): discard after `tau1` except at the
    /// certificate's retention sites, which hold a dormant copy until
    /// `tau1 + tau2`.
    Dormant {
        /// Active window `τ₁` in ticks.
        tau1: u64,
        /// Additional dormant window `τ₂` in ticks.
        tau2: u64,
    },
}

impl GcPolicy {
    /// Whether a certificate with the given activation age may be discarded
    /// at `site`.
    pub fn discards(&self, dc: &DeathCertificate, site: SiteId, now: u64) -> bool {
        match *self {
            GcPolicy::KeepForever => false,
            GcPolicy::FixedThreshold { tau } => dc.activation().age(now) > tau,
            GcPolicy::Dormant { tau1, tau2 } => {
                dc.stage(site, now, tau1, tau2) == DeathStage::Expired
            }
        }
    }

    /// Whether a certificate should be *propagated* by anti-entropy at
    /// `site`/`now`: dormant certificates are held but not sent (§2.2).
    pub fn propagates(&self, dc: &DeathCertificate, site: SiteId, now: u64) -> bool {
        match *self {
            GcPolicy::KeepForever | GcPolicy::FixedThreshold { .. } => true,
            GcPolicy::Dormant { tau1, tau2 } => {
                dc.stage(site, now, tau1, tau2) == DeathStage::Active
            }
        }
    }

    /// The equal-space dormant window `τ₂ = (τ − τ₁)·n/r` of §2.1: the
    /// history extension obtained by retaining dormant copies at `r` of `n`
    /// sites instead of full copies everywhere for `τ`.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0` or `tau < tau1`.
    pub fn equal_space_tau2(tau: u64, tau1: u64, n: u64, r: u64) -> u64 {
        assert!(r > 0, "at least one retention site is required");
        assert!(tau >= tau1, "tau must be at least tau1");
        (tau - tau1) * n / r
    }
}

/// Statistics from a garbage-collection sweep
/// ([`Database::collect_garbage`](crate::Database::collect_garbage)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct GcStats {
    /// Certificates discarded by the sweep.
    pub discarded: usize,
    /// Certificates kept in the active stage.
    pub active: usize,
    /// Certificates kept as dormant copies.
    pub dormant: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t, SiteId::new(0))
    }

    #[test]
    fn stages_progress_with_age() {
        let dc = DeathCertificate::with_retention(ts(100), vec![SiteId::new(1)]);
        let (tau1, tau2) = (10, 50);
        let retained = SiteId::new(1);
        let other = SiteId::new(2);
        assert_eq!(dc.stage(retained, 105, tau1, tau2), DeathStage::Active);
        assert_eq!(dc.stage(other, 105, tau1, tau2), DeathStage::Active);
        assert_eq!(dc.stage(retained, 130, tau1, tau2), DeathStage::Dormant);
        assert_eq!(dc.stage(other, 130, tau1, tau2), DeathStage::Expired);
        assert_eq!(dc.stage(retained, 200, tau1, tau2), DeathStage::Expired);
    }

    #[test]
    fn reactivation_resets_stage_but_not_supersession() {
        let mut dc = DeathCertificate::with_retention(ts(100), vec![SiteId::new(1)]);
        assert_eq!(dc.stage(SiteId::new(1), 130, 10, 50), DeathStage::Dormant);
        dc.reactivate(Timestamp::new(130, SiteId::new(1)));
        assert_eq!(dc.stage(SiteId::new(1), 130, 10, 50), DeathStage::Active);
        assert_eq!(dc.deleted_at(), ts(100));
    }

    #[test]
    fn fixed_threshold_discards_old_certificates_everywhere() {
        let dc = DeathCertificate::new(ts(100));
        let policy = GcPolicy::FixedThreshold { tau: 30 };
        assert!(!policy.discards(&dc, SiteId::new(0), 120));
        assert!(policy.discards(&dc, SiteId::new(0), 131));
    }

    #[test]
    fn keep_forever_never_discards() {
        let dc = DeathCertificate::new(ts(1));
        assert!(!GcPolicy::KeepForever.discards(&dc, SiteId::new(0), u64::MAX));
    }

    #[test]
    fn dormant_certificates_are_not_propagated() {
        let dc = DeathCertificate::with_retention(ts(100), vec![SiteId::new(1)]);
        let policy = GcPolicy::Dormant { tau1: 10, tau2: 50 };
        assert!(policy.propagates(&dc, SiteId::new(1), 105));
        assert!(!policy.propagates(&dc, SiteId::new(1), 130));
    }

    #[test]
    fn equal_space_law_matches_paper_example() {
        // §2.1: "increase the effective history from 30 days to several
        // years": τ=30, τ₁=15, n=300, r=4 → τ₂ = 15*300/4 = 1125 days.
        assert_eq!(GcPolicy::equal_space_tau2(30, 15, 300, 4), 1125);
    }

    #[test]
    #[should_panic(expected = "retention site")]
    fn equal_space_requires_retention_sites() {
        GcPolicy::equal_space_tau2(30, 15, 300, 0);
    }
}

#[cfg(test)]
mod reactivation_aging_tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t, SiteId::new(0))
    }

    #[test]
    fn reactivated_certificates_age_from_their_new_activation() {
        // A certificate awakened at t=500 must survive another full τ1
        // from that moment, then go dormant/expire again — the §2.2
        // lifecycle is driven entirely by the activation timestamp.
        let site = SiteId::new(1);
        let (tau1, tau2) = (100, 1_000);
        let mut dc = DeathCertificate::with_retention(ts(0), vec![site]);
        assert_eq!(dc.stage(site, 150, tau1, tau2), DeathStage::Dormant);
        dc.reactivate(Timestamp::new(500, SiteId::new(2)));
        assert_eq!(dc.stage(site, 550, tau1, tau2), DeathStage::Active);
        assert_eq!(dc.stage(site, 700, tau1, tau2), DeathStage::Dormant);
        assert_eq!(dc.stage(site, 1_700, tau1, tau2), DeathStage::Expired);
        // The supersession timestamp never moved.
        assert_eq!(dc.deleted_at(), ts(0));
    }

    #[test]
    fn non_retention_sites_drop_straight_to_expired() {
        let dc = DeathCertificate::with_retention(ts(0), vec![SiteId::new(1)]);
        let outsider = SiteId::new(9);
        assert_eq!(dc.stage(outsider, 50, 100, 1_000), DeathStage::Active);
        assert_eq!(dc.stage(outsider, 150, 100, 1_000), DeathStage::Expired);
    }

    #[test]
    fn retention_listing_is_exact() {
        let dc = DeathCertificate::with_retention(ts(1), vec![SiteId::new(3), SiteId::new(5)]);
        assert!(dc.retains_at(SiteId::new(3)));
        assert!(dc.retains_at(SiteId::new(5)));
        assert!(!dc.retains_at(SiteId::new(4)));
        assert_eq!(dc.retention_sites().len(), 2);
    }
}
