//! The flat struct-of-arrays storage backend for million-site simulations.
//!
//! [`FlatStore`] keeps the main store as one contiguous column of
//! `(key, entry)` rows sorted ascending by `(timestamp, key)` — precisely
//! the §1.3 peel-back order reversed. The recent-update list, the
//! timestamp index and peel-back iteration are all *derived* from the
//! column order by walking it backwards; nothing maintains a second tree.
//! Key lookup goes through a small position index (`by_key`, row positions
//! sorted by key) that only exists once the store holds two or more rows —
//! a single-row site, the common case in epidemic spreading experiments,
//! is just one heap block.
//!
//! Cost model versus [`BTreeBackend`](crate::storage::BTreeBackend):
//!
//! * a site's first entry costs **one** allocation (the row column,
//!   `reserve_exact(1)`) instead of two tree nodes — at 10⁶ sites this is
//!   the difference between one and two heap blocks per site, and the rows
//!   are contiguous where tree nodes pointer-chase;
//! * supersession of the newest entry (the steady-state epidemic path) is
//!   a pop-and-push at the column tail, no rebalancing;
//! * worst-case mutation is `O(n)` per site (a `Vec` shift) — the trade is
//!   deliberate: per-site databases in the megascale experiments hold a
//!   handful of entries, while site *count* is huge.
//!
//! The backend is observationally equivalent to the reference
//! implementation (same outcomes, same iteration orders, same checksum
//! toggles); the `flat_store_reference` differential suite pins this over
//! random update/delete/GC/exchange histories.

use std::cmp::Ordering;
use std::hash::Hash;

use crate::item::{ApplyOutcome, Entry};
use crate::storage::{Aux, Storage};
use crate::timestamp::Timestamp;

/// Flat timestamp-sorted main-store backend; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct FlatStore<K, V> {
    /// Rows ascending by `(timestamp, key)`; walking backwards yields the
    /// peel-back (newest-first) order.
    rows: Vec<(K, Entry<V>)>,
    /// Row positions sorted by key — the lookup index. Empty while the
    /// store holds fewer than two rows (a lone row needs no index).
    by_key: Vec<u32>,
}

impl<K, V> FlatStore<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Creates an empty store. Allocates nothing.
    pub fn new() -> Self {
        FlatStore {
            rows: Vec::new(),
            by_key: Vec::new(),
        }
    }

    /// Locates `key`: `Ok((rank, pos))` gives its rank in key order and
    /// its row position; `Err(rank)` gives the key-order insertion rank.
    fn lookup(&self, key: &K) -> Result<(usize, usize), usize> {
        if self.rows.len() < 2 {
            return match self.rows.first() {
                None => Err(0),
                Some((k, _)) => match k.cmp(key) {
                    Ordering::Equal => Ok((0, 0)),
                    Ordering::Less => Err(1),
                    Ordering::Greater => Err(0),
                },
            };
        }
        match self
            .by_key
            .binary_search_by(|&p| self.rows[p as usize].0.cmp(key))
        {
            Ok(rank) => Ok((rank, self.by_key[rank] as usize)),
            Err(rank) => Err(rank),
        }
    }

    /// Row position where an entry stamped `at` under `key` belongs. The
    /// common case — a fresh timestamp newer than everything held — is a
    /// single comparison against the column tail.
    fn row_position(&self, at: Timestamp, key: &K) -> usize {
        match self.rows.last() {
            Some((k, e)) if (e.timestamp(), k) < (at, key) => self.rows.len(),
            None => 0,
            _ => self
                .rows
                .partition_point(|(k, e)| (e.timestamp(), k) < (at, key)),
        }
    }

    /// Inserts a row at column position `pos` / key rank `rank`,
    /// maintaining the lookup index.
    fn insert_row(&mut self, rank: usize, pos: usize, key: K, entry: Entry<V>) {
        if self.rows.is_empty() {
            // One exact block for the ubiquitous single-entry site; the
            // allocator's doubling growth takes over beyond that.
            self.rows.reserve_exact(1);
        }
        self.rows.insert(pos, (key, entry));
        match self.rows.len() {
            1 => {}
            2 => self.rebuild_index(),
            _ => {
                let pos32 = u32::try_from(pos).expect("flat store holds at most u32::MAX rows");
                for p in &mut self.by_key {
                    if *p >= pos32 {
                        *p += 1;
                    }
                }
                self.by_key.insert(rank, pos32);
            }
        }
    }

    /// Removes the row at column position `pos` / key rank `rank`,
    /// maintaining the lookup index, and returns it.
    fn remove_row(&mut self, rank: usize, pos: usize) -> (K, Entry<V>) {
        let row = self.rows.remove(pos);
        if self.rows.len() < 2 {
            self.by_key.clear();
        } else {
            let pos32 = u32::try_from(pos).expect("flat store holds at most u32::MAX rows");
            self.by_key.remove(rank);
            for p in &mut self.by_key {
                if *p > pos32 {
                    *p -= 1;
                }
            }
        }
        row
    }

    /// Rebuilds the lookup index from the rows (used on the 1 → 2 row
    /// transition; the cleared index retains its capacity thereafter).
    fn rebuild_index(&mut self) {
        self.by_key.clear();
        let len = u32::try_from(self.rows.len()).expect("flat store holds at most u32::MAX rows");
        self.by_key.extend(0..len);
        let rows = &self.rows;
        self.by_key
            .sort_unstable_by(|&a, &b| rows[a as usize].0.cmp(&rows[b as usize].0));
    }

    /// Installs a key not currently present.
    fn insert_fresh(&mut self, rank: usize, key: K, entry: Entry<V>, aux: Aux<'_>) {
        aux.checksum.toggle(&(&key, &entry));
        if !entry.is_dead() {
            *aux.live += 1;
        }
        let pos = self.row_position(entry.timestamp(), &key);
        self.insert_row(rank, pos, key, entry);
    }

    /// Replaces the entry of the key at `(rank, pos)`, re-sorting the row
    /// to its new timestamp position. The key's rank is unchanged (no
    /// other key moves in key order), so the index round-trips exactly.
    fn replace(&mut self, rank: usize, pos: usize, new: Entry<V>, aux: Aux<'_>) {
        let (key, old) = self.remove_row(rank, pos);
        aux.checksum.toggle(&(&key, &old));
        if !old.is_dead() {
            *aux.live -= 1;
        }
        aux.checksum.toggle(&(&key, &new));
        if !new.is_dead() {
            *aux.live += 1;
        }
        let pos = self.row_position(new.timestamp(), &key);
        self.insert_row(rank, pos, key, new);
    }

    /// Iterates `(key, entry)` pairs in key order.
    pub fn iter(&self) -> KeyOrderIter<'_, K, V> {
        KeyOrderIter {
            rows: &self.rows,
            by_key: &self.by_key,
            idx: 0,
        }
    }

    /// Iterates entries in reverse `(timestamp, key)` order — the §1.3
    /// peel-back order, i.e. the column walked backwards.
    pub fn newest_first(&self) -> impl Iterator<Item = (&K, &Entry<V>)> {
        self.rows.iter().rev().map(|(k, e)| (k, e))
    }

    /// The derived timestamp index as bare `(timestamp, key)` pairs,
    /// newest first.
    pub fn timestamp_index(&self) -> impl Iterator<Item = (Timestamp, &K)> {
        self.rows.iter().rev().map(|(k, e)| (e.timestamp(), k))
    }

    /// Asserts the internal invariants (row order, index consistency).
    /// Exposed for the differential test suite.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        assert!(
            self.rows
                .windows(2)
                .all(|w| (w[0].1.timestamp(), &w[0].0) < (w[1].1.timestamp(), &w[1].0)),
            "rows must be strictly ascending by (timestamp, key)"
        );
        if self.rows.len() < 2 {
            assert!(self.by_key.is_empty(), "small stores carry no index");
        } else {
            assert_eq!(self.by_key.len(), self.rows.len(), "index covers all rows");
            assert!(
                self.by_key
                    .windows(2)
                    .all(|w| self.rows[w[0] as usize].0 < self.rows[w[1] as usize].0),
                "index must be strictly ascending by key"
            );
        }
    }
}

impl<K, V> Storage<K, V> for FlatStore<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn get(&self, key: &K) -> Option<&Entry<V>> {
        match self.lookup(key) {
            Ok((_, pos)) => Some(&self.rows[pos].1),
            Err(_) => None,
        }
    }

    fn apply(&mut self, key: K, entry: Entry<V>, aux: Aux<'_>) -> ApplyOutcome {
        match self.lookup(&key) {
            Ok((rank, pos)) => {
                let current = &self.rows[pos].1;
                if !entry.supersedes(current) {
                    return if current.timestamp() == entry.timestamp() {
                        ApplyOutcome::AlreadyKnown
                    } else {
                        ApplyOutcome::Obsolete
                    };
                }
                self.replace(rank, pos, entry, aux);
                ApplyOutcome::Applied
            }
            Err(rank) => {
                self.insert_fresh(rank, key, entry, aux);
                ApplyOutcome::Applied
            }
        }
    }

    fn apply_ref(&mut self, key: &K, entry: &Entry<V>, aux: Aux<'_>) -> ApplyOutcome
    where
        V: Clone,
    {
        match self.lookup(key) {
            Ok((rank, pos)) => {
                let current = &self.rows[pos].1;
                if !entry.supersedes(current) {
                    return if current.timestamp() == entry.timestamp() {
                        ApplyOutcome::AlreadyKnown
                    } else {
                        ApplyOutcome::Obsolete
                    };
                }
                self.replace(rank, pos, entry.clone(), aux);
                ApplyOutcome::Applied
            }
            Err(rank) => {
                self.insert_fresh(rank, key.clone(), entry.clone(), aux);
                ApplyOutcome::Applied
            }
        }
    }

    fn install(&mut self, key: K, entry: Entry<V>, aux: Aux<'_>) {
        match self.lookup(&key) {
            Ok((rank, pos)) => self.replace(rank, pos, entry, aux),
            Err(rank) => self.insert_fresh(rank, key, entry, aux),
        }
    }

    fn remove(&mut self, key: &K, aux: Aux<'_>) -> Option<Entry<V>> {
        let (rank, pos) = self.lookup(key).ok()?;
        let (k, old) = self.remove_row(rank, pos);
        aux.checksum.toggle(&(&k, &old));
        if !old.is_dead() {
            *aux.live -= 1;
        }
        Some(old)
    }
}

/// Key-order iterator over a [`FlatStore`]: follows the lookup index when
/// present, or the bare column when the store holds at most one row (whose
/// order is trivially the key order).
#[derive(Debug, Clone)]
pub struct KeyOrderIter<'a, K, V> {
    rows: &'a [(K, Entry<V>)],
    by_key: &'a [u32],
    idx: usize,
}

impl<'a, K, V> Iterator for KeyOrderIter<'a, K, V> {
    type Item = (&'a K, &'a Entry<V>);

    fn next(&mut self) -> Option<Self::Item> {
        let row = if self.by_key.is_empty() {
            self.rows.get(self.idx)?
        } else {
            &self.rows[*self.by_key.get(self.idx)? as usize]
        };
        self.idx += 1;
        Some((&row.0, &row.1))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.rows.len() - self.idx;
        (left, Some(left))
    }
}

impl<K, V> ExactSizeIterator for KeyOrderIter<'_, K, V> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checksum::Checksum;
    use crate::timestamp::SiteId;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t, SiteId::new(0))
    }

    /// Drives a store through scripted operations with live aux state.
    struct Harness {
        store: FlatStore<u32, u32>,
        checksum: Checksum,
        live: usize,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                store: FlatStore::new(),
                checksum: Checksum::new(),
                live: 0,
            }
        }

        fn remove(&mut self, key: u32) -> Option<Entry<u32>> {
            let aux = Aux {
                checksum: &mut self.checksum,
                live: &mut self.live,
            };
            let out = self.store.remove(&key, aux);
            self.store.check_invariants();
            out
        }

        fn apply(&mut self, key: u32, entry: Entry<u32>) -> ApplyOutcome {
            let aux = Aux {
                checksum: &mut self.checksum,
                live: &mut self.live,
            };
            let out = self.store.apply(key, entry, aux);
            self.store.check_invariants();
            out
        }
    }

    #[test]
    fn apply_respects_supersession() {
        let mut h = Harness::new();
        assert_eq!(h.apply(7, Entry::live(1, ts(1))), ApplyOutcome::Applied);
        assert_eq!(
            h.apply(7, Entry::live(1, ts(1))),
            ApplyOutcome::AlreadyKnown
        );
        assert_eq!(h.apply(7, Entry::live(2, ts(2))), ApplyOutcome::Applied);
        assert_eq!(h.apply(7, Entry::live(1, ts(1))), ApplyOutcome::Obsolete);
        assert_eq!(h.store.get(&7).unwrap().value(), Some(&2));
        assert_eq!(h.live, 1);
    }

    #[test]
    fn iteration_orders_agree_with_definitions() {
        let mut h = Harness::new();
        for (key, t) in [(30u32, 4), (10, 2), (20, 9), (40, 1)] {
            h.apply(key, Entry::live(key, ts(t)));
        }
        let key_order: Vec<u32> = h.store.iter().map(|(k, _)| *k).collect();
        assert_eq!(key_order, [10, 20, 30, 40]);
        let peel: Vec<u32> = h.store.newest_first().map(|(k, _)| *k).collect();
        assert_eq!(peel, [20, 30, 10, 40]);
        let index: Vec<u64> = h.store.timestamp_index().map(|(t, _)| t.time()).collect();
        assert_eq!(index, [9, 4, 2, 1]);
    }

    #[test]
    fn remove_keeps_index_consistent_through_size_transitions() {
        let mut h = Harness::new();
        for key in 0..5u32 {
            h.apply(key, Entry::live(key, ts(u64::from(key) + 1)));
        }
        for key in [2u32, 0, 4, 3, 1] {
            assert!(h.remove(key).is_some());
        }
        assert_eq!(h.store.len(), 0);
        assert_eq!(h.live, 0);
        assert_eq!(h.checksum, Checksum::new());
    }

    #[test]
    fn single_row_store_needs_no_index() {
        let mut h = Harness::new();
        h.apply(3, Entry::live(1, ts(1)));
        assert!(h.store.by_key.is_empty());
        assert_eq!(h.store.get(&3).unwrap().value(), Some(&1));
        assert_eq!(h.store.get(&4), None);
        // Supersede in place: still one row, still no index.
        h.apply(3, Entry::live(2, ts(5)));
        assert!(h.store.by_key.is_empty());
        assert_eq!(h.store.len(), 1);
    }

    #[test]
    fn out_of_order_timestamps_sort_into_the_column() {
        let mut h = Harness::new();
        h.apply(1, Entry::live(1, ts(100)));
        h.apply(2, Entry::live(2, ts(50))); // older arrives later
        h.apply(3, Entry::live(3, ts(75)));
        let order: Vec<u64> = h.store.timestamp_index().map(|(t, _)| t.time()).collect();
        assert_eq!(order, [100, 75, 50]);
    }
}
