//! Dense key interning for flat storage columns.
//!
//! [`FlatStore`](crate::FlatStore) columns are at their best when keys are
//! small `Copy` values: rows move during sorting, and comparisons sit on
//! the lookup path. A [`KeyInterner`] maps an application's rich keys
//! (strings, tuples, …) to dense `u32` ids exactly once, *shared across
//! every replica of a simulation*, so all sites agree on the id of a key
//! and databases can be keyed by the id instead of the key itself.
//!
//! Interning must be shared (or at least deterministic) because epidemic
//! checksums compare database *contents* across sites: two replicas
//! holding the same logical entries under different ids would checksum
//! differently. With one interner handing out ids in first-seen order —
//! drivers intern the key universe up front — ids are as comparable across
//! sites as the original keys were.
//!
//! # Example
//!
//! ```
//! use epidemic_db::{Backend, Database, KeyInterner, SimClock, SiteId};
//!
//! let mut interner = KeyInterner::new();
//! let alice = interner.intern(&"user:alice");
//! let bob = interner.intern(&"user:bob");
//! assert_eq!(interner.intern(&"user:alice"), alice); // stable
//!
//! let mut clock = SimClock::new(SiteId::new(0));
//! let mut db: Database<u32, &str> = Database::with_backend(Backend::Flat);
//! db.update(alice, "MV:PARC", &mut clock);
//! assert_eq!(db.get(&alice), Some(&"MV:PARC"));
//! assert_eq!(interner.resolve(bob), Some(&"user:bob"));
//! ```

use std::collections::BTreeMap;

/// Maps keys to dense `u32` ids in first-intern order; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct KeyInterner<K> {
    ids: BTreeMap<K, u32>,
    keys: Vec<K>,
}

impl<K: Ord + Clone> KeyInterner<K> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        KeyInterner {
            ids: BTreeMap::new(),
            keys: Vec::new(),
        }
    }

    /// The id for `key`, assigning the next dense id on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct keys are interned.
    pub fn intern(&mut self, key: &K) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = u32::try_from(self.keys.len()).expect("interner holds at most u32::MAX keys");
        self.ids.insert(key.clone(), id);
        self.keys.push(key.clone());
        id
    }

    /// The id previously assigned to `key`, if any. Borrow-only: never
    /// assigns.
    pub fn id(&self, key: &K) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// The key behind `id`, if assigned.
    pub fn resolve(&self, id: u32) -> Option<&K> {
        self.keys.get(id as usize)
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no key has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(id, key)` pairs in id (first-intern) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &K)> {
        self.keys.iter().enumerate().map(|(i, k)| (i as u32, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut interner = KeyInterner::new();
        let a = interner.intern(&"a");
        let b = interner.intern(&"b");
        let c = interner.intern(&"c");
        assert_eq!([a, b, c], [0, 1, 2]);
        assert_eq!(interner.intern(&"b"), b);
        assert_eq!(interner.len(), 3);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = KeyInterner::new();
        for key in ["x", "y", "z"] {
            let id = interner.intern(&key);
            assert_eq!(interner.resolve(id), Some(&key));
            assert_eq!(interner.id(&key), Some(id));
        }
        assert_eq!(interner.resolve(99), None);
        assert_eq!(interner.id(&"missing"), None);
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut interner = KeyInterner::new();
        for key in ["delta", "alpha", "charlie"] {
            interner.intern(&key);
        }
        let pairs: Vec<_> = interner.iter().collect();
        assert_eq!(pairs, [(0, &"delta"), (1, &"alpha"), (2, &"charlie")]);
    }
}
