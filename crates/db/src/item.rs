//! Database entries and the timestamp-supersession rule (paper §1.1).

use crate::death::DeathCertificate;
use crate::timestamp::Timestamp;

/// One versioned database entry: either a live value or a death certificate.
///
/// This is the pair `(v : V ∪ {NIL}) × (t : T)` of §1.1, with the `NIL` case
/// carrying the extra bookkeeping of §2 (activation timestamp, retention
/// sites) needed for dormant death certificates.
///
/// # Example
///
/// ```
/// use epidemic_db::{Entry, SiteId, Timestamp};
/// let live = Entry::live("v", Timestamp::new(3, SiteId::new(0)));
/// let dead = Entry::<&str>::dead(Timestamp::new(5, SiteId::new(1)));
/// assert!(dead.supersedes(&live));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Entry<V> {
    /// The key has the given value as of the given timestamp.
    Live {
        /// Current value.
        value: V,
        /// Timestamp of the update that wrote the value.
        at: Timestamp,
    },
    /// The key was deleted; the certificate carries the deletion timestamp.
    Dead(DeathCertificate),
}

impl<V> Entry<V> {
    /// Creates a live entry.
    pub fn live(value: V, at: Timestamp) -> Self {
        Entry::Live { value, at }
    }

    /// Creates a deleted entry (simple death certificate with no retention
    /// sites; see [`DeathCertificate::with_retention`] for dormant ones).
    pub fn dead(at: Timestamp) -> Self {
        Entry::Dead(DeathCertificate::new(at))
    }

    /// The entry's *ordinary* timestamp — the one supersession compares.
    ///
    /// For death certificates this is the deletion timestamp, not the
    /// activation timestamp (§2.2: "a death certificate still cancels a
    /// corresponding data item if its ordinary timestamp is greater").
    pub fn timestamp(&self) -> Timestamp {
        match self {
            Entry::Live { at, .. } => *at,
            Entry::Dead(dc) => dc.deleted_at(),
        }
    }

    /// The live value, if any.
    pub fn value(&self) -> Option<&V> {
        match self {
            Entry::Live { value, .. } => Some(value),
            Entry::Dead(_) => None,
        }
    }

    /// Whether the entry is a death certificate.
    pub fn is_dead(&self) -> bool {
        matches!(self, Entry::Dead(_))
    }

    /// The death certificate, if this entry is one.
    pub fn death_certificate(&self) -> Option<&DeathCertificate> {
        match self {
            Entry::Dead(dc) => Some(dc),
            Entry::Live { .. } => None,
        }
    }

    /// Whether this entry supersedes `other` under the §1.1 rule: a strictly
    /// larger ordinary timestamp always wins. Equal timestamps denote the
    /// same update (timestamps are globally unique), so neither supersedes.
    pub fn supersedes(&self, other: &Entry<V>) -> bool {
        self.timestamp() > other.timestamp()
    }
}

/// Outcome of offering a received entry to a replica
/// ([`Database::apply`](crate::Database::apply)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApplyOutcome {
    /// The received entry was newer and was installed.
    Applied,
    /// The replica already held this exact version. This is the "unnecessary
    /// contact" feedback signal that drives rumor-mongering counters (§1.4).
    AlreadyKnown,
    /// The replica held a strictly newer version; the received entry was
    /// discarded. The *sender* is the out-of-date party.
    Obsolete,
}

impl ApplyOutcome {
    /// True if the receiving replica needed the entry.
    pub fn was_useful(self) -> bool {
        matches!(self, ApplyOutcome::Applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::SiteId;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t, SiteId::new(0))
    }

    #[test]
    fn newer_live_supersedes_older_live() {
        let old = Entry::live(1, ts(1));
        let new = Entry::live(2, ts(2));
        assert!(new.supersedes(&old));
        assert!(!old.supersedes(&new));
    }

    #[test]
    fn equal_timestamps_do_not_supersede() {
        let a = Entry::live(1, ts(1));
        let b = Entry::live(1, ts(1));
        assert!(!a.supersedes(&b));
        assert!(!b.supersedes(&a));
    }

    #[test]
    fn death_certificate_supersedes_older_value() {
        let live = Entry::live("x", ts(1));
        let dead = Entry::<&str>::dead(ts(2));
        assert!(dead.supersedes(&live));
        assert!(dead.is_dead());
        assert_eq!(dead.value(), None);
    }

    #[test]
    fn newer_value_supersedes_death_certificate() {
        // Reinstating a deleted item (§2.2) must be possible.
        let dead = Entry::<&str>::dead(ts(5));
        let reinstated = Entry::live("back", ts(6));
        assert!(reinstated.supersedes(&dead));
    }

    #[test]
    fn ordinary_timestamp_of_dead_entry_is_deletion_time() {
        let dead = Entry::<u32>::dead(ts(9));
        assert_eq!(dead.timestamp(), ts(9));
        assert!(dead.death_certificate().is_some());
    }

    #[test]
    fn apply_outcome_usefulness() {
        assert!(ApplyOutcome::Applied.was_useful());
        assert!(!ApplyOutcome::AlreadyKnown.was_useful());
        assert!(!ApplyOutcome::Obsolete.was_useful());
    }
}
