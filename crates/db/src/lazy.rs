//! Lazily materialized site rows: storage that grows with *receipts*,
//! not with the fleet.
//!
//! Every other container in this crate is built per site, up front — a
//! [`Database`](crate::Database) (or a whole `Replica`) for each of `n`
//! sites, before the first update flows. At CIN scale that is free; at
//! the megascale sweep's 10⁶–10⁷ sites it is the dominant cost of the
//! whole experiment, paid mostly for sites that are *susceptible*: they
//! hold no data yet, and a single-update epidemic touches each of them
//! at most once.
//!
//! [`LazyTable`] inverts the construction: a site gets **no row at all
//! until its first write**. Rows are appended in write order into three
//! parallel columns (site, value, write cycle) — the same
//! struct-of-arrays discipline as the flat backend
//! ([`crate::flat::FlatStore`]), but shared by the entire fleet instead
//! of instantiated per replica. Startup cost and resident footprint are
//! both proportional to the number of sites that actually received
//! something.
//!
//! The table is deliberately minimal: one (implicit) key, first write
//! wins, no deletions — exactly the shape of a single-update epidemic,
//! where a receipt is immutable history. Callers that need "has this
//! site a row?" in O(1) keep a bitset alongside (the megascale fast
//! path's `has_entry`); the table itself never scans.

/// An append-only, first-write-wins columnar table of per-site rows.
///
/// `V` is the replicated value type. Row order is write order, which for
/// deterministic callers makes the whole table a pure function of the
/// run — the differential suites compare tables across engines
/// byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LazyTable<V> {
    n: usize,
    sites: Vec<u32>,
    values: Vec<V>,
    cycles: Vec<u32>,
}

impl<V> LazyTable<V> {
    /// An empty table over a fleet of `n` sites. Allocates nothing
    /// per-site: capacity grows only as rows are pushed.
    pub fn new(n: usize) -> Self {
        LazyTable {
            n,
            sites: Vec::new(),
            values: Vec::new(),
            cycles: Vec::new(),
        }
    }

    /// Materializes `site`'s row: its first (and only) write of `value`
    /// at `cycle`.
    ///
    /// The caller guarantees first-write — the megascale protocol gates
    /// on its `has_entry` bitset. Debug builds verify it.
    pub fn push(&mut self, site: u32, value: V, cycle: u32) {
        debug_assert!((site as usize) < self.n, "site {site} out of range");
        debug_assert!(
            !self.sites.contains(&site),
            "site {site} already materialized"
        );
        self.sites.push(site);
        self.values.push(value);
        self.cycles.push(cycle);
    }

    /// Number of sites in the fleet (materialized or not).
    pub fn site_count(&self) -> usize {
        self.n
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site has materialized a row yet.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Site ids, in write order.
    pub fn sites(&self) -> &[u32] {
        &self.sites
    }

    /// Values, in write order (parallel to [`LazyTable::sites`]).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Write cycles, in write order (parallel to [`LazyTable::sites`]).
    pub fn cycles(&self) -> &[u32] {
        &self.cycles
    }

    /// Rows as `(site, value, cycle)`, in write order.
    pub fn rows(&self) -> impl Iterator<Item = (u32, &V, u32)> + '_ {
        self.sites
            .iter()
            .zip(self.values.iter())
            .zip(self.cycles.iter())
            .map(|((&s, v), &c)| (s, v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_materialize_in_write_order_only() {
        let mut table: LazyTable<u32> = LazyTable::new(100);
        assert!(table.is_empty());
        assert_eq!(table.site_count(), 100);
        table.push(7, 70, 1);
        table.push(3, 30, 2);
        table.push(99, 990, 2);
        assert_eq!(table.len(), 3);
        assert_eq!(
            table.rows().collect::<Vec<_>>(),
            vec![(7, &70, 1), (3, &30, 2), (99, &990, 2)]
        );
        assert_eq!(table.sites(), &[7, 3, 99]);
        assert_eq!(table.cycles(), &[1, 2, 2]);
    }

    #[test]
    fn identical_histories_produce_identical_tables() {
        let build = || {
            let mut t: LazyTable<u8> = LazyTable::new(10);
            t.push(0, 1, 0);
            t.push(4, 1, 3);
            t
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already materialized")]
    fn double_write_is_a_bug() {
        let mut table: LazyTable<u32> = LazyTable::new(10);
        table.push(1, 1, 0);
        table.push(1, 2, 1);
    }
}
