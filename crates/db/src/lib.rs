//! Replicated-database substrate for the epidemic update-propagation
//! protocols of Demers et al., *Epidemic Algorithms for Replicated Database
//! Maintenance* (PODC 1987).
//!
//! A replica stores a partial map `K -> (v: Option<V>, t: Timestamp)` where a
//! `None` value is a *death certificate*: the key was deleted as of time `t`
//! (paper §1.1, §2). A pair with a larger timestamp always supersedes one
//! with a smaller timestamp, which makes replicas a join semilattice — the
//! foundation the epidemic protocols rely on.
//!
//! The crate provides everything the paper's protocols need from the storage
//! layer:
//!
//! * [`Timestamp`]s that are globally unique and totally ordered
//!   ([`timestamp`]),
//! * the versioned store itself ([`Database`]),
//! * incremental database [`checksum`]s (§1.3),
//! * recent-update lists with a window `τ` ([`recent`], §1.3),
//! * a *peel-back* inverted index by timestamp ([`peelback`], §1.3, §1.5),
//! * dormant death certificates with activation timestamps ([`death`], §2),
//! * lazily materialized site rows — no storage until a site's first
//!   receipt — for fleet sizes where eager construction dominates
//!   ([`lazy`]).
//!
//! # Example
//!
//! ```
//! use epidemic_db::{Database, SimClock, SiteId};
//!
//! let site = SiteId::new(0);
//! let mut clock = SimClock::new(site);
//! let mut db: Database<&str, &str> = Database::new();
//!
//! db.update("ship", "Argo", &mut clock);
//! assert_eq!(db.get(&"ship"), Some(&"Argo"));
//!
//! db.delete(&"ship", &mut clock);
//! assert_eq!(db.get(&"ship"), None); // death certificate, not absence
//! assert!(db.entry(&"ship").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod death;
pub mod flat;
pub mod interner;
pub mod item;
pub mod lazy;
pub mod peelback;
pub mod recent;
pub mod storage;
pub mod store;
pub mod timestamp;

pub use checksum::Checksum;
pub use death::{DeathCertificate, GcPolicy, GcStats};
pub use flat::FlatStore;
pub use interner::KeyInterner;
pub use item::{ApplyOutcome, Entry};
pub use lazy::LazyTable;
pub use peelback::PeelBackIndex;
pub use recent::RecentUpdates;
pub use storage::{Aux, BTreeBackend, Backend, Storage, BACKEND_ENV_VAR};
pub use store::{Database, OfferOutcome};
pub use timestamp::{Clock, SimClock, SiteId, SkewedClock, Timestamp};
