//! Inverted index of database entries by timestamp (paper §1.3).
//!
//! *Peel back* anti-entropy exchanges updates "in reverse timestamp order,
//! incrementally recomputing checksums, until agreement of the checksums is
//! achieved". That requires each site to "maintain an inverted index of its
//! database by timestamp"; this module is that index.
//!
//! Timestamps are globally unique when produced by a well-behaved
//! [`Clock`](crate::Clock), but the index does not *rely* on that: entries
//! are keyed by `(timestamp, key)`, so a misbehaving client that reuses a
//! timestamp for two keys degrades ordering ties gracefully instead of
//! corrupting the index.

use std::collections::BTreeSet;

use crate::timestamp::Timestamp;

/// An inverted index from timestamp to key, iterable newest-first.
///
/// # Example
///
/// ```
/// use epidemic_db::{PeelBackIndex, SiteId, Timestamp};
/// let ts = |t| Timestamp::new(t, SiteId::new(0));
/// let mut idx = PeelBackIndex::new();
/// idx.insert(ts(3), "c");
/// idx.insert(ts(1), "a");
/// idx.insert(ts(2), "b");
/// let keys: Vec<_> = idx.newest_first().map(|(_, k)| *k).collect();
/// assert_eq!(keys, ["c", "b", "a"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PeelBackIndex<K> {
    by_time: BTreeSet<(Timestamp, K)>,
}

impl<K: Ord + Clone> PeelBackIndex<K> {
    /// Creates an empty index.
    pub fn new() -> Self {
        PeelBackIndex {
            by_time: BTreeSet::new(),
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.by_time.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.by_time.is_empty()
    }

    /// Records that `key`'s current entry carries timestamp `at`.
    ///
    /// Returns `false` if this exact `(timestamp, key)` pair was already
    /// present.
    pub fn insert(&mut self, at: Timestamp, key: K) -> bool {
        self.by_time.insert((at, key))
    }

    /// Removes the record `(at, key)`, returning whether it was present.
    pub fn remove(&mut self, at: Timestamp, key: &K) -> bool {
        self.by_time.remove(&(at, key.clone()))
    }

    /// Iterates `(timestamp, key)` pairs newest-first — the peel-back order.
    pub fn newest_first(&self) -> impl Iterator<Item = (Timestamp, &K)> {
        self.by_time.iter().rev().map(|(t, k)| (*t, k))
    }

    /// Iterates `(timestamp, key)` pairs oldest-first.
    pub fn oldest_first(&self) -> impl Iterator<Item = (Timestamp, &K)> {
        self.by_time.iter().map(|(t, k)| (*t, k))
    }

    /// Iterates pairs with timestamps strictly newer than `after`,
    /// newest-first.
    pub fn newer_than(&self, after: Timestamp) -> impl Iterator<Item = (Timestamp, &K)> {
        self.by_time
            .iter()
            .rev()
            .take_while(move |(t, _)| *t > after)
            .map(|(t, k)| (*t, k))
    }

    /// The newest timestamp in the index, if any.
    pub fn newest(&self) -> Option<Timestamp> {
        self.by_time.iter().next_back().map(|(t, _)| *t)
    }

    /// The oldest timestamp in the index, if any.
    pub fn oldest(&self) -> Option<Timestamp> {
        self.by_time.iter().next().map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::SiteId;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t, SiteId::new(0))
    }

    #[test]
    fn newest_first_order() {
        let mut idx = PeelBackIndex::new();
        for t in [5, 1, 9, 3] {
            idx.insert(ts(t), t);
        }
        let order: Vec<_> = idx.newest_first().map(|(_, k)| *k).collect();
        assert_eq!(order, [9, 5, 3, 1]);
        assert_eq!(idx.newest(), Some(ts(9)));
        assert_eq!(idx.oldest(), Some(ts(1)));
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut idx = PeelBackIndex::new();
        idx.insert(ts(1), "a");
        idx.insert(ts(2), "b");
        assert!(idx.remove(ts(1), &"a"));
        assert_eq!(idx.len(), 1);
        assert!(!idx.remove(ts(1), &"a"));
    }

    #[test]
    fn duplicate_timestamps_across_keys_are_tolerated() {
        let mut idx = PeelBackIndex::new();
        assert!(idx.insert(ts(1), "a"));
        assert!(idx.insert(ts(1), "b"));
        assert_eq!(idx.len(), 2);
        assert!(idx.remove(ts(1), &"a"));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn newer_than_is_exclusive() {
        let mut idx = PeelBackIndex::new();
        for t in 1..=5 {
            idx.insert(ts(t), t);
        }
        let newer: Vec<_> = idx.newer_than(ts(3)).map(|(_, k)| *k).collect();
        assert_eq!(newer, [5, 4]);
        assert!(idx.newer_than(ts(5)).next().is_none());
    }

    #[test]
    fn empty_index() {
        let idx: PeelBackIndex<u32> = PeelBackIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.newest(), None);
        assert_eq!(idx.oldest(), None);
    }
}
