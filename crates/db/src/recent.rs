//! Recent-update lists (paper §1.3).
//!
//! The checksum-based anti-entropy refinement keeps, besides the checksum, a
//! "*recent update list*: a list of all entries in its database whose ages
//! (measured by the difference between their timestamp values and the site's
//! local clock) are less than τ". Two sites exchange these lists first, so a
//! freshly made update known to one side does not spoil the checksum
//! comparison.

use crate::item::Entry;
use crate::timestamp::Timestamp;

/// A snapshot of all entries younger than a window `τ`, newest first.
///
/// Produced by [`Database::recent_updates`](crate::Database::recent_updates).
///
/// # Example
///
/// ```
/// use epidemic_db::{Database, SimClock, SiteId, Clock};
/// let mut clock = SimClock::new(SiteId::new(0));
/// let mut db = Database::new();
/// db.update("old", 1, &mut clock);
/// clock.advance_to(100);
/// db.update("new", 2, &mut clock);
/// let recent = db.recent_updates(clock.peek(), 10);
/// assert_eq!(recent.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecentUpdates<K, V> {
    window: u64,
    items: Vec<(K, Entry<V>)>,
}

impl<K: Clone, V: Clone> RecentUpdates<K, V> {
    /// Collects the entries younger than `tau` from a newest-first entry
    /// iterator (so collection stops at the first too-old entry).
    pub fn collect<'a, I>(newest_first: I, now: u64, tau: u64) -> Self
    where
        I: Iterator<Item = (&'a K, &'a Entry<V>)>,
        K: 'a,
        V: 'a,
    {
        let items = newest_first
            .take_while(|(_, e)| e.timestamp().age(now) <= tau)
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        RecentUpdates { window: tau, items }
    }

    /// The window `τ` the list was collected with.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of entries in the list.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(key, entry)` pairs newest-first.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &Entry<V>)> {
        self.items.iter().map(|(k, e)| (k, e))
    }

    /// The oldest timestamp included, if any.
    pub fn oldest(&self) -> Option<Timestamp> {
        self.items.last().map(|(_, e)| e.timestamp())
    }

    /// Consumes the list, yielding owned `(key, entry)` pairs newest-first.
    pub fn into_items(self) -> Vec<(K, Entry<V>)> {
        self.items
    }
}

impl<K: Clone, V: Clone> IntoIterator for RecentUpdates<K, V> {
    type Item = (K, Entry<V>);
    type IntoIter = std::vec::IntoIter<(K, Entry<V>)>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::SiteId;

    fn entry(t: u64) -> Entry<u32> {
        Entry::live(0, Timestamp::new(t, SiteId::new(0)))
    }

    #[test]
    fn collect_stops_at_window_boundary() {
        let entries = [("c", entry(100)), ("b", entry(95)), ("a", entry(50))];
        let refs: Vec<(&&str, &Entry<u32>)> = entries.iter().map(|(k, e)| (k, e)).collect();
        let list = RecentUpdates::collect(refs.into_iter(), 100, 10);
        assert_eq!(list.len(), 2);
        assert_eq!(list.oldest(), Some(Timestamp::new(95, SiteId::new(0))));
        assert_eq!(list.window(), 10);
    }

    #[test]
    fn boundary_age_is_inclusive() {
        let entries = [("a", entry(90))];
        let refs: Vec<(&&str, &Entry<u32>)> = entries.iter().map(|(k, e)| (k, e)).collect();
        let list = RecentUpdates::collect(refs.into_iter(), 100, 10);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn empty_list() {
        let list: RecentUpdates<&str, u32> = RecentUpdates::collect(std::iter::empty(), 100, 10);
        assert!(list.is_empty());
        assert_eq!(list.oldest(), None);
        assert_eq!(list.into_items(), Vec::new());
    }
}
