//! The storage seam behind [`Database`](crate::Database): a [`Storage`]
//! trait with the classic B-tree backend as reference implementation.
//!
//! [`Database`](crate::Database) owns the protocol-visible invariants — the
//! incremental [`Checksum`], the live-entry count and the dormant
//! death-certificate side store — and delegates the main-store layout to a
//! backend. Two backends ship:
//!
//! * [`BTreeBackend`] — `BTreeMap<K, Entry<V>>` plus a
//!   [`PeelBackIndex`], the historical layout. Fast
//!   for rich keys and large per-site databases; every entry is a tree
//!   node.
//! * [`FlatStore`](crate::FlatStore) — a single flat column of rows sorted
//!   by `(timestamp, key)`, with the peel-back/recent order *derived* from
//!   the column order instead of maintained in a second tree. One heap
//!   block per site at the million-site scale the `fig-megascale`
//!   experiment sweeps.
//!
//! Both backends are observationally equivalent: every operation returns
//! the same outcome, every iterator yields the same sequence, and the
//! incrementally maintained checksum agrees toggle-for-toggle (pinned by
//! the `flat_store_reference` differential suite). The backend choice can
//! therefore never change simulation output, only its speed and footprint.
//!
//! Mutating operations receive an [`Aux`] view of the checksum and live
//! count so each backend updates them inline, exactly where the historical
//! single-probe code did — the seam adds no extra tree walks.

use std::collections::BTreeMap;
use std::hash::Hash;
use std::sync::OnceLock;

use crate::checksum::Checksum;
use crate::item::{ApplyOutcome, Entry};
use crate::peelback::PeelBackIndex;
use crate::timestamp::Timestamp;

/// Environment variable selecting the default [`Backend`]
/// (`btree` or `flat`); unset or empty means [`Backend::BTree`].
pub const BACKEND_ENV_VAR: &str = "EPIDEMIC_BACKEND";

/// Which main-store layout a [`Database`](crate::Database) uses.
///
/// The default is [`Backend::BTree`], the reference implementation. Every
/// constructor that does not take an explicit backend consults
/// [`Backend::from_env`], so `EPIDEMIC_BACKEND=flat` flips an entire
/// simulation run onto the flat layout without touching driver code — and
/// because the backends are observationally equivalent, the run's output
/// stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// `BTreeMap` entries plus a peel-back tree (the historical layout).
    #[default]
    BTree,
    /// Flat timestamp-sorted columns ([`FlatStore`](crate::FlatStore)).
    Flat,
}

impl Backend {
    /// Parses a backend name as accepted by [`BACKEND_ENV_VAR`]:
    /// `btree`, `flat`, or the empty string (the default backend).
    /// Case-insensitive; returns `None` for anything else.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "" | "btree" => Some(Backend::BTree),
            "flat" => Some(Backend::Flat),
            _ => None,
        }
    }

    /// The backend selected by [`BACKEND_ENV_VAR`], defaulting to
    /// [`Backend::BTree`]. Read once and cached for the process lifetime,
    /// so constructing a million replicas costs a million loads, not a
    /// million environment probes.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an unknown name — a silently
    /// ignored typo would invalidate a benchmark comparison.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<Backend> = OnceLock::new();
        *CACHE.get_or_init(|| match std::env::var(BACKEND_ENV_VAR) {
            Ok(value) => Backend::parse(&value).unwrap_or_else(|| {
                panic!("{BACKEND_ENV_VAR} must be \"btree\" or \"flat\", got {value:?}")
            }),
            Err(_) => Backend::BTree,
        })
    }
}

/// Mutable views of the [`Database`](crate::Database)-owned invariants a
/// backend maintains inline while mutating the main store.
///
/// Threading these into each call (rather than having backends own them)
/// keeps checksum/live bookkeeping in the exact spots the historical
/// single-probe code touched them, so no backend pays a second lookup to
/// keep the auxiliary state consistent.
#[derive(Debug)]
pub struct Aux<'a> {
    /// The order-independent checksum over all `(key, entry)` pairs (§1.3).
    pub checksum: &'a mut Checksum,
    /// Number of live (non-death-certificate) entries.
    pub live: &'a mut usize,
}

/// The operations a main-store layout must provide to back a
/// [`Database`](crate::Database).
///
/// Iteration (key order, peel-back order, timestamp index) is exposed as
/// inherent methods on each backend rather than trait items: the database
/// dispatches over a closed backend enum, and concrete iterator types keep
/// the hot walks monomorphic.
pub trait Storage<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Number of stored entries (live values plus death certificates).
    fn len(&self) -> usize;

    /// Whether the store holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry for `key`, if present.
    fn get(&self, key: &K) -> Option<&Entry<V>>;

    /// Merges an owned entry under the §1.1 supersession rule.
    fn apply(&mut self, key: K, entry: Entry<V>, aux: Aux<'_>) -> ApplyOutcome;

    /// [`Storage::apply`] from borrowed data: clones the entry (and key)
    /// only when the offer actually supersedes.
    fn apply_ref(&mut self, key: &K, entry: &Entry<V>, aux: Aux<'_>) -> ApplyOutcome
    where
        V: Clone;

    /// Installs an entry unconditionally (client updates and deletions).
    fn install(&mut self, key: K, entry: Entry<V>, aux: Aux<'_>);

    /// Removes an entry outright (garbage collection), returning it.
    fn remove(&mut self, key: &K, aux: Aux<'_>) -> Option<Entry<V>>;
}

/// The reference backend: `BTreeMap` entries plus a [`PeelBackIndex`],
/// exactly the layout the database used before the storage seam existed.
#[derive(Debug, Clone, Default)]
pub struct BTreeBackend<K, V> {
    entries: BTreeMap<K, Entry<V>>,
    peel: PeelBackIndex<K>,
}

impl<K, V> BTreeBackend<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Creates an empty backend.
    pub fn new() -> Self {
        BTreeBackend {
            entries: BTreeMap::new(),
            peel: PeelBackIndex::new(),
        }
    }

    /// Overwrites an occupied slot in place, maintaining checksum,
    /// peel-back index and live count. The caller has already decided the
    /// replacement (supersession or unconditional install); keeping the
    /// slot borrowed avoids a second tree walk to re-locate the key.
    fn replace_slot(
        slot: &mut Entry<V>,
        key: &K,
        new: Entry<V>,
        peel: &mut PeelBackIndex<K>,
        aux: Aux<'_>,
    ) {
        aux.checksum.toggle(&(key, &*slot));
        peel.remove(slot.timestamp(), key);
        if !slot.is_dead() {
            *aux.live -= 1;
        }
        *slot = new;
        aux.checksum.toggle(&(key, &*slot));
        peel.insert(slot.timestamp(), key.clone());
        if !slot.is_dead() {
            *aux.live += 1;
        }
    }

    /// Iterates `(key, entry)` pairs in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, Entry<V>> {
        self.entries.iter()
    }

    /// Iterates entries in reverse `(timestamp, key)` order — the §1.3
    /// peel-back order, straight off the inverted index.
    pub fn newest_first(&self) -> impl Iterator<Item = (&K, &Entry<V>)> {
        self.peel.newest_first().map(move |(_, k)| {
            let entry = self.entries.get(k).expect("peel index is consistent");
            (k, entry)
        })
    }

    /// The inverted timestamp index as bare `(timestamp, key)` pairs,
    /// newest first.
    pub fn timestamp_index(&self) -> impl Iterator<Item = (Timestamp, &K)> {
        self.peel.newest_first()
    }
}

impl<K, V> Storage<K, V> for BTreeBackend<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, key: &K) -> Option<&Entry<V>> {
        self.entries.get(key)
    }

    fn apply(&mut self, key: K, entry: Entry<V>, aux: Aux<'_>) -> ApplyOutcome {
        match self.entries.get_mut(&key) {
            Some(current) => {
                if !entry.supersedes(current) {
                    return if current.timestamp() == entry.timestamp() {
                        ApplyOutcome::AlreadyKnown
                    } else {
                        ApplyOutcome::Obsolete
                    };
                }
                Self::replace_slot(current, &key, entry, &mut self.peel, aux);
                ApplyOutcome::Applied
            }
            None => {
                aux.checksum.toggle(&(&key, &entry));
                self.peel.insert(entry.timestamp(), key.clone());
                if !entry.is_dead() {
                    *aux.live += 1;
                }
                self.entries.insert(key, entry);
                ApplyOutcome::Applied
            }
        }
    }

    fn apply_ref(&mut self, key: &K, entry: &Entry<V>, aux: Aux<'_>) -> ApplyOutcome
    where
        V: Clone,
    {
        match self.entries.get_mut(key) {
            Some(current) => {
                if !entry.supersedes(current) {
                    return if current.timestamp() == entry.timestamp() {
                        ApplyOutcome::AlreadyKnown
                    } else {
                        ApplyOutcome::Obsolete
                    };
                }
                Self::replace_slot(current, key, entry.clone(), &mut self.peel, aux);
                ApplyOutcome::Applied
            }
            None => {
                aux.checksum.toggle(&(key, entry));
                self.peel.insert(entry.timestamp(), key.clone());
                if !entry.is_dead() {
                    *aux.live += 1;
                }
                self.entries.insert(key.clone(), entry.clone());
                ApplyOutcome::Applied
            }
        }
    }

    fn install(&mut self, key: K, entry: Entry<V>, aux: Aux<'_>) {
        match self.entries.get_mut(&key) {
            Some(current) => Self::replace_slot(current, &key, entry, &mut self.peel, aux),
            None => {
                aux.checksum.toggle(&(&key, &entry));
                self.peel.insert(entry.timestamp(), key.clone());
                if !entry.is_dead() {
                    *aux.live += 1;
                }
                self.entries.insert(key, entry);
            }
        }
    }

    fn remove(&mut self, key: &K, aux: Aux<'_>) -> Option<Entry<V>> {
        let entry = self.entries.remove(key)?;
        aux.checksum.toggle(&(key, &entry));
        self.peel.remove(entry.timestamp(), key);
        if !entry.is_dead() {
            *aux.live -= 1;
        }
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_accepts_known_names() {
        assert_eq!(Backend::parse("btree"), Some(Backend::BTree));
        assert_eq!(Backend::parse("FLAT"), Some(Backend::Flat));
        assert_eq!(Backend::parse("  flat "), Some(Backend::Flat));
        assert_eq!(Backend::parse(""), Some(Backend::BTree));
        assert_eq!(Backend::parse("arena"), None);
    }

    #[test]
    fn default_backend_is_btree() {
        assert_eq!(Backend::default(), Backend::BTree);
    }
}
