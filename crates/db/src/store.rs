//! The versioned replica store (paper §1.1).

use std::collections::BTreeMap;
use std::hash::Hash;

use crate::checksum::Checksum;
use crate::death::{DeathCertificate, DeathStage, GcPolicy, GcStats};
use crate::flat::{self, FlatStore};
use crate::item::{ApplyOutcome, Entry};
use crate::recent::RecentUpdates;
use crate::storage::{Aux, BTreeBackend, Backend, Storage};
use crate::timestamp::{Clock, SiteId, Timestamp};

/// One replica of the database: the time-varying partial function
/// `ValueOf : K → (v ∪ NIL, t)` of §1.1.
///
/// The replica maintains three auxiliary structures the paper's protocols
/// need, all kept consistent incrementally:
///
/// * an order-independent [`Checksum`] of all entries (§1.3),
/// * an inverted timestamp (peel-back) order over the entries (§1.3) —
///   maintained as an index or derived from the storage layout, depending
///   on the backend,
/// * a side store of *dormant* death certificates (§2.1) that are held but
///   neither counted in the checksum nor propagated.
///
/// The main store itself lives behind a [`Backend`]: the reference
/// `BTreeMap` layout or the flat column layout of
/// [`FlatStore`] (see [`crate::storage`]). Backends are observationally
/// equivalent; [`Database::new`] picks the one selected by the
/// `EPIDEMIC_BACKEND` environment variable.
///
/// # Example
///
/// ```
/// use epidemic_db::{Database, SimClock, SiteId};
///
/// let mut clock = SimClock::new(SiteId::new(0));
/// let mut db = Database::new();
/// db.update("user:alice", "MV:PARC", &mut clock);
/// db.update("user:bob", "MV:SDD", &mut clock);
/// assert_eq!(db.live_len(), 2);
///
/// db.delete(&"user:bob", &mut clock);
/// assert_eq!(db.live_len(), 1);
/// assert_eq!(db.len(), 2); // the death certificate still occupies space
/// ```
#[derive(Debug, Clone)]
pub struct Database<K, V> {
    store: Store<K, V>,
    dormant: BTreeMap<K, DeathCertificate>,
    checksum: Checksum,
    live: usize,
}

/// The closed set of main-store backends. Enum dispatch (rather than a
/// boxed trait object) keeps every hot-path operation monomorphic and
/// branch-predictable: one discriminant test, then straight-line backend
/// code.
#[derive(Debug, Clone)]
enum Store<K, V> {
    BTree(BTreeBackend<K, V>),
    Flat(FlatStore<K, V>),
}

/// Dispatches a read-only storage operation over the backend enum.
macro_rules! with_store {
    ($db:expr, $s:ident => $e:expr) => {
        match &$db.store {
            Store::BTree($s) => $e,
            Store::Flat($s) => $e,
        }
    };
}

/// Dispatches a mutating storage operation, handing the backend an [`Aux`]
/// view of the checksum and live count.
macro_rules! with_store_aux {
    ($db:expr, $s:ident, $aux:ident => $e:expr) => {{
        let Database {
            store,
            checksum,
            live,
            ..
        } = $db;
        match store {
            Store::BTree($s) => {
                let $aux = Aux { checksum, live };
                $e
            }
            Store::Flat($s) => {
                let $aux = Aux { checksum, live };
                $e
            }
        }
    }};
}

/// Outcome of [`Database::offer`], which adds dormant-death-certificate
/// handling (§2.2–2.3) on top of the plain [`ApplyOutcome`] merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OfferOutcome {
    /// The entry was newer and was installed.
    Applied,
    /// The replica already held this exact version.
    AlreadyKnown,
    /// The replica held a strictly newer version.
    Obsolete,
    /// The entry was an obsolete copy of an item with a *dormant* death
    /// certificate here; the certificate was awakened (its activation
    /// timestamp set to now) and reinstalled for propagation. The caller
    /// should treat the certificate as a new hot rumor (§2.3).
    AwakenedDormant,
}

impl OfferOutcome {
    /// True if the receiving replica needed the offered entry.
    pub fn was_useful(self) -> bool {
        matches!(self, OfferOutcome::Applied)
    }
}

impl From<ApplyOutcome> for OfferOutcome {
    fn from(outcome: ApplyOutcome) -> Self {
        match outcome {
            ApplyOutcome::Applied => OfferOutcome::Applied,
            ApplyOutcome::AlreadyKnown => OfferOutcome::AlreadyKnown,
            ApplyOutcome::Obsolete => OfferOutcome::Obsolete,
        }
    }
}

impl<K, V> Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Creates an empty replica on the backend selected by the
    /// `EPIDEMIC_BACKEND` environment variable ([`Backend::from_env`]);
    /// the default is the reference B-tree layout.
    pub fn new() -> Self {
        Database::with_backend(Backend::from_env())
    }

    /// Creates an empty replica on an explicit storage backend,
    /// independent of the environment — e.g. for side-by-side backend
    /// comparisons in one process.
    pub fn with_backend(backend: Backend) -> Self {
        let store = match backend {
            Backend::BTree => Store::BTree(BTreeBackend::new()),
            Backend::Flat => Store::Flat(FlatStore::new()),
        };
        Database {
            store,
            dormant: BTreeMap::new(),
            checksum: Checksum::new(),
            live: 0,
        }
    }

    /// The storage backend this replica runs on.
    pub fn backend(&self) -> Backend {
        match &self.store {
            Store::BTree(_) => Backend::BTree,
            Store::Flat(_) => Backend::Flat,
        }
    }

    /// Number of entries, live values plus (non-dormant) death certificates.
    pub fn len(&self) -> usize {
        with_store!(self, s => s.len())
    }

    /// Whether the replica holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live (non-deleted) values.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Number of death certificates held in the main store.
    pub fn dead_len(&self) -> usize {
        self.len() - self.live
    }

    /// Number of dormant death certificates held in the side store.
    pub fn dormant_len(&self) -> usize {
        self.dormant.len()
    }

    /// The client-visible value for `key`: `None` both for absent keys and
    /// for keys with a death certificate (§1.1: a NIL pair "is the same as
    /// `ValueOf[k]` is undefined" from a client's perspective).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entry(key).and_then(Entry::value)
    }

    /// The full versioned entry for `key`, including death certificates.
    pub fn entry(&self, key: &K) -> Option<&Entry<V>> {
        with_store!(self, s => s.get(key))
    }

    /// The dormant death certificate for `key`, if this site retains one.
    pub fn dormant_certificate(&self, key: &K) -> Option<&DeathCertificate> {
        self.dormant.get(key)
    }

    /// Whether [`Database::offer`]ing an entry for `key` stamped
    /// `timestamp` would change this database — either by installing the
    /// entry or by touching a dormant death certificate. A borrow-only
    /// prefilter: senders consult it to avoid cloning entries the
    /// recipient already holds.
    pub fn would_accept(&self, key: &K, timestamp: Timestamp) -> bool {
        if self.dormant.contains_key(key) {
            // The offer either awakens the certificate (obsolete data) or
            // supersedes and drops it — a state change either way.
            return true;
        }
        match self.entry(key) {
            Some(current) => timestamp > current.timestamp(),
            None => true,
        }
    }

    /// The incrementally maintained checksum over all `(key, entry)` pairs
    /// in the main store (§1.3).
    pub fn checksum(&self) -> Checksum {
        self.checksum
    }

    /// Performs the client `Update` operation of §1.1: stamps `value` with a
    /// fresh timestamp from the local clock and installs it.
    ///
    /// Returns the timestamp assigned to the update.
    pub fn update<C: Clock>(&mut self, key: K, value: V, clock: &mut C) -> Timestamp {
        let at = clock.now();
        self.install(key, Entry::live(value, at));
        at
    }

    /// Deletes `key` by installing a death certificate (§2) with no
    /// retention sites. Returns the deletion timestamp.
    pub fn delete<C: Clock>(&mut self, key: &K, clock: &mut C) -> Timestamp {
        let at = clock.now();
        self.install(key.clone(), Entry::Dead(DeathCertificate::new(at)));
        at
    }

    /// Deletes `key` with a death certificate whose dormant copies will be
    /// retained at the given sites (§2.1). Returns the deletion timestamp.
    pub fn delete_with_retention<C: Clock>(
        &mut self,
        key: &K,
        retention: Vec<SiteId>,
        clock: &mut C,
    ) -> Timestamp {
        let at = clock.now();
        self.install(
            key.clone(),
            Entry::Dead(DeathCertificate::with_retention(at, retention)),
        );
        at
    }

    /// Merges a received entry under the §1.1 supersession rule: install it
    /// iff its timestamp is strictly newer than what the replica holds.
    ///
    /// This is the pure semilattice join; use [`Database::offer`] to also
    /// honor dormant death certificates.
    pub fn apply(&mut self, key: K, entry: Entry<V>) -> ApplyOutcome {
        with_store_aux!(self, s, aux => s.apply(key, entry, aux))
    }

    /// [`Database::apply`] from borrowed data: the entry is cloned only
    /// when it actually supersedes, so an obsolete or already-known offer
    /// costs a single store probe and no ownership transfer.
    pub fn apply_ref(&mut self, key: &K, entry: &Entry<V>) -> ApplyOutcome
    where
        V: Clone,
    {
        with_store_aux!(self, s, aux => s.apply_ref(key, entry, aux))
    }

    /// Merges a received entry, first consulting the dormant
    /// death-certificate store (§2.2–2.3).
    ///
    /// If the entry is an obsolete copy of an item whose certificate lies
    /// dormant here, the certificate is *awakened*: its activation timestamp
    /// is set to `now`, it moves back into the main store, and
    /// [`OfferOutcome::AwakenedDormant`] asks the caller to propagate it
    /// afresh. If the entry is *newer* than the dormant certificate (a
    /// legitimate reinstatement or re-deletion), the certificate is simply
    /// superseded and dropped.
    pub fn offer(&mut self, key: K, entry: Entry<V>, now: Timestamp) -> OfferOutcome {
        if let Some(dc) = self.dormant.get(&key) {
            if entry.timestamp() <= dc.deleted_at() {
                let mut dc = self.dormant.remove(&key).expect("checked above");
                dc.reactivate(now);
                self.install(key, Entry::Dead(dc));
                return OfferOutcome::AwakenedDormant;
            }
            self.dormant.remove(&key);
        }
        self.apply(key, entry).into()
    }

    /// [`Database::offer`] from borrowed data: the single-probe merge
    /// senders use on the anti-entropy hot path. Dormant death
    /// certificates are honored exactly as in `offer`; the entry is cloned
    /// only when the offer changes this database.
    pub fn offer_ref(&mut self, key: &K, entry: &Entry<V>, now: Timestamp) -> OfferOutcome
    where
        V: Clone,
    {
        if let Some(dc) = self.dormant.get(key) {
            if entry.timestamp() <= dc.deleted_at() {
                let mut dc = self.dormant.remove(key).expect("checked above");
                dc.reactivate(now);
                self.install(key.clone(), Entry::Dead(dc));
                return OfferOutcome::AwakenedDormant;
            }
            self.dormant.remove(key);
        }
        self.apply_ref(key, entry).into()
    }

    /// Installs an entry unconditionally, maintaining checksum, peel-back
    /// order and live count. Client mutation funnels through here.
    fn install(&mut self, key: K, entry: Entry<V>) {
        with_store_aux!(self, s, aux => s.install(key, entry, aux))
    }

    /// Iterates over all `(key, entry)` pairs in key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            inner: match &self.store {
                Store::BTree(b) => Either::L(b.iter()),
                Store::Flat(f) => Either::R(f.iter()),
            },
        }
    }

    /// Iterates over entries in **reverse timestamp order** — the *peel
    /// back* order of §1.3/§1.5.
    pub fn newest_first(&self) -> impl Iterator<Item = (&K, &Entry<V>)> {
        match &self.store {
            Store::BTree(b) => Either::L(b.newest_first()),
            Store::Flat(f) => Either::R(f.newest_first()),
        }
    }

    /// Borrowing form of the *recent update list* (§1.3): iterates all
    /// entries whose timestamp age relative to `now` is at most `tau`,
    /// newest first, by reference. The anti-entropy hot path walks this
    /// instead of materialising a [`RecentUpdates`] snapshot, so a
    /// conversation over a converged pair allocates nothing.
    pub fn recent_entries(&self, now: u64, tau: u64) -> impl Iterator<Item = (&K, &Entry<V>)> {
        self.newest_first()
            .take_while(move |(_, e)| e.timestamp().age(now) <= tau)
    }

    /// The recent update list as bare `(timestamp, key)` pairs straight
    /// off the peel-back order, newest first. This is the cheapest form
    /// of the §1.3 list: the timestamps live in the index (or column)
    /// itself, so no entry is fetched until a recipient actually
    /// [`would_accept`](Database::would_accept) it.
    pub fn recent_index(&self, now: u64, tau: u64) -> impl Iterator<Item = (Timestamp, &K)> {
        self.timestamp_index()
            .take_while(move |(t, _)| t.age(now) <= tau)
    }

    /// The full inverted timestamp index as bare `(timestamp, key)` pairs,
    /// newest first — [`Database::recent_index`] without the age cutoff.
    /// Receivers walk this in lockstep with a sender's recent list to
    /// recognise already-held versions without a single map probe.
    pub fn timestamp_index(&self) -> impl Iterator<Item = (Timestamp, &K)> {
        match &self.store {
            Store::BTree(b) => Either::L(b.timestamp_index()),
            Store::Flat(f) => Either::R(f.timestamp_index()),
        }
    }

    /// The *recent update list* (§1.3): all entries whose timestamp age
    /// relative to `now` is at most `tau`, newest first, as an owned
    /// snapshot (e.g. for a wire message). Collected via
    /// [`Database::recent_entries`].
    pub fn recent_updates(&self, now: u64, tau: u64) -> RecentUpdates<K, V>
    where
        V: Clone,
    {
        RecentUpdates::collect(self.recent_entries(now, tau), now, tau)
    }

    /// Discards or parks death certificates according to `policy`, as
    /// evaluated at `site` with local time `now` (§2.1).
    ///
    /// Under [`GcPolicy::Dormant`], certificates entering their dormant
    /// stage at a retention site move to the side store (no longer counted
    /// in the checksum, no longer propagated); everywhere else they are
    /// discarded. Expired dormant copies are discarded too.
    pub fn collect_garbage(&mut self, site: SiteId, now: u64, policy: GcPolicy) -> GcStats {
        let mut stats = GcStats::default();
        let mut discard = Vec::new();
        let mut park = Vec::new();
        for (key, entry) in self.iter() {
            let Entry::Dead(dc) = entry else { continue };
            match policy {
                GcPolicy::KeepForever => stats.active += 1,
                GcPolicy::FixedThreshold { .. } => {
                    if policy.discards(dc, site, now) {
                        discard.push(key.clone());
                    } else {
                        stats.active += 1;
                    }
                }
                GcPolicy::Dormant { tau1, tau2 } => match dc.stage(site, now, tau1, tau2) {
                    DeathStage::Active => stats.active += 1,
                    DeathStage::Dormant => park.push(key.clone()),
                    DeathStage::Expired => discard.push(key.clone()),
                },
            }
        }
        for key in discard {
            self.remove_entry(&key);
            stats.discarded += 1;
        }
        for key in park {
            if let Some(Entry::Dead(dc)) = self.remove_entry(&key) {
                self.dormant.insert(key, dc);
                stats.dormant += 1;
            }
        }
        // Expire dormant copies that have outlived tau1 + tau2.
        if let GcPolicy::Dormant { tau1, tau2 } = policy {
            let before = self.dormant.len();
            self.dormant
                .retain(|_, dc| dc.stage(site, now, tau1, tau2) != DeathStage::Expired);
            stats.discarded += before - self.dormant.len();
            stats.dormant = self.dormant.len();
        }
        stats
    }

    /// Removes an entry outright, maintaining the auxiliary structures.
    /// Used by garbage collection; ordinary deletion goes through
    /// [`Database::delete`] so that a death certificate is left behind.
    fn remove_entry(&mut self, key: &K) -> Option<Entry<V>> {
        with_store_aux!(self, s, aux => s.remove(key, aux))
    }

    /// Recomputes the checksum from scratch. Exposed for tests and
    /// invariant audits; always equals [`Database::checksum`].
    pub fn recompute_checksum(&self) -> Checksum {
        let mut sum = Checksum::new();
        for (k, e) in self.iter() {
            sum.toggle(&(k, e));
        }
        sum
    }
}

/// Key-order iterator over a [`Database`]'s main store — the concrete type
/// behind [`Database::iter`] and `(&Database).into_iter()`.
#[derive(Debug, Clone)]
pub struct Iter<'a, K, V> {
    inner: Either<std::collections::btree_map::Iter<'a, K, Entry<V>>, flat::KeyOrderIter<'a, K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a Entry<V>);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<K, V> ExactSizeIterator for Iter<'_, K, V> {}

/// Two-armed iterator: the storage backends return different concrete
/// iterator types for the same logical walk, and `impl Trait` needs a
/// single one.
#[derive(Debug, Clone)]
enum Either<L, R> {
    L(L),
    R(R),
}

impl<L, R> Iterator for Either<L, R>
where
    L: Iterator,
    R: Iterator<Item = L::Item>,
{
    type Item = L::Item;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            Either::L(l) => l.next(),
            Either::R(r) => r.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            Either::L(l) => l.size_hint(),
            Either::R(r) => r.size_hint(),
        }
    }
}

impl<K, V> Default for Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    fn default() -> Self {
        Database::new()
    }
}

impl<K, V> PartialEq for Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash + PartialEq,
{
    /// Two replicas are equal when their main stores agree — the
    /// convergence goal `∀ s, s′ : s.ValueOf = s′.ValueOf` of §1.1.
    /// Backend-agnostic: a flat replica equals a B-tree replica holding
    /// the same entries.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<K, V> Eq for Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash + Eq,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::SimClock;

    fn clock(site: u32) -> SimClock {
        SimClock::new(SiteId::new(site))
    }

    #[test]
    fn update_then_get() {
        let mut c = clock(0);
        let mut db = Database::new();
        db.update("k", 1, &mut c);
        assert_eq!(db.get(&"k"), Some(&1));
        db.update("k", 2, &mut c);
        assert_eq!(db.get(&"k"), Some(&2));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn delete_leaves_death_certificate() {
        let mut c = clock(0);
        let mut db = Database::new();
        db.update("k", 1, &mut c);
        db.delete(&"k", &mut c);
        assert_eq!(db.get(&"k"), None);
        assert!(db.entry(&"k").is_some_and(Entry::is_dead));
        assert_eq!(db.live_len(), 0);
        assert_eq!(db.dead_len(), 1);
    }

    #[test]
    fn apply_respects_supersession() {
        let mut c0 = clock(0);
        let mut a = Database::new();
        let mut b = Database::new();
        let t1 = a.update("k", 1, &mut c0);
        assert_eq!(b.apply("k", Entry::live(1, t1)), ApplyOutcome::Applied);
        assert_eq!(b.apply("k", Entry::live(1, t1)), ApplyOutcome::AlreadyKnown);
        let t2 = a.update("k", 2, &mut c0);
        assert_eq!(b.apply("k", Entry::live(2, t2)), ApplyOutcome::Applied);
        assert_eq!(b.apply("k", Entry::live(1, t1)), ApplyOutcome::Obsolete);
        assert_eq!(a, b);
    }

    #[test]
    fn checksum_tracks_content_not_history() {
        let mut c0 = clock(0);
        let mut c1 = clock(1);
        let mut a = Database::new();
        let mut b = Database::new();
        let ta = a.update("x", 10, &mut c0);
        let tb = a.update("y", 20, &mut c0);
        // b receives the same updates in the opposite order.
        b.apply("y", Entry::live(20, tb));
        b.apply("x", Entry::live(10, ta));
        assert_eq!(a.checksum(), b.checksum());
        // A divergent update makes the checksums differ.
        b.update("z", 30, &mut c1);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn incremental_checksum_matches_recompute() {
        let mut c = clock(0);
        let mut db = Database::new();
        for i in 0..100 {
            db.update(i % 17, i, &mut c);
            if i % 5 == 0 {
                db.delete(&(i % 17), &mut c);
            }
            assert_eq!(db.checksum(), db.recompute_checksum());
        }
    }

    #[test]
    fn newest_first_is_reverse_timestamp_order() {
        let mut c = clock(0);
        let mut db = Database::new();
        db.update("a", 1, &mut c);
        db.update("b", 2, &mut c);
        db.update("a", 3, &mut c);
        let order: Vec<_> = db.newest_first().map(|(k, _)| *k).collect();
        assert_eq!(order, ["a", "b"]);
        let times: Vec<_> = db.newest_first().map(|(_, e)| e.timestamp()).collect();
        assert!(times.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn gc_fixed_threshold_discards_old_certificates() {
        let mut c = clock(0);
        let mut db = Database::new();
        db.update("k", 1, &mut c);
        db.delete(&"k", &mut c);
        let policy = GcPolicy::FixedThreshold { tau: 10 };
        let stats = db.collect_garbage(SiteId::new(0), c.peek() + 100, policy);
        assert_eq!(stats.discarded, 1);
        assert_eq!(db.len(), 0);
        assert_eq!(db.checksum(), Checksum::new());
    }

    #[test]
    fn gc_dormant_parks_at_retention_site_only() {
        let retention = SiteId::new(1);
        let policy = GcPolicy::Dormant {
            tau1: 10,
            tau2: 100,
        };
        for (site, expect_dormant) in [(retention, true), (SiteId::new(2), false)] {
            let mut c = clock(0);
            let mut db = Database::new();
            db.update("k", 1, &mut c);
            db.delete_with_retention(&"k", vec![retention], &mut c);
            let stats = db.collect_garbage(site, c.peek() + 50, policy);
            assert_eq!(db.len(), 0);
            if expect_dormant {
                assert_eq!(stats.dormant, 1);
                assert!(db.dormant_certificate(&"k").is_some());
            } else {
                assert_eq!(stats.discarded, 1);
                assert_eq!(db.dormant_len(), 0);
            }
        }
    }

    #[test]
    fn offer_awakens_dormant_certificate_on_obsolete_data() {
        let retention = SiteId::new(0);
        let mut c = clock(0);
        let mut db = Database::new();
        let t_old = c.now(); // timestamp of the obsolete remote copy
        db.update("k", 1, &mut c);
        db.delete_with_retention(&"k", vec![retention], &mut c);
        db.collect_garbage(
            retention,
            c.peek() + 50,
            GcPolicy::Dormant {
                tau1: 10,
                tau2: 1000,
            },
        );
        assert_eq!(db.len(), 0);

        // An obsolete copy arrives from a badly out-of-date replica.
        let now = Timestamp::new(c.peek() + 50, SiteId::new(9));
        let outcome = db.offer("k", Entry::live(1, t_old), now);
        assert_eq!(outcome, OfferOutcome::AwakenedDormant);
        let entry = db.entry(&"k").unwrap();
        assert!(entry.is_dead());
        let dc = entry.death_certificate().unwrap();
        assert_eq!(dc.activation(), now);
        assert!(dc.deleted_at() < now); // ordinary timestamp unchanged
    }

    #[test]
    fn offer_lets_newer_update_supersede_dormant_certificate() {
        let retention = SiteId::new(0);
        let mut c = clock(0);
        let mut db = Database::new();
        db.update("k", 1, &mut c);
        db.delete_with_retention(&"k", vec![retention], &mut c);
        db.collect_garbage(
            retention,
            c.peek() + 50,
            GcPolicy::Dormant {
                tau1: 10,
                tau2: 1000,
            },
        );

        // A *reinstatement* newer than the deletion must not be cancelled
        // (§2.2's correctness concern).
        let mut remote_clock = SimClock::starting_at(SiteId::new(5), c.peek() + 60);
        let t_new = remote_clock.now();
        let now = Timestamp::new(c.peek() + 61, SiteId::new(9));
        let outcome = db.offer("k", Entry::live(2, t_new), now);
        assert_eq!(outcome, OfferOutcome::Applied);
        assert_eq!(db.get(&"k"), Some(&2));
        assert_eq!(db.dormant_len(), 0);
    }

    #[test]
    fn recent_updates_window() {
        let mut c = clock(0);
        let mut db = Database::new();
        db.update("old", 1, &mut c); // t=1
        c.advance_to(100);
        db.update("new", 2, &mut c); // t=100
        let recent = db.recent_updates(101, 5);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent.iter().next().unwrap().0, &"new");
        let all = db.recent_updates(101, 1000);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn recent_entries_matches_recent_updates_snapshot() {
        let mut c = clock(0);
        let mut db = Database::new();
        for (i, key) in ["a", "b", "c", "d"].iter().enumerate() {
            c.advance_to(u64::try_from(i).unwrap() * 40);
            db.update(*key, i as u32, &mut c);
        }
        for tau in [0, 40, 80, 1_000] {
            let borrowed: Vec<(&str, u32)> = db
                .recent_entries(130, tau)
                .map(|(k, e)| (*k, e.timestamp().time() as u32))
                .collect();
            let owned: Vec<(&str, u32)> = db
                .recent_updates(130, tau)
                .iter()
                .map(|(k, e)| (*k, e.timestamp().time() as u32))
                .collect();
            assert_eq!(borrowed, owned, "tau={tau}");
        }
    }

    #[test]
    fn apply_ref_agrees_with_apply() {
        // A stream with repeated keys and non-monotone timestamps, so the
        // applied / already-known / obsolete cases all occur.
        let ts = |t: u64| Timestamp::new(t, SiteId::new(1));
        let mut stream: Vec<(u32, Entry<u32>)> = Vec::new();
        for i in 0..40u32 {
            let t = u64::from((i * 7) % 13 + 1);
            let e = if i % 5 == 0 {
                Entry::dead(ts(t))
            } else {
                Entry::live(i, ts(t))
            };
            stream.push((i % 6, e));
        }
        let mut owned: Database<u32, u32> = Database::new();
        let mut borrowed: Database<u32, u32> = Database::new();
        // Replay a prefix so exact duplicates (already-known) occur too.
        let replay: Vec<_> = stream.iter().take(10).cloned().collect();
        stream.extend(replay);
        for (k, e) in &stream {
            let a = owned.apply(*k, e.clone());
            let b = borrowed.apply_ref(k, e);
            assert_eq!(a, b);
        }
        assert_eq!(owned, borrowed);
        assert_eq!(borrowed.checksum(), borrowed.recompute_checksum());
        assert_eq!(owned.live_len(), borrowed.live_len());
    }

    #[test]
    fn offer_ref_awakens_dormant_certificate_like_offer() {
        let retention = SiteId::new(0);
        let build = || {
            let mut c = clock(0);
            let mut db = Database::new();
            let t_old = c.now();
            db.update("k", 1, &mut c);
            db.delete_with_retention(&"k", vec![retention], &mut c);
            db.collect_garbage(
                retention,
                c.peek() + 50,
                GcPolicy::Dormant {
                    tau1: 10,
                    tau2: 1000,
                },
            );
            (db, t_old, c.peek())
        };
        let (mut by_value, t_old, local) = build();
        let (mut by_ref, _, _) = build();
        let now = Timestamp::new(local + 50, SiteId::new(9));
        let offered = Entry::live(1, t_old);
        let a = by_value.offer("k", offered.clone(), now);
        let b = by_ref.offer_ref(&"k", &offered, now);
        assert_eq!(a, OfferOutcome::AwakenedDormant);
        assert_eq!(a, b);
        assert_eq!(by_value, by_ref);
        assert_eq!(by_ref.dormant_len(), 0);
        assert_eq!(by_ref.checksum(), by_ref.recompute_checksum());
    }

    #[test]
    fn backends_are_interchangeable_and_comparable() {
        let mut c = clock(0);
        let mut tree: Database<&str, u32> = Database::with_backend(Backend::BTree);
        let mut flat: Database<&str, u32> = Database::with_backend(Backend::Flat);
        assert_eq!(tree.backend(), Backend::BTree);
        assert_eq!(flat.backend(), Backend::Flat);
        for (key, value) in [("b", 1), ("a", 2), ("c", 3), ("a", 4)] {
            let t = tree.update(key, value, &mut c);
            flat.apply(key, Entry::live(value, t));
        }
        tree.delete(&"c", &mut c);
        flat.apply("c", tree.entry(&"c").unwrap().clone());
        assert_eq!(tree, flat);
        assert_eq!(tree.checksum(), flat.checksum());
        assert_eq!(tree.live_len(), flat.live_len());
        assert!(tree.newest_first().eq(flat.newest_first()));
        assert!(tree.timestamp_index().eq(flat.timestamp_index()));
    }
}

impl<K, V> Extend<(K, Entry<V>)> for Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Merges a stream of entries under the supersession rule — equivalent
    /// to [`Database::apply`] per item.
    fn extend<T: IntoIterator<Item = (K, Entry<V>)>>(&mut self, iter: T) {
        for (k, e) in iter {
            self.apply(k, e);
        }
    }
}

impl<K, V> FromIterator<(K, Entry<V>)> for Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Builds a replica from a stream of entries (e.g. a full-database
    /// transfer), resolving duplicates by timestamp.
    fn from_iter<T: IntoIterator<Item = (K, Entry<V>)>>(iter: T) -> Self {
        let mut db = Database::new();
        db.extend(iter);
        db
    }
}

impl<'a, K, V> IntoIterator for &'a Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    type Item = (&'a K, &'a Entry<V>);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod collect_tests {
    use super::*;
    use crate::timestamp::SimClock;

    #[test]
    fn from_iterator_resolves_duplicates_by_timestamp() {
        let ts = |t| Timestamp::new(t, SiteId::new(0));
        let db: Database<&str, u32> = vec![
            ("k", Entry::live(1, ts(1))),
            ("k", Entry::live(2, ts(5))),
            ("k", Entry::live(3, ts(3))),
            ("j", Entry::dead(ts(2))),
        ]
        .into_iter()
        .collect();
        assert_eq!(db.get(&"k"), Some(&2));
        assert_eq!(db.get(&"j"), None);
        assert_eq!(db.len(), 2);
        assert_eq!(db.checksum(), db.recompute_checksum());
    }

    #[test]
    fn extend_merges_a_transfer() {
        let mut clock = SimClock::new(SiteId::new(0));
        let mut a: Database<&str, u32> = Database::new();
        a.update("x", 1, &mut clock);
        a.update("y", 2, &mut clock);
        let mut b: Database<&str, u32> = Database::new();
        b.extend(a.iter().map(|(k, e)| (*k, e.clone())));
        assert_eq!(a, b);
    }

    #[test]
    fn ref_into_iterator_walks_entries() {
        let mut clock = SimClock::new(SiteId::new(0));
        let mut db: Database<&str, u32> = Database::new();
        db.update("a", 1, &mut clock);
        db.update("b", 2, &mut clock);
        let keys: Vec<_> = (&db).into_iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, ["a", "b"]);
    }
}

impl<K, V> Database<K, V>
where
    K: Ord + Clone + Hash,
    V: Hash,
{
    /// Iterates the keys in order (live and deleted alike).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates only the live `(key, value)` pairs, skipping death
    /// certificates — the client-visible contents of the replica.
    pub fn live_entries(&self) -> impl Iterator<Item = (&K, &V)> {
        self.iter().filter_map(|(k, e)| e.value().map(|v| (k, v)))
    }
}

#[cfg(test)]
mod iter_tests {
    use super::*;
    use crate::timestamp::SimClock;

    #[test]
    fn live_entries_skip_tombstones() {
        let mut clock = SimClock::new(SiteId::new(0));
        let mut db: Database<&str, u32> = Database::new();
        db.update("a", 1, &mut clock);
        db.update("b", 2, &mut clock);
        db.delete(&"a", &mut clock);
        let live: Vec<_> = db.live_entries().collect();
        assert_eq!(live, [(&"b", &2)]);
        let keys: Vec<_> = db.keys().copied().collect();
        assert_eq!(keys, ["a", "b"]);
    }
}
