//! Globally unique, totally ordered timestamps (paper §1.1).
//!
//! The paper's `Now[]` returns "a globally unique timestamp", ideally close
//! to real time. We model this with a `(time, site)` pair: ties on the time
//! component are broken by the originating site's identifier, so any two
//! timestamps produced anywhere in the system are comparable and distinct as
//! long as each site's clock is strictly monotonic — which [`SimClock`]
//! guarantees by construction.

use std::fmt;

/// Identifier of a database site (replica).
///
/// A thin newtype over `u32` so site indices, key hashes and tick counts
/// cannot be confused with one another.
///
/// # Example
///
/// ```
/// use epidemic_db::SiteId;
/// let s = SiteId::new(7);
/// assert_eq!(s.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(u32);

impl SiteId {
    /// Creates a site identifier from its index.
    pub const fn new(index: u32) -> Self {
        SiteId(index)
    }

    /// Returns the underlying index.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the index as a `usize`, convenient for slice indexing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(index: u32) -> Self {
        SiteId(index)
    }
}

/// A globally unique, totally ordered timestamp.
///
/// Ordered lexicographically by `(time, site)`. The paper requires only that
/// "a pair with a larger timestamp will always supersede one with a smaller
/// timestamp" (§1.1); global uniqueness makes the supersession relation a
/// strict total order over updates.
///
/// # Example
///
/// ```
/// use epidemic_db::{SiteId, Timestamp};
/// let a = Timestamp::new(5, SiteId::new(1));
/// let b = Timestamp::new(5, SiteId::new(2));
/// assert!(a < b); // same tick, ties broken by site
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    time: u64,
    site: SiteId,
}

impl Timestamp {
    /// The smallest possible timestamp; no real update ever carries it.
    pub const ZERO: Timestamp = Timestamp {
        time: 0,
        site: SiteId::new(0),
    };

    /// Creates a timestamp from a tick count and originating site.
    pub const fn new(time: u64, site: SiteId) -> Self {
        Timestamp { time, site }
    }

    /// The time component (simulated ticks).
    pub const fn time(self) -> u64 {
        self.time
    }

    /// The site that issued this timestamp.
    pub const fn site(self) -> SiteId {
        self.site
    }

    /// Age of this timestamp relative to `now` in ticks, saturating at zero
    /// for timestamps that appear to be from the future (clock skew).
    pub const fn age(self, now: u64) -> u64 {
        now.saturating_sub(self.time)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.time, self.site)
    }
}

impl Default for Timestamp {
    fn default() -> Self {
        Timestamp::ZERO
    }
}

/// A source of globally unique timestamps — the paper's `Now[]` (§1.1).
///
/// Implementations must be strictly monotonic per site and must never return
/// the same `(time, site)` pair twice.
pub trait Clock {
    /// Returns a fresh timestamp strictly greater than any previously
    /// returned by this clock.
    fn now(&mut self) -> Timestamp;

    /// Current reading of the time component without consuming a timestamp.
    fn peek(&self) -> u64;

    /// Advances the clock's time component to at least `time`.
    ///
    /// The simulator calls this once per cycle so that timestamp ages (used
    /// by recent-update lists and death-certificate thresholds) track
    /// simulated time.
    fn advance_to(&mut self, time: u64);
}

/// Deterministic simulated clock.
///
/// Produces timestamps `(t, site)` with strictly increasing `t`. Suitable
/// both for unit tests and as each simulated site's local clock.
///
/// # Example
///
/// ```
/// use epidemic_db::{Clock, SimClock, SiteId};
/// let mut c = SimClock::new(SiteId::new(3));
/// let a = c.now();
/// let b = c.now();
/// assert!(b > a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimClock {
    site: SiteId,
    time: u64,
}

impl SimClock {
    /// Creates a clock owned by `site`, starting at time 1.
    pub const fn new(site: SiteId) -> Self {
        SimClock { site, time: 1 }
    }

    /// Creates a clock starting at an arbitrary time.
    pub const fn starting_at(site: SiteId, time: u64) -> Self {
        SimClock { site, time }
    }

    /// The site this clock stamps for.
    pub const fn site(&self) -> SiteId {
        self.site
    }
}

impl Clock for SimClock {
    fn now(&mut self) -> Timestamp {
        let ts = Timestamp::new(self.time, self.site);
        self.time += 1;
        ts
    }

    fn peek(&self) -> u64 {
        self.time
    }

    fn advance_to(&mut self, time: u64) {
        if time > self.time {
            self.time = time;
        }
    }
}

/// A clock with a constant offset from simulated global time, modelling the
/// bounded clock-synchronization error `ε ≪ τ₁` the paper assumes (§2.1).
///
/// # Example
///
/// ```
/// use epidemic_db::{Clock, SiteId, SkewedClock};
/// let mut c = SkewedClock::new(SiteId::new(0), -3);
/// c.advance_to(10);
/// assert_eq!(c.peek(), 7); // reads 3 ticks behind global time
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SkewedClock {
    inner: SimClock,
    skew: i64,
}

impl SkewedClock {
    /// Creates a clock for `site` whose local reading differs from global
    /// time by `skew` ticks (positive = fast, negative = slow).
    pub fn new(site: SiteId, skew: i64) -> Self {
        SkewedClock {
            inner: SimClock::new(site),
            skew,
        }
    }

    /// The configured skew in ticks.
    pub const fn skew(&self) -> i64 {
        self.skew
    }
}

impl Clock for SkewedClock {
    fn now(&mut self) -> Timestamp {
        self.inner.now()
    }

    fn peek(&self) -> u64 {
        self.inner.peek()
    }

    fn advance_to(&mut self, time: u64) {
        let local = time.saturating_add_signed(self.skew);
        self.inner.advance_to(local.max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_order_by_time_then_site() {
        let a = Timestamp::new(1, SiteId::new(9));
        let b = Timestamp::new(2, SiteId::new(0));
        let c = Timestamp::new(2, SiteId::new(1));
        assert!(a < b);
        assert!(b < c);
        assert_eq!(b.max(c), c);
    }

    #[test]
    fn sim_clock_is_strictly_monotonic() {
        let mut c = SimClock::new(SiteId::new(0));
        let mut prev = c.now();
        for _ in 0..100 {
            let next = c.now();
            assert!(next > prev);
            prev = next;
        }
    }

    #[test]
    fn clocks_at_different_sites_never_collide() {
        let mut c0 = SimClock::new(SiteId::new(0));
        let mut c1 = SimClock::new(SiteId::new(1));
        let all: Vec<Timestamp> = (0..50).flat_map(|_| [c0.now(), c1.now()]).collect();
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut c = SimClock::new(SiteId::new(0));
        c.advance_to(10);
        assert_eq!(c.peek(), 10);
        c.advance_to(5);
        assert_eq!(c.peek(), 10);
        let ts = c.now();
        assert_eq!(ts.time(), 10);
        assert_eq!(c.peek(), 11);
    }

    #[test]
    fn skewed_clock_tracks_global_time_with_offset() {
        let mut slow = SkewedClock::new(SiteId::new(1), -5);
        let mut fast = SkewedClock::new(SiteId::new(2), 5);
        slow.advance_to(100);
        fast.advance_to(100);
        assert_eq!(slow.peek(), 95);
        assert_eq!(fast.peek(), 105);
    }

    #[test]
    fn skewed_clock_saturates_below_one() {
        let mut c = SkewedClock::new(SiteId::new(0), -50);
        c.advance_to(10);
        assert_eq!(c.peek(), 1);
    }

    #[test]
    fn age_saturates_for_future_timestamps() {
        let ts = Timestamp::new(100, SiteId::new(0));
        assert_eq!(ts.age(150), 50);
        assert_eq!(ts.age(50), 0);
    }

    #[test]
    fn display_formats() {
        let ts = Timestamp::new(42, SiteId::new(7));
        assert_eq!(ts.to_string(), "42@s7");
        assert_eq!(SiteId::new(3).to_string(), "s3");
    }
}
