//! Differential property tests: the flat backend is observationally
//! equivalent to the B-tree reference backend.
//!
//! Two databases — one per backend — replay the *same* random history of
//! client updates, deletions (with and without retention sites), remote
//! offers, garbage collection and clock advances. After every single
//! operation the pair must agree on everything a protocol can observe:
//! entry contents, live/dead counts, dormant death certificates, the
//! incremental checksum, key-order iteration, peel-back order, the bare
//! timestamp index and the recent-update window. This is the proof
//! obligation that lets `EPIDEMIC_BACKEND=flat` claim byte-identical
//! simulation output.

use epidemic_db::{
    Backend, Clock, Database, Entry, GcPolicy, OfferOutcome, SimClock, SiteId, Timestamp,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Client `Update` at this site.
    Update { key: u8, value: u16 },
    /// Client deletion (plain death certificate).
    Delete { key: u8 },
    /// Client deletion with a dormant-retention site.
    Retain { key: u8, site: u8 },
    /// A remote entry arrives through `offer` (owned) or `offer_ref`
    /// (borrowed) — both paths must agree with each other and across
    /// backends. `value: None` offers a death certificate.
    Offer {
        key: u8,
        value: Option<u16>,
        time: u64,
        site: u8,
        by_ref: bool,
    },
    /// Local clock advances (makes GC and recency windows bite).
    Advance { dt: u64 },
    /// Death-certificate garbage collection.
    Gc { policy: GcPolicy },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(key, value)| Op::Update { key, value }),
        any::<u8>().prop_map(|key| Op::Delete { key }),
        (any::<u8>(), 0u8..4).prop_map(|(key, site)| Op::Retain { key, site }),
        (
            any::<u8>(),
            any::<u16>(),
            any::<bool>(),
            1u64..400,
            1u8..8,
            any::<bool>()
        )
            .prop_map(|(key, value, live, time, site, by_ref)| Op::Offer {
                key,
                value: live.then_some(value),
                time,
                site,
                by_ref,
            }),
        (1u64..120).prop_map(|dt| Op::Advance { dt }),
        prop_oneof![
            Just(GcPolicy::KeepForever),
            (1u64..80).prop_map(|tau| GcPolicy::FixedThreshold { tau }),
            (1u64..60, 1u64..200).prop_map(|(tau1, tau2)| GcPolicy::Dormant { tau1, tau2 }),
        ]
        .prop_map(|policy| Op::Gc { policy }),
    ]
}

/// One backend's replica plus the local clock driving it. Both harnesses
/// replay the identical op stream with identically seeded clocks, so every
/// timestamp handed out matches across backends.
struct Harness {
    db: Database<u8, u16>,
    clock: SimClock,
}

const LOCAL: SiteId = SiteId::new(0);

impl Harness {
    fn new(backend: Backend) -> Self {
        Harness {
            db: Database::with_backend(backend),
            clock: SimClock::new(LOCAL),
        }
    }

    fn step(&mut self, op: &Op) -> Option<OfferOutcome> {
        match *op {
            Op::Update { key, value } => {
                self.db.update(key, value, &mut self.clock);
                None
            }
            Op::Delete { key } => {
                self.db.delete(&key, &mut self.clock);
                None
            }
            Op::Retain { key, site } => {
                self.db.delete_with_retention(
                    &key,
                    vec![LOCAL, SiteId::new(u32::from(site))],
                    &mut self.clock,
                );
                None
            }
            Op::Offer {
                key,
                value,
                time,
                site,
                by_ref,
            } => {
                let at = Timestamp::new(time, SiteId::new(u32::from(site)));
                let entry = match value {
                    Some(v) => Entry::live(v, at),
                    None => Entry::dead(at),
                };
                let now = Timestamp::new(self.clock.peek(), LOCAL);
                Some(if by_ref {
                    self.db.offer_ref(&key, &entry, now)
                } else {
                    self.db.offer(key, entry, now)
                })
            }
            Op::Advance { dt } => {
                let now = self.clock.peek();
                self.clock.advance_to(now + dt);
                None
            }
            Op::Gc { policy } => {
                self.db.collect_garbage(LOCAL, self.clock.peek(), policy);
                None
            }
        }
    }
}

/// Rewrites an [`Op::Offer`] so the offered entry is a pure function of
/// its timestamp: the site id moves into the 2+ range (clear of both
/// replicas' client clocks) and kind/value derive from `(time, site)`.
/// Used by the convergence test, where two independent histories might
/// otherwise collide on a timestamp with different payloads.
fn canonicalize(op: &Op) -> Op {
    match *op {
        Op::Offer {
            key,
            value: _,
            time,
            site,
            by_ref,
        } => {
            let site = 2 + site % 6;
            let live = !(time + u64::from(site) + u64::from(key)).is_multiple_of(4);
            let value = live.then_some((time as u16) ^ (u16::from(site) << 9));
            Op::Offer {
                key,
                value,
                time,
                site,
                by_ref,
            }
        }
        ref other => other.clone(),
    }
}

/// Full observational comparison between the two backends.
fn assert_equivalent(tree: &Harness, flat: &Harness) -> Result<(), TestCaseError> {
    let (t, f) = (&tree.db, &flat.db);
    prop_assert_eq!(t.len(), f.len());
    prop_assert_eq!(t.live_len(), f.live_len());
    prop_assert_eq!(t.dead_len(), f.dead_len());
    prop_assert_eq!(t.dormant_len(), f.dormant_len());
    prop_assert_eq!(t.checksum(), f.checksum());
    prop_assert_eq!(f.checksum(), f.recompute_checksum());
    prop_assert!(t.iter().eq(f.iter()), "key-order walk diverged");
    prop_assert!(
        t.newest_first().eq(f.newest_first()),
        "peel-back order diverged"
    );
    prop_assert!(
        t.timestamp_index().eq(f.timestamp_index()),
        "timestamp index diverged"
    );
    for key in t.keys() {
        prop_assert_eq!(t.entry(key), f.entry(key));
        prop_assert_eq!(t.dormant_certificate(key), f.dormant_certificate(key));
    }
    let now = tree.clock.peek();
    for tau in [0, 5, 50, u64::MAX] {
        prop_assert!(
            t.recent_index(now, tau).eq(f.recent_index(now, tau)),
            "recent index diverged at tau={}",
            tau
        );
        prop_assert!(
            t.recent_entries(now, tau).eq(f.recent_entries(now, tau)),
            "recent entries diverged at tau={}",
            tau
        );
    }
    Ok(())
}

proptest! {
    /// After every operation of a random history, the two backends agree on
    /// every observable: entries, dormant certificates, checksums, and all
    /// three iteration orders.
    #[test]
    fn flat_store_matches_reference(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut tree = Harness::new(Backend::BTree);
        let mut flat = Harness::new(Backend::Flat);
        for op in &ops {
            let a = tree.step(op);
            let b = flat.step(op);
            prop_assert_eq!(a, b, "offer outcomes diverged on {:?}", op);
            assert_equivalent(&tree, &flat)?;
        }
    }

    /// Anti-entropy exchange between mixed-backend replicas converges to
    /// equal databases with equal checksums — the §1.1 goal holds across
    /// the seam, not just within one backend.
    ///
    /// Offered entries are derived deterministically from their timestamp
    /// (see [`canonicalize`]) so a timestamp collision between the two
    /// histories can never manufacture two irreconcilable versions — the
    /// same guarantee unique real-world timestamps give the paper.
    #[test]
    fn mixed_backend_exchange_converges(
        ops_a in prop::collection::vec(op_strategy(), 0..60),
        ops_b in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let mut a = Harness::new(Backend::BTree);
        let mut b = Harness::new(Backend::Flat);
        // Give b a disjoint client site id so update timestamps never
        // collide across replicas; remote offers use sites 2+.
        b.clock = SimClock::new(SiteId::new(1));
        for op in &ops_a {
            a.step(&canonicalize(op));
        }
        for op in &ops_b {
            b.step(&canonicalize(op));
        }
        // Push-pull full exchanges until fixpoint: one round can awaken a
        // dormant certificate whose reinstalled copy only crosses over on
        // the next round, so loop (awakenings strictly shrink the dormant
        // stores, guaranteeing termination long before the bound).
        for _ in 0..6 {
            let now_b = Timestamp::new(b.clock.peek(), SiteId::new(1));
            let from_a: Vec<_> = a.db.iter().map(|(k, e)| (*k, e.clone())).collect();
            for (k, e) in &from_a {
                b.db.offer_ref(k, e, now_b);
            }
            let now_a = Timestamp::new(a.clock.peek(), LOCAL);
            let from_b: Vec<_> = b.db.iter().map(|(k, e)| (*k, e.clone())).collect();
            for (k, e) in &from_b {
                a.db.offer_ref(k, e, now_a);
            }
            if a.db == b.db {
                break;
            }
        }
        // Dormant stores may legitimately differ (awakenings depend on what
        // arrived), but main stores and checksums must agree.
        prop_assert_eq!(&a.db, &b.db);
        prop_assert_eq!(a.db.checksum(), b.db.checksum());
        prop_assert!(a.db.timestamp_index().eq(b.db.timestamp_index()));
    }
}
