//! Property-based tests for the replica store invariants.
//!
//! The central claims: replicas form a join semilattice (merge is
//! commutative, associative, idempotent), the incremental checksum always
//! matches a from-scratch recomputation, and the peel-back order is sound.

use epidemic_db::{ApplyOutcome, Database, Entry, SiteId, Timestamp};
use proptest::prelude::*;

/// An abstract update operation for generating random histories.
#[derive(Debug, Clone)]
enum Op {
    Put {
        key: u8,
        value: u16,
        time: u64,
        site: u8,
    },
    Del {
        key: u8,
        time: u64,
        site: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u16>(), 1u64..500, 0u8..8).prop_map(|(key, value, time, site)| {
            Op::Put {
                key,
                value,
                time,
                site,
            }
        }),
        (any::<u8>(), 1u64..500, 0u8..8).prop_map(|(key, time, site)| Op::Del { key, time, site }),
    ]
}

fn as_entry(op: &Op) -> (u8, Entry<u16>) {
    match *op {
        Op::Put {
            key,
            value,
            time,
            site,
        } => (
            key,
            Entry::live(value, Timestamp::new(time, SiteId::new(site as u32))),
        ),
        Op::Del { key, time, site } => (
            key,
            Entry::dead(Timestamp::new(time, SiteId::new(site as u32))),
        ),
    }
}

fn replay(ops: &[Op]) -> Database<u8, u16> {
    let mut db = Database::new();
    for op in ops {
        let (k, e) = as_entry(op);
        db.apply(k, e);
    }
    db
}

proptest! {
    /// Merging the same operations in any order yields identical replicas —
    /// the convergence property that makes anti-entropy correct.
    #[test]
    fn merge_is_order_independent(ops in prop::collection::vec(op_strategy(), 0..60), seed in any::<u64>()) {
        let forward = replay(&ops);
        let mut shuffled = ops.clone();
        // Deterministic Fisher–Yates driven by the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward = replay(&shuffled);
        prop_assert_eq!(&forward, &backward);
        prop_assert_eq!(forward.checksum(), backward.checksum());
    }

    /// Applying any entry twice is a no-op the second time.
    #[test]
    fn merge_is_idempotent(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut db = replay(&ops);
        let checksum = db.checksum();
        let len = db.len();
        for op in &ops {
            let (k, e) = as_entry(op);
            let out = db.apply(k, e);
            prop_assert_ne!(out, ApplyOutcome::Applied);
        }
        prop_assert_eq!(db.checksum(), checksum);
        prop_assert_eq!(db.len(), len);
    }

    /// The incremental checksum never drifts from a full recomputation.
    #[test]
    fn incremental_checksum_is_exact(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let mut db = Database::new();
        for op in &ops {
            let (k, e) = as_entry(op);
            db.apply(k, e);
            prop_assert_eq!(db.checksum(), db.recompute_checksum());
        }
    }

    /// Equal checksums coincide with equal contents on random histories
    /// (no collisions at this scale), and unequal contents give unequal
    /// checksums.
    #[test]
    fn checksum_discriminates(a in prop::collection::vec(op_strategy(), 0..40),
                              b in prop::collection::vec(op_strategy(), 0..40)) {
        let da = replay(&a);
        let db_ = replay(&b);
        prop_assert_eq!(da == db_, da.checksum() == db_.checksum());
    }

    /// newest_first yields every entry exactly once, in non-increasing
    /// timestamp order (ties are possible only because this generator may
    /// reuse a timestamp across keys; real clocks never do).
    #[test]
    fn peel_back_order_is_sound(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let db = replay(&ops);
        let listed: Vec<_> = db.newest_first().collect();
        prop_assert_eq!(listed.len(), db.len());
        for w in listed.windows(2) {
            prop_assert!(w[0].1.timestamp() >= w[1].1.timestamp());
        }
        let mut keys: Vec<_> = listed.iter().map(|(k, _)| **k).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), db.len());
    }

    /// The final value of each key equals the maximum-timestamp operation
    /// on that key (last-writer-wins semantics).
    #[test]
    fn last_writer_wins(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let db = replay(&ops);
        let mut expected: std::collections::BTreeMap<u8, Entry<u16>> = Default::default();
        for op in &ops {
            let (k, e) = as_entry(op);
            match expected.get(&k) {
                Some(cur) if !e.supersedes(cur) => {}
                _ => { expected.insert(k, e); }
            }
        }
        prop_assert_eq!(db.len(), expected.len());
        for (k, e) in &expected {
            prop_assert_eq!(db.entry(k), Some(e));
        }
    }
}
