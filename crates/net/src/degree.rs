//! Compact heterogeneous-degree topologies for megascale sweeps.
//!
//! The paper validates its protocols on CIN-scale topologies (§3) where an
//! explicit [`Topology`](crate::Topology) with per-link routing is
//! affordable. At n = 10⁵–10⁶ sites — the regime the complex-networks
//! literature (Moreno–Nekovee–Vespignani) studies — all-pairs routing is
//! out of the question and the only thing partner selection needs is the
//! adjacency itself. [`DegreeGraph`] stores exactly that: a compressed
//! sparse row (CSR) adjacency — one `offsets` column and one `targets`
//! column, two heap blocks total regardless of site count — plus a seeded
//! Barabási–Albert generator producing the power-law degree distributions
//! ("scale-free" networks) under which epidemic residue and delay behave
//! qualitatively differently from the uniform mixing of §1.4.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// An undirected graph in compressed-sparse-row form: the neighbors of
/// site `i` are `targets[offsets[i]..offsets[i+1]]`. Sites are plain
/// `0..n` indices (dense, like the megascale engines' site tables); `u32`
/// throughout keeps a million-site, two-million-edge graph at ~18 MB.
#[derive(Debug, Clone)]
pub struct DegreeGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl DegreeGraph {
    /// Builds a scale-free graph on `n` sites by seeded Barabási–Albert
    /// preferential attachment: each arriving site links to `m` distinct
    /// existing sites chosen with probability proportional to their
    /// degree (implemented by sampling the repeated-endpoints list). The
    /// first `m + 1` sites form a clique so early targets exist.
    ///
    /// Deterministic: the same `(n, m, seed)` yields the same graph on
    /// every platform, which is what lets megascale runs replay exactly.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `n < 2`.
    pub fn scale_free(n: usize, m: usize, seed: u64) -> Self {
        assert!(m >= 1, "each arriving site must attach somewhere");
        assert!(n >= 2, "a graph of partners needs at least two sites");
        let core = (m + 1).min(n);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(core * (core - 1) / 2 + m * n);
        // Every edge contributes both endpoints; sampling this list
        // uniformly is sampling sites proportionally to degree.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * edges.capacity());
        for i in 0..core as u32 {
            for j in (i + 1)..core as u32 {
                edges.push((i, j));
                endpoints.push(i);
                endpoints.push(j);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut picked: Vec<u32> = Vec::with_capacity(m);
        for v in core as u32..n as u32 {
            picked.clear();
            while picked.len() < m.min(v as usize) {
                let t = endpoints[rng.random_range(0..endpoints.len())];
                if !picked.contains(&t) {
                    picked.push(t);
                }
            }
            for &t in &picked {
                edges.push((v, t));
                endpoints.push(t);
                endpoints.push(v);
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Builds the CSR form from an undirected edge list (no self-loops,
    /// no duplicate edges). Each edge appears in both endpoints' neighbor
    /// lists; per-site lists come out sorted.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0u32; n];
        for &(a, b) in edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in &degree {
            total += d;
            offsets.push(total);
        }
        let mut targets = vec![0u32; total as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(a, b) in edges {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        for i in 0..n {
            targets[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        DegreeGraph { offsets, targets }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of site `i`.
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The sorted neighbor list of site `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = DegreeGraph::scale_free(500, 2, 42);
        let b = DegreeGraph::scale_free(500, 2, 42);
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.targets, b.targets);
        let c = DegreeGraph::scale_free(500, 2, 43);
        assert_ne!(a.targets, c.targets);
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let g = DegreeGraph::scale_free(300, 2, 7);
        let sum: usize = (0..g.site_count()).map(|i| g.degree(i)).sum();
        assert_eq!(sum, 2 * g.edge_count());
        // BA with m = 2 on n sites starting from a 3-clique.
        assert_eq!(g.edge_count(), 3 + 2 * (300 - 3));
    }

    #[test]
    fn neighbors_are_sorted_simple_and_loop_free() {
        let g = DegreeGraph::scale_free(400, 3, 11);
        for i in 0..g.site_count() {
            let n = g.neighbors(i);
            assert!(n.windows(2).all(|w| w[0] < w[1]), "site {i}: {n:?}");
            assert!(n.iter().all(|&t| t as usize != i));
            assert!(n.iter().all(|&t| (t as usize) < g.site_count()));
        }
    }

    #[test]
    fn attachment_is_preferential() {
        // A hub should emerge: max degree far above the attachment count,
        // while the median site stays near it — the heavy tail uniform
        // graphs lack.
        let g = DegreeGraph::scale_free(2_000, 2, 1);
        let mut degrees: Vec<usize> = (0..g.site_count()).map(|i| g.degree(i)).collect();
        degrees.sort_unstable();
        let median = degrees[degrees.len() / 2];
        let max = *degrees.last().unwrap();
        assert!(median <= 4, "median degree {median}");
        assert!(max >= 10 * median, "max {max} vs median {median}");
        assert!(degrees[0] >= 2, "every arrival linked m times");
    }

    #[test]
    fn graph_is_connected() {
        let g = DegreeGraph::scale_free(1_000, 2, 9);
        let mut seen = vec![false; g.site_count()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(i) = stack.pop() {
            count += 1;
            for &t in g.neighbors(i) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t as usize);
                }
            }
        }
        assert_eq!(count, g.site_count());
    }

    #[test]
    fn tiny_graphs_fall_back_to_cliques() {
        let g = DegreeGraph::scale_free(2, 3, 0);
        assert_eq!(g.site_count(), 2);
        assert_eq!(g.neighbors(0), [1]);
        assert_eq!(g.neighbors(1), [0]);
    }

    #[test]
    fn from_edges_builds_exact_adjacency() {
        let g = DegreeGraph::from_edges(4, &[(0, 1), (1, 2), (3, 1)]);
        assert_eq!(g.neighbors(0), [1]);
        assert_eq!(g.neighbors(1), [0, 2, 3]);
        assert_eq!(g.neighbors(2), [1]);
        assert_eq!(g.neighbors(3), [1]);
        assert_eq!(g.edge_count(), 3);
    }
}
