//! Undirected network topologies with database sites and relay nodes.

use std::fmt;

use epidemic_db::SiteId;

/// Identifier of an undirected link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(usize);

impl LinkId {
    /// The link's index into [`Topology::links`].
    pub const fn index(self) -> usize {
        self.0
    }

    /// Creates a link id from a raw index. Only meaningful for the topology
    /// that produced the index.
    pub(crate) const fn from_index(index: usize) -> Self {
        LinkId(index)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Errors from [`TopologyBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The topology has no database sites.
    NoSites,
    /// The graph is not connected; the payload is an unreachable node.
    Disconnected(SiteId),
    /// A link references a node that was never declared.
    UnknownNode(SiteId),
    /// A link connects a node to itself.
    SelfLoop(SiteId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoSites => write!(f, "topology declares no database sites"),
            TopologyError::Disconnected(n) => {
                write!(f, "node {n} is unreachable from node s0")
            }
            TopologyError::UnknownNode(n) => write!(f, "link references unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A connected, undirected network of nodes, some of which host database
/// replicas ("sites") while others are pure relays (gateways, internetwork
/// routers). Links are unweighted; distance is hop count.
///
/// Node identifiers are [`SiteId`]s even for relay nodes — only those listed
/// by [`Topology::sites`] participate in the epidemic protocols.
///
/// # Example
///
/// ```
/// use epidemic_net::TopologyBuilder;
///
/// // s0 -- s1 -- s2, with s1 a pure relay.
/// let mut b = TopologyBuilder::new();
/// let s0 = b.add_site("a");
/// let relay = b.add_relay("gw");
/// let s2 = b.add_site("b");
/// b.link(s0, relay);
/// b.link(relay, s2);
/// let topo = b.build()?;
/// assert_eq!(topo.sites(), [s0, s2]);
/// assert_eq!(topo.node_count(), 3);
/// # Ok::<(), epidemic_net::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    labels: Vec<String>,
    is_site: Vec<bool>,
    sites: Vec<SiteId>,
    links: Vec<(SiteId, SiteId)>,
    costs: Vec<u32>,
    adjacency: Vec<Vec<(SiteId, LinkId)>>,
}

impl Topology {
    /// Total number of nodes, sites plus relays.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of database sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The database sites, in id order.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Whether `node` hosts a database replica.
    pub fn is_site(&self, node: SiteId) -> bool {
        self.is_site[node.as_usize()]
    }

    /// The label given to `node` at construction time.
    pub fn label(&self, node: SiteId) -> &str {
        &self.labels[node.as_usize()]
    }

    /// The endpoints of `link`.
    pub fn endpoints(&self, link: LinkId) -> (SiteId, SiteId) {
        self.links[link.index()]
    }

    /// All links as `(a, b)` endpoint pairs, indexable by [`LinkId`].
    pub fn links(&self) -> &[(SiteId, SiteId)] {
        &self.links
    }

    /// Neighbors of `node` with the links that reach them.
    pub fn neighbors(&self, node: SiteId) -> &[(SiteId, LinkId)] {
        &self.adjacency[node.as_usize()]
    }

    /// The traversal cost of `link` (1 for ordinary links; higher for slow
    /// lines added with [`TopologyBuilder::link_weighted`]).
    pub fn link_cost(&self, link: LinkId) -> u32 {
        self.costs[link.index()]
    }

    /// Whether every link has unit cost (routing can use plain BFS).
    pub fn is_unit_cost(&self) -> bool {
        self.costs.iter().all(|&c| c == 1)
    }

    /// Finds the link between two adjacent nodes, if one exists.
    pub fn link_between(&self, a: SiteId, b: SiteId) -> Option<LinkId> {
        self.adjacency[a.as_usize()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, l)| *l)
    }

    /// Finds a node by label.
    pub fn node_by_label(&self, label: &str) -> Option<SiteId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| SiteId::new(i as u32))
    }
}

/// Incremental builder for [`Topology`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    labels: Vec<String>,
    is_site: Vec<bool>,
    links: Vec<(SiteId, SiteId)>,
    costs: Vec<u32>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a database site and returns its id.
    pub fn add_site(&mut self, label: impl Into<String>) -> SiteId {
        self.add_node(label.into(), true)
    }

    /// Adds a relay node (gateway/router with no replica) and returns its id.
    pub fn add_relay(&mut self, label: impl Into<String>) -> SiteId {
        self.add_node(label.into(), false)
    }

    fn add_node(&mut self, label: String, site: bool) -> SiteId {
        let id = SiteId::new(self.labels.len() as u32);
        self.labels.push(label);
        self.is_site.push(site);
        id
    }

    /// Adds an undirected unit-cost link between two existing nodes.
    /// Returns the id it will have in the built topology.
    pub fn link(&mut self, a: SiteId, b: SiteId) -> LinkId {
        self.link_weighted(a, b, 1)
    }

    /// Adds an undirected link with a traversal `cost ≥ 1` — e.g. a slow
    /// phone line in a network of Ethernets. Distance-based spatial
    /// distributions then see sites across the line as proportionally
    /// farther away.
    ///
    /// # Panics
    ///
    /// Panics if `cost == 0`.
    pub fn link_weighted(&mut self, a: SiteId, b: SiteId, cost: u32) -> LinkId {
        assert!(cost >= 1, "link cost must be at least 1");
        let id = LinkId(self.links.len());
        self.links.push((a, b));
        self.costs.push(cost);
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Validates and builds the topology.
    ///
    /// # Errors
    ///
    /// Returns an error if the topology has no sites, a link references an
    /// undeclared node or forms a self-loop, or the graph is disconnected.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let n = self.labels.len();
        let sites: Vec<SiteId> = (0..n)
            .filter(|&i| self.is_site[i])
            .map(|i| SiteId::new(i as u32))
            .collect();
        if sites.is_empty() {
            return Err(TopologyError::NoSites);
        }
        let mut adjacency: Vec<Vec<(SiteId, LinkId)>> = vec![Vec::new(); n];
        for (idx, &(a, b)) in self.links.iter().enumerate() {
            if a.as_usize() >= n {
                return Err(TopologyError::UnknownNode(a));
            }
            if b.as_usize() >= n {
                return Err(TopologyError::UnknownNode(b));
            }
            if a == b {
                return Err(TopologyError::SelfLoop(a));
            }
            let link = LinkId(idx);
            adjacency[a.as_usize()].push((b, link));
            adjacency[b.as_usize()].push((a, link));
        }
        // Deterministic neighbor order (BFS tie-breaking, reproducibility).
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        // Connectivity check from node 0.
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &adjacency[u] {
                if !seen[v.as_usize()] {
                    seen[v.as_usize()] = true;
                    queue.push_back(v.as_usize());
                }
            }
        }
        if let Some(i) = seen.iter().position(|s| !s) {
            return Err(TopologyError::Disconnected(SiteId::new(i as u32)));
        }
        Ok(Topology {
            labels: self.labels.clone(),
            is_site: self.is_site.clone(),
            sites,
            links: self.links.clone(),
            costs: self.costs.clone(),
            adjacency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_topology() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a");
        let c = b.add_site("c");
        let r = b.add_relay("r");
        b.link(a, r);
        b.link(r, c);
        let t = b.build().unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.site_count(), 2);
        assert_eq!(t.link_count(), 2);
        assert!(t.is_site(a));
        assert!(!t.is_site(r));
        assert_eq!(t.label(r), "r");
        assert_eq!(t.node_by_label("c"), Some(c));
        assert_eq!(t.node_by_label("zzz"), None);
    }

    #[test]
    fn rejects_empty_and_disconnected() {
        assert_eq!(
            TopologyBuilder::new().build().unwrap_err(),
            TopologyError::NoSites
        );
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a");
        let c = b.add_site("c");
        let d = b.add_site("d");
        b.link(a, c);
        assert_eq!(b.build().unwrap_err(), TopologyError::Disconnected(d));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a");
        b.link(a, a);
        assert_eq!(b.build().unwrap_err(), TopologyError::SelfLoop(a));
    }

    #[test]
    fn link_between_finds_links() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a");
        let c = b.add_site("c");
        let d = b.add_site("d");
        let l = b.link(a, c);
        b.link(c, d);
        let t = b.build().unwrap();
        assert_eq!(t.link_between(a, c), Some(l));
        assert_eq!(t.link_between(c, a), Some(l));
        assert_eq!(t.link_between(a, d), None);
        assert_eq!(t.endpoints(l), (a, c));
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = TopologyBuilder::new();
        let hub = b.add_site("hub");
        let spokes: Vec<_> = (0..5).map(|i| b.add_site(format!("s{i}"))).collect();
        // Link in reverse order; adjacency must still come out sorted.
        for s in spokes.iter().rev() {
            b.link(hub, *s);
        }
        let t = b.build().unwrap();
        let ns: Vec<_> = t.neighbors(hub).iter().map(|(n, _)| *n).collect();
        let mut sorted = ns.clone();
        sorted.sort();
        assert_eq!(ns, sorted);
    }

    #[test]
    fn error_display_is_informative() {
        let err = TopologyError::Disconnected(SiteId::new(4));
        assert!(err.to_string().contains("s4"));
    }
}

impl Topology {
    /// Renders the topology in Graphviz DOT format: database sites as
    /// ellipses, relay nodes as boxes. Handy for eyeballing generated
    /// networks (`dot -Tsvg`).
    ///
    /// # Example
    ///
    /// ```
    /// use epidemic_net::topologies;
    /// let dot = topologies::line(3).to_dot();
    /// assert!(dot.starts_with("graph topology {"));
    /// assert!(dot.contains("n0 -- n1"));
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("graph topology {\n");
        for i in 0..self.node_count() {
            let node = SiteId::new(i as u32);
            let shape = if self.is_site(node) { "ellipse" } else { "box" };
            writeln!(
                out,
                "  n{i} [label=\"{}\", shape={shape}];",
                self.label(node)
            )
            .expect("writing to a String cannot fail");
        }
        for &(a, b) in self.links() {
            writeln!(out, "  n{} -- n{};", a.index(), b.index())
                .expect("writing to a String cannot fail");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_contains_every_node_and_link() {
        let mut b = TopologyBuilder::new();
        let s = b.add_site("alpha");
        let r = b.add_relay("gw");
        b.link(s, r);
        let t = b.build().unwrap();
        let dot = t.to_dot();
        assert!(dot.contains("label=\"alpha\", shape=ellipse"));
        assert!(dot.contains("label=\"gw\", shape=box"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.ends_with("}\n"));
    }
}
