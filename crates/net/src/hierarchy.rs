//! Hierarchical partner selection — the paper's §4 future work.
//!
//! "Better performance might be achieved by constructing a dynamic
//! hierarchy, in which sites at high levels contact other high level
//! servers at long distances and lower level servers at short distances."
//!
//! This module implements that sketch as a two-level scheme:
//! *representatives* are chosen by a deterministic greedy k-center over hop
//! distances (so they spread across the network); every site usually
//! gossips locally (any [`Spatial`] distribution), but a representative
//! occasionally contacts another representative chosen uniformly at random,
//! giving the network a small long-haul backbone with bounded traffic.
//!
//! The [`PartnerSelection`] trait is the abstraction point: the simulators
//! accept any implementation, so flat spatial distributions and the
//! hierarchy can be compared like for like (see the `ablation-hierarchy`
//! experiment in `epidemic-bench`).

use epidemic_db::SiteId;
use rand::{Rng, RngExt};

use crate::graph::Topology;
use crate::routing::Routes;
use crate::spatial::{PartnerSampler, Spatial};

/// A partner-selection strategy: given a chooser, draw a gossip partner.
///
/// Implemented by [`PartnerSampler`] (flat spatial distributions) and
/// [`HierarchicalSampler`] (§4's two-level scheme).
pub trait PartnerSelection {
    /// Draws a partner for `from`. Never returns `from` itself.
    fn select(&self, from: SiteId, rng: &mut dyn Rng) -> SiteId;
}

impl PartnerSelection for PartnerSampler {
    fn select(&self, from: SiteId, rng: &mut dyn Rng) -> SiteId {
        self.sample(from, rng)
    }
}

impl<T: PartnerSelection + ?Sized> PartnerSelection for &T {
    fn select(&self, from: SiteId, rng: &mut dyn Rng) -> SiteId {
        (**self).select(from, rng)
    }
}

/// Two-level hierarchical sampler (§4 future work).
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, HierarchicalSampler, Routes, Spatial};
/// use epidemic_net::hierarchy::PartnerSelection;
/// use rand::SeedableRng;
///
/// let topo = topologies::grid(&[6, 6]);
/// let routes = Routes::compute(&topo);
/// let h = HierarchicalSampler::new(&topo, &routes, 4, 0.5, Spatial::QsPower { a: 2.0 });
/// assert_eq!(h.representatives().len(), 4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let from = topo.sites()[0];
/// assert_ne!(h.select(from, &mut rng), from);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalSampler {
    local: PartnerSampler,
    representatives: Vec<SiteId>,
    is_representative: Vec<bool>,
    long_range: f64,
}

impl HierarchicalSampler {
    /// Builds the hierarchy: `reps` representatives chosen by greedy
    /// k-center, each contacting a random other representative with
    /// probability `long_range` and gossiping `local`ly otherwise.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= reps <= site count` and
    /// `0.0 <= long_range <= 1.0`.
    pub fn new(
        topology: &Topology,
        routes: &Routes,
        reps: usize,
        long_range: f64,
        local: Spatial,
    ) -> Self {
        assert!(
            reps >= 2 && reps <= topology.site_count(),
            "need between 2 and n representatives"
        );
        assert!((0.0..=1.0).contains(&long_range));
        let representatives = greedy_k_center(topology, routes, reps);
        let mut is_representative = vec![false; topology.node_count()];
        for &r in &representatives {
            is_representative[r.as_usize()] = true;
        }
        HierarchicalSampler {
            local: PartnerSampler::new(topology, routes, local),
            representatives,
            is_representative,
            long_range,
        }
    }

    /// The chosen representative sites.
    pub fn representatives(&self) -> &[SiteId] {
        &self.representatives
    }

    /// Whether `site` is a representative.
    pub fn is_representative(&self, site: SiteId) -> bool {
        self.is_representative[site.as_usize()]
    }
}

impl PartnerSelection for HierarchicalSampler {
    fn select(&self, from: SiteId, rng: &mut dyn Rng) -> SiteId {
        if self.is_representative(from) && rng.random::<f64>() < self.long_range {
            // Long-haul hop: a uniform random *other* representative.
            let others: Vec<SiteId> = self
                .representatives
                .iter()
                .copied()
                .filter(|&r| r != from)
                .collect();
            others[rng.random_range(0..others.len())]
        } else {
            self.local.sample(from, rng)
        }
    }
}

/// Deterministic greedy k-center over hop distance: start from the site
/// with the smallest id, repeatedly add the site farthest from the chosen
/// set. Spreads representatives across the network's regions.
fn greedy_k_center(topology: &Topology, routes: &Routes, k: usize) -> Vec<SiteId> {
    let sites = topology.sites();
    let mut chosen = vec![sites[0]];
    let mut dist_to_chosen: Vec<u32> = sites
        .iter()
        .map(|&s| routes.distance(sites[0], s))
        .collect();
    while chosen.len() < k {
        let (best_idx, _) = sites
            .iter()
            .enumerate()
            .max_by_key(|&(i, _)| (dist_to_chosen[i], std::cmp::Reverse(i)))
            .expect("sites is non-empty");
        let next = sites[best_idx];
        chosen.push(next);
        for (i, &s) in sites.iter().enumerate() {
            dist_to_chosen[i] = dist_to_chosen[i].min(routes.distance(next, s));
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k_center_spreads_representatives() {
        let topo = topologies::line(20);
        let routes = Routes::compute(&topo);
        let h = HierarchicalSampler::new(&topo, &routes, 3, 0.5, Spatial::Uniform);
        let reps = h.representatives();
        assert_eq!(reps.len(), 3);
        // On a line the first three k-center picks are an end, the other
        // end, and (near) the middle.
        let positions: Vec<u32> = reps.iter().map(|r| r.index()).collect();
        assert!(positions.contains(&0));
        assert!(positions.contains(&19));
        assert!(positions.iter().any(|&p| (7..=12).contains(&p)));
    }

    #[test]
    fn representatives_make_long_hops() {
        let topo = topologies::line(30);
        let routes = Routes::compute(&topo);
        let h = HierarchicalSampler::new(&topo, &routes, 3, 1.0, Spatial::QsPower { a: 2.0 });
        let rep = h.representatives()[0];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let p = h.select(rep, &mut rng);
            assert!(h.is_representative(p), "long_range=1 always picks reps");
            assert_ne!(p, rep);
        }
    }

    #[test]
    fn leaves_always_gossip_locally() {
        let topo = topologies::line(30);
        let routes = Routes::compute(&topo);
        let h = HierarchicalSampler::new(&topo, &routes, 2, 1.0, Spatial::QsPower { a: 2.0 });
        let leaf = topo.sites()[15];
        assert!(!h.is_representative(leaf));
        let mut rng = StdRng::seed_from_u64(5);
        // Local Qs^-2 selection strongly favors neighbors.
        let mut near = 0;
        for _ in 0..2_000 {
            let p = h.select(leaf, &mut rng);
            if routes.distance(leaf, p) <= 2 {
                near += 1;
            }
        }
        assert!(near > 1_000, "near picks {near}/2000");
    }

    #[test]
    fn deterministic_representative_choice() {
        let net = topologies::cin(&topologies::CinConfig::default());
        let routes = Routes::compute(&net.topology);
        let a = HierarchicalSampler::new(&net.topology, &routes, 8, 0.3, Spatial::Uniform);
        let b = HierarchicalSampler::new(&net.topology, &routes, 8, 0.3, Spatial::Uniform);
        assert_eq!(a.representatives(), b.representatives());
    }

    #[test]
    #[should_panic(expected = "representatives")]
    fn rejects_too_few_reps() {
        let topo = topologies::ring(6);
        let routes = Routes::compute(&topo);
        HierarchicalSampler::new(&topo, &routes, 1, 0.5, Spatial::Uniform);
    }
}
