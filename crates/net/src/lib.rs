//! Network-topology substrate for the epidemic algorithms (paper §3).
//!
//! Section 3 of Demers et al. studies *spatial distributions*: choosing
//! anti-entropy and rumor-mongering partners with probability that decays
//! with network distance, so that traffic on critical links (such as the
//! CIN's transatlantic link to Bushey, England) stays bounded. This crate
//! provides everything those experiments need:
//!
//! * undirected topologies with *database sites* and plain *relay nodes*
//!   ([`Topology`], [`TopologyBuilder`]) — the paper notes "we are not
//!   required to have a database site at every network node";
//! * all-pairs shortest-path routing and per-link route enumeration
//!   ([`Routes`]);
//! * the cumulative-distance function `Q_s(d)` and the partner-selection
//!   distributions of §3.1, including equation (3.1.1) ([`Spatial`],
//!   [`PartnerSampler`]);
//! * per-link traffic accounting ([`LinkTraffic`]);
//! * a zoo of topologies used by the paper's analyses: lines, grids, trees,
//!   the Figure 1 / Figure 2 pathologies, and a seeded synthetic stand-in
//!   for the Xerox Corporate Internet ([`topologies`]);
//! * the §4 future-work *dynamic hierarchy* as a [`PartnerSelection`]
//!   strategy ([`hierarchy`]).
//!
//! # Example
//!
//! ```
//! use epidemic_net::{topologies, Spatial, PartnerSampler, Routes};
//! use rand::SeedableRng;
//!
//! let topo = topologies::line(10);
//! let routes = Routes::compute(&topo);
//! let sampler = PartnerSampler::new(&topo, &routes, Spatial::QsPower { a: 2.0 });
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let partner = sampler.sample(topo.sites()[0], &mut rng);
//! assert_ne!(partner, topo.sites()[0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree;
pub mod graph;
pub mod hierarchy;
pub mod routing;
pub mod spatial;
pub mod topologies;
pub mod traffic;

pub use degree::DegreeGraph;
pub use graph::{LinkId, Topology, TopologyBuilder, TopologyError};
pub use hierarchy::{HierarchicalSampler, PartnerSelection};
pub use routing::Routes;
pub use spatial::{cumulative_sites, expected_cut_conversations, PartnerSampler, Spatial};
pub use traffic::LinkTraffic;

pub use epidemic_db::SiteId;
