//! All-pairs shortest-path routing and route/link enumeration.
//!
//! The spatial-distribution experiments (paper §3.1) charge every
//! anti-entropy conversation to each link on the shortest route between the
//! two participants. This module precomputes hop distances and first-hop
//! tables with one BFS per node; ties are broken toward the smallest node
//! id, so routes are deterministic and consistent across runs.

use std::collections::VecDeque;

use epidemic_db::SiteId;

use crate::graph::{LinkId, Topology};

/// Hop distance used in distance matrices. `u32::MAX` is reserved for
/// "unreachable", which a validated [`Topology`] never produces.
pub type Hops = u32;

/// Precomputed all-pairs shortest-path data for a [`Topology`].
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, Routes};
/// let topo = topologies::line(5);
/// let routes = Routes::compute(&topo);
/// let s = topo.sites();
/// assert_eq!(routes.distance(s[0], s[4]), 4);
/// assert_eq!(routes.route_links(s[0], s[2]).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Routes {
    n: usize,
    dist: Vec<Hops>,
    // first_hop[src][dst] = neighbor of src on the (tie-broken) shortest
    // path toward dst, along with the link to that neighbor.
    first_hop: Vec<Option<(SiteId, LinkId)>>,
    diameter: Hops,
}

impl Routes {
    /// Builds distance and first-hop tables: one BFS per node on
    /// unit-cost topologies, one Dijkstra per node otherwise. Ties break
    /// toward the smallest node id either way.
    pub fn compute(topology: &Topology) -> Self {
        let n = topology.node_count();
        let mut dist = vec![Hops::MAX; n * n];
        let mut first_hop: Vec<Option<(SiteId, LinkId)>> = vec![None; n * n];
        let mut diameter = 0;
        let unit = topology.is_unit_cost();
        for src in 0..n {
            let base = src * n;
            dist[base + src] = 0;
            if unit {
                let mut queue = VecDeque::from([SiteId::new(src as u32)]);
                while let Some(u) = queue.pop_front() {
                    let du = dist[base + u.as_usize()];
                    for &(v, link) in topology.neighbors(u) {
                        if dist[base + v.as_usize()] != Hops::MAX {
                            continue;
                        }
                        dist[base + v.as_usize()] = du + 1;
                        diameter = diameter.max(du + 1);
                        // First hop toward v: if u is the source, the first
                        // hop is v itself; otherwise inherit u's first hop.
                        first_hop[base + v.as_usize()] = if u.as_usize() == src {
                            Some((v, link))
                        } else {
                            first_hop[base + u.as_usize()]
                        };
                        queue.push_back(v);
                    }
                }
            } else {
                // Dijkstra with (distance, node) keys for deterministic
                // tie-breaking.
                use std::cmp::Reverse;
                use std::collections::BinaryHeap;
                let mut heap: BinaryHeap<Reverse<(Hops, usize)>> =
                    BinaryHeap::from([Reverse((0, src))]);
                while let Some(Reverse((du, u))) = heap.pop() {
                    if du > dist[base + u] {
                        continue;
                    }
                    for &(v, link) in topology.neighbors(SiteId::new(u as u32)) {
                        let dv = du + topology.link_cost(link);
                        let slot = &mut dist[base + v.as_usize()];
                        if dv < *slot {
                            *slot = dv;
                            diameter = diameter.max(dv);
                            first_hop[base + v.as_usize()] = if u == src {
                                Some((v, link))
                            } else {
                                first_hop[base + u]
                            };
                            heap.push(Reverse((dv, v.as_usize())));
                        }
                    }
                }
            }
        }
        Routes {
            n,
            dist,
            first_hop,
            diameter,
        }
    }

    /// Hop distance between two nodes.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the topology.
    pub fn distance(&self, from: SiteId, to: SiteId) -> Hops {
        self.dist[from.as_usize() * self.n + to.as_usize()]
    }

    /// The largest hop distance between any two nodes.
    pub fn diameter(&self) -> Hops {
        self.diameter
    }

    /// The links on the shortest route `from → to`, in traversal order.
    /// Empty when `from == to`.
    pub fn route_links(&self, from: SiteId, to: SiteId) -> Vec<LinkId> {
        let mut links = Vec::with_capacity(self.distance(from, to) as usize);
        let mut cur = from;
        while cur != to {
            let (next, link) = self.first_hop[cur.as_usize() * self.n + to.as_usize()]
                .expect("validated topologies are connected");
            links.push(link);
            cur = next;
        }
        links
    }

    /// Visits each link on the shortest route `from → to` without
    /// allocating.
    pub fn for_each_route_link(&self, from: SiteId, to: SiteId, mut f: impl FnMut(LinkId)) {
        let mut cur = from;
        while cur != to {
            let (next, link) = self.first_hop[cur.as_usize() * self.n + to.as_usize()]
                .expect("validated topologies are connected");
            f(link);
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TopologyBuilder;
    use crate::topologies;

    #[test]
    fn line_distances() {
        let topo = topologies::line(6);
        let routes = Routes::compute(&topo);
        let s = topo.sites();
        for i in 0..6usize {
            for j in 0..6usize {
                assert_eq!(routes.distance(s[i], s[j]), i.abs_diff(j) as u32);
            }
        }
        assert_eq!(routes.diameter(), 5);
    }

    #[test]
    fn route_links_match_distance() {
        let topo = topologies::grid(&[4, 4]);
        let routes = Routes::compute(&topo);
        for &a in topo.sites() {
            for &b in topo.sites() {
                let links = routes.route_links(a, b);
                assert_eq!(links.len() as u32, routes.distance(a, b));
            }
        }
    }

    #[test]
    fn route_is_a_connected_path() {
        let topo = topologies::binary_tree(4);
        let routes = Routes::compute(&topo);
        let sites = topo.sites();
        let (a, b) = (sites[1], sites[sites.len() - 1]);
        let links = routes.route_links(a, b);
        let mut cur = a;
        for link in links {
            let (x, y) = topo.endpoints(link);
            cur = if x == cur { y } else { x };
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn for_each_matches_collected_route() {
        let topo = topologies::ring(8);
        let routes = Routes::compute(&topo);
        let s = topo.sites();
        let collected = routes.route_links(s[0], s[3]);
        let mut visited = Vec::new();
        routes.for_each_route_link(s[0], s[3], |l| visited.push(l));
        assert_eq!(collected, visited);
    }

    #[test]
    fn ties_break_deterministically() {
        // A 4-cycle has two equal routes between opposite corners; BFS with
        // sorted adjacency must always pick the same one.
        let mut b = TopologyBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_site(format!("n{i}"))).collect();
        b.link(n[0], n[1]);
        b.link(n[1], n[2]);
        b.link(n[2], n[3]);
        b.link(n[3], n[0]);
        let topo = b.build().unwrap();
        let r1 = Routes::compute(&topo);
        let r2 = Routes::compute(&topo);
        assert_eq!(r1.route_links(n[0], n[2]), r2.route_links(n[0], n[2]));
        assert_eq!(r1.distance(n[0], n[2]), 2);
    }
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use crate::graph::TopologyBuilder;

    #[test]
    fn dijkstra_prefers_cheap_detours() {
        // a --10-- b, but a-1-c-1-b exists: the detour wins.
        let mut builder = TopologyBuilder::new();
        let a = builder.add_site("a");
        let b = builder.add_site("b");
        let c = builder.add_relay("c");
        let direct = builder.link_weighted(a, b, 10);
        let l1 = builder.link(a, c);
        let l2 = builder.link(c, b);
        let topo = builder.build().unwrap();
        let routes = Routes::compute(&topo);
        assert_eq!(routes.distance(a, b), 2);
        assert_eq!(routes.route_links(a, b), vec![l1, l2]);
        assert_ne!(routes.route_links(a, b)[0], direct);
    }

    #[test]
    fn weighted_distances_are_symmetric_and_metric() {
        let mut builder = TopologyBuilder::new();
        let nodes: Vec<_> = (0..5).map(|i| builder.add_site(format!("n{i}"))).collect();
        builder.link_weighted(nodes[0], nodes[1], 2);
        builder.link_weighted(nodes[1], nodes[2], 3);
        builder.link(nodes[2], nodes[3]);
        builder.link_weighted(nodes[3], nodes[4], 5);
        builder.link_weighted(nodes[0], nodes[4], 4);
        let topo = builder.build().unwrap();
        let routes = Routes::compute(&topo);
        for &x in topo.sites() {
            for &y in topo.sites() {
                assert_eq!(routes.distance(x, y), routes.distance(y, x));
                for &z in topo.sites() {
                    assert!(routes.distance(x, y) <= routes.distance(x, z) + routes.distance(z, y));
                }
            }
        }
        // 0→3: direct chain costs 2+3+1=6; via 4 costs 4+5=9.
        assert_eq!(routes.distance(nodes[0], nodes[3]), 6);
    }

    #[test]
    fn unit_cost_weighted_matches_bfs() {
        // link_weighted(.., 1) must behave exactly like link().
        let mut b1 = TopologyBuilder::new();
        let mut b2 = TopologyBuilder::new();
        let x1: Vec<_> = (0..6).map(|i| b1.add_site(format!("n{i}"))).collect();
        let x2: Vec<_> = (0..6).map(|i| b2.add_site(format!("n{i}"))).collect();
        for i in 0..5 {
            b1.link(x1[i], x1[i + 1]);
            b2.link_weighted(x2[i], x2[i + 1], 1);
        }
        // Force the Dijkstra path on b2 by adding one weighted chord.
        b2.link_weighted(x2[0], x2[5], 5);
        let t1 = b1.build().unwrap();
        let t2 = b2.build().unwrap();
        let r1 = Routes::compute(&t1);
        let r2 = Routes::compute(&t2);
        for i in 0..6u32 {
            for j in 0..6u32 {
                assert_eq!(
                    r1.distance(i.into(), j.into()),
                    r2.distance(i.into(), j.into())
                );
            }
        }
    }

    #[test]
    fn distance_power_sees_link_weights_but_qs_adapts_to_counts() {
        use crate::spatial::{PartnerSampler, Spatial};
        // Two clusters joined by an expensive line. A raw d^-2 chooser
        // almost never crosses (the far cluster is 20+ away), while the
        // Qs(d)^-2 chooser — which §3 designed to adapt to *site counts*,
        // not absolute distances — still crosses at the count-determined
        // rate. This is exactly the paper's distinction between the two
        // families.
        let mut builder = TopologyBuilder::new();
        let left: Vec<_> = (0..5).map(|i| builder.add_site(format!("l{i}"))).collect();
        let right: Vec<_> = (0..5).map(|i| builder.add_site(format!("r{i}"))).collect();
        for w in left.windows(2) {
            builder.link(w[0], w[1]);
        }
        for w in right.windows(2) {
            builder.link(w[0], w[1]);
        }
        builder.link_weighted(left[4], right[0], 20);
        let topo = builder.build().unwrap();
        let routes = Routes::compute(&topo);
        let crossing = |spatial| {
            let sampler = PartnerSampler::new(&topo, &routes, spatial);
            right
                .iter()
                .map(|&r| sampler.probability(left[0], r))
                .sum::<f64>()
        };
        let d_power = crossing(Spatial::DistancePower { a: 2.0 });
        let qs_power = crossing(Spatial::QsPower { a: 2.0 });
        assert!(d_power < 0.02, "d^-2 crossing probability {d_power}");
        assert!(
            qs_power > 0.05,
            "Qs^-2 crossing probability {qs_power} should reflect counts"
        );
    }

    #[test]
    #[should_panic(expected = "cost must be at least 1")]
    fn zero_cost_links_are_rejected() {
        let mut builder = TopologyBuilder::new();
        let a = builder.add_site("a");
        let b = builder.add_site("b");
        builder.link_weighted(a, b, 0);
    }
}
