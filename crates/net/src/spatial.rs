//! Spatial partner-selection distributions (paper §3–3.1).
//!
//! Uniform partner choice overloads critical links: on the CIN, the two
//! transatlantic links carried an expected `2·n₁·n₂/(n₁+n₂)` conversations
//! per anti-entropy round. The paper's remedy is to choose partners with
//! probability decaying in network distance `d` — either directly (`d^-a`)
//! or, better, through the cumulative-count function `Q_s(d)` = number of
//! sites within distance `d` of `s`, which adapts to the network's "local
//! dimension". Equation (3.1.1) derives the per-distance probability from a
//! sorted-list weighting `f(i) = i^-a`:
//!
//! ```text
//! p(d) ≈ (Q(d-1)^(1-a) − Q(d)^(1-a)) / (Q(d) − Q(d-1))
//! ```
//!
//! with one added to `Q` throughout to avoid the singularity at `Q(d) = 0`.

use epidemic_db::SiteId;
use rand::{Rng, RngExt};

use crate::graph::Topology;
use crate::routing::Routes;

/// A partner-selection distribution over network distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spatial {
    /// Every other site is equally likely (§1's baseline).
    Uniform,
    /// Probability proportional to `d^-a` — the linear-network analysis of
    /// §3. Performs worse than [`Spatial::QsPower`] on irregular networks.
    DistancePower {
        /// Decay exponent `a`.
        a: f64,
    },
    /// Equation (3.1.1): probability derived from `Q_s(d)` with the
    /// integral approximation of `Σ f(i)`, `f(i) = i^-a`. The distribution
    /// used in the Table 4/5 experiments and the production Clearinghouse
    /// release (`a = 2`).
    QsPower {
        /// Decay exponent `a`.
        a: f64,
    },
    /// The exact form of (3.1.1): average `f(i) = i^-a` over the sorted-list
    /// positions occupied by sites at each distance, with no integral
    /// approximation. Provided for ablation against [`Spatial::QsPower`].
    PositionPower {
        /// Decay exponent `a`.
        a: f64,
    },
}

impl Spatial {
    /// Unnormalized selection weight for one site at distance `d` from the
    /// chooser, given the chooser's cumulative counts `q_prev = Q(d-1)` and
    /// `q = Q(d)` (site counts, excluding the chooser itself).
    fn weight(self, d: u32, q_prev: usize, q: usize) -> f64 {
        debug_assert!(d >= 1 && q > q_prev);
        match self {
            Spatial::Uniform => 1.0,
            Spatial::DistancePower { a } => f64::from(d).powf(-a),
            Spatial::QsPower { a } => {
                // +1 regularization per the paper's footnote to (3.1.1).
                let qp = (q_prev + 1) as f64;
                let qc = (q + 1) as f64;
                let width = (q - q_prev) as f64;
                if (a - 1.0).abs() < 1e-9 {
                    // lim a→1 of (qp^(1-a) − qc^(1-a))/(a-1) = ln(qc/qp).
                    (qc / qp).ln() / width
                } else {
                    // The paper's (3.1.1) drops the constant 1/(a-1): for
                    // a < 1 that constant is negative, so take the absolute
                    // difference to keep weights positive for every a.
                    (qp.powf(1.0 - a) - qc.powf(1.0 - a)).abs() / width
                }
            }
            Spatial::PositionPower { a } => {
                // Average f(i) = i^-a over positions q_prev+1 ..= q.
                let width = (q - q_prev) as f64;
                let sum: f64 = (q_prev + 1..=q).map(|i| (i as f64).powf(-a)).sum();
                sum / width
            }
        }
    }
}

/// Per-site precomputed sampling tables for a [`Spatial`] distribution on a
/// concrete topology.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, PartnerSampler, Routes, Spatial};
/// use rand::SeedableRng;
///
/// let topo = topologies::ring(12);
/// let routes = Routes::compute(&topo);
/// let sampler = PartnerSampler::new(&topo, &routes, Spatial::QsPower { a: 2.0 });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let from = topo.sites()[0];
/// // Nearby sites are strongly preferred under a = 2.
/// let near = sampler.probability(from, topo.sites()[1]);
/// let far = sampler.probability(from, topo.sites()[6]);
/// assert!(near > far);
/// let p = sampler.sample(from, &mut rng);
/// assert_ne!(p, from);
/// ```
#[derive(Debug, Clone)]
pub struct PartnerSampler {
    // Indexed by node id; `None` for relay nodes.
    rows: Vec<Option<SamplerRow>>,
}

#[derive(Debug, Clone)]
struct SamplerRow {
    targets: Vec<SiteId>,
    /// Cumulative probabilities, normalized so the last element is 1.0.
    cumulative: Vec<f64>,
}

impl PartnerSampler {
    /// Builds sampling tables for every site of `topology`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than two sites (there is no one to
    /// gossip with).
    pub fn new(topology: &Topology, routes: &Routes, spatial: Spatial) -> Self {
        assert!(
            topology.site_count() >= 2,
            "partner sampling requires at least two sites"
        );
        let mut rows = vec![None; topology.node_count()];
        for &s in topology.sites() {
            // Sort other sites by (distance, id): the paper's sorted list.
            let mut by_distance: Vec<(u32, SiteId)> = topology
                .sites()
                .iter()
                .filter(|&&t| t != s)
                .map(|&t| (routes.distance(s, t), t))
                .collect();
            by_distance.sort_unstable();

            let mut targets = Vec::with_capacity(by_distance.len());
            let mut weights = Vec::with_capacity(by_distance.len());
            let mut i = 0;
            let mut q_prev = 0usize; // Q(d-1)
            while i < by_distance.len() {
                let d = by_distance[i].0;
                let mut j = i;
                while j < by_distance.len() && by_distance[j].0 == d {
                    j += 1;
                }
                let q = q_prev + (j - i); // Q(d)
                let w = spatial.weight(d, q_prev, q);
                for &(_, t) in &by_distance[i..j] {
                    targets.push(t);
                    weights.push(w);
                }
                q_prev = q;
                i = j;
            }
            let total: f64 = weights.iter().sum();
            debug_assert!(total.is_finite() && total > 0.0);
            let mut acc = 0.0;
            let cumulative: Vec<f64> = weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect();
            rows[s.as_usize()] = Some(SamplerRow {
                targets,
                cumulative,
            });
        }
        PartnerSampler { rows }
    }

    /// Draws a partner for `from` according to the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `from` is a relay node rather than a database site.
    pub fn sample<R: Rng + ?Sized>(&self, from: SiteId, rng: &mut R) -> SiteId {
        let row = self.rows[from.as_usize()]
            .as_ref()
            .expect("relay nodes do not select partners");
        let u: f64 = rng.random();
        let idx = row.cumulative.partition_point(|&c| c < u);
        row.targets[idx.min(row.targets.len() - 1)]
    }

    /// The probability that `from` selects `to` on one draw. Zero if `to`
    /// is `from` itself or a relay.
    ///
    /// # Panics
    ///
    /// Panics if `from` is a relay node.
    pub fn probability(&self, from: SiteId, to: SiteId) -> f64 {
        let row = self.rows[from.as_usize()]
            .as_ref()
            .expect("relay nodes do not select partners");
        row.targets
            .iter()
            .position(|&t| t == to)
            .map(|i| {
                let lo = if i == 0 { 0.0 } else { row.cumulative[i - 1] };
                row.cumulative[i] - lo
            })
            .unwrap_or(0.0)
    }
}

/// Expected conversations per anti-entropy round crossing a cut that
/// separates `n1` from `n2` sites under *uniform* partner selection (§3.1).
///
/// Each of the `n1` sites picks a partner across the cut with probability
/// `n2/(n1+n2-1)` and vice versa; the paper quotes the large-n form
/// `2·n1·n2/(n1+n2)`, which this returns.
///
/// # Example
///
/// ```
/// use epidemic_net::expected_cut_conversations;
/// // The paper's CIN figures: tens in Europe, several hundred in NA → ~80.
/// let t = expected_cut_conversations(30.0, 220.0);
/// assert!((t - 52.8).abs() < 0.1);
/// ```
pub fn expected_cut_conversations(n1: f64, n2: f64) -> f64 {
    2.0 * n1 * n2 / (n1 + n2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(spatial: Spatial) -> (crate::Topology, PartnerSampler) {
        let topo = topologies::line(20);
        let routes = Routes::compute(&topo);
        let s = PartnerSampler::new(&topo, &routes, spatial);
        (topo, s)
    }

    #[test]
    fn probabilities_sum_to_one() {
        for spatial in [
            Spatial::Uniform,
            Spatial::DistancePower { a: 2.0 },
            Spatial::QsPower { a: 1.0 },
            Spatial::QsPower { a: 2.0 },
            Spatial::PositionPower { a: 2.0 },
        ] {
            let (topo, s) = sampler(spatial);
            for &from in topo.sites() {
                let total: f64 = topo.sites().iter().map(|&to| s.probability(from, to)).sum();
                assert!((total - 1.0).abs() < 1e-9, "{spatial:?}: {total}");
            }
        }
    }

    #[test]
    fn uniform_is_uniform() {
        let (topo, s) = sampler(Spatial::Uniform);
        let from = topo.sites()[0];
        let expected = 1.0 / 19.0;
        for &to in &topo.sites()[1..] {
            assert!((s.probability(from, to) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn qs_power_prefers_near_sites_monotonically() {
        let (topo, s) = sampler(Spatial::QsPower { a: 2.0 });
        let from = topo.sites()[0];
        let probs: Vec<f64> = topo.sites()[1..]
            .iter()
            .map(|&t| s.probability(from, t))
            .collect();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "{probs:?}");
        }
        assert!(probs[0] > probs[18] * 10.0);
    }

    #[test]
    fn qs_power_a2_matches_closed_form() {
        // For a=2 the (3.1.1) weight reduces to 1/((Q(d-1)+1)(Q(d)+1)).
        let (_, s) = sampler(Spatial::QsPower { a: 2.0 });
        // Site 0 on a line: exactly one site at each distance d ≥ 1, so
        // Q(d) = d and the weight at distance d is 1/(d(d+1)).
        let from = SiteId::new(0);
        let w = |d: usize| 1.0 / ((d as f64) * (d as f64 + 1.0));
        let total: f64 = (1..=19).map(w).sum();
        for d in 1..=19usize {
            let to = SiteId::new(d as u32);
            let got = s.probability(from, to);
            assert!((got - w(d) / total).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn sampling_matches_probabilities_empirically() {
        let (topo, s) = sampler(Spatial::QsPower { a: 1.4 });
        let from = topo.sites()[9]; // middle of the line
        let mut rng = StdRng::seed_from_u64(123);
        let n = 200_000;
        let mut counts = vec![0usize; topo.node_count()];
        for _ in 0..n {
            counts[s.sample(from, &mut rng).as_usize()] += 1;
        }
        assert_eq!(counts[from.as_usize()], 0);
        for &to in topo.sites() {
            let expected = s.probability(from, to);
            let observed = counts[to.as_usize()] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "{to}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn relay_nodes_are_never_sampled() {
        let topo = topologies::figure1(5);
        let routes = Routes::compute(&topo);
        let s = PartnerSampler::new(&topo, &routes, Spatial::QsPower { a: 2.0 });
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let from = topo.sites()[0];
            assert!(topo.is_site(s.sample(from, &mut rng)));
        }
    }

    #[test]
    fn a_equals_one_limit_is_finite() {
        let (topo, s) = sampler(Spatial::QsPower { a: 1.0 });
        let from = topo.sites()[0];
        let total: f64 = topo.sites().iter().map(|&t| s.probability(from, t)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn single_site_panics() {
        let mut b = crate::TopologyBuilder::new();
        b.add_site("only");
        let topo = b.build().unwrap();
        let routes = Routes::compute(&topo);
        PartnerSampler::new(&topo, &routes, Spatial::Uniform);
    }

    #[test]
    fn cut_formula_matches_paper_magnitude() {
        // "about 80 conversations" across the transatlantic cut with tens
        // in Europe and several hundred in North America.
        let t = expected_cut_conversations(50.0, 250.0);
        assert!((t - 83.33).abs() < 0.01);
    }
}

impl std::fmt::Display for Spatial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Spatial::Uniform => write!(f, "uniform"),
            Spatial::DistancePower { a } => write!(f, "d^-{a}"),
            Spatial::QsPower { a } => write!(f, "Qs(d)^-{a}"),
            Spatial::PositionPower { a } => write!(f, "pos^-{a} (exact)"),
        }
    }
}

/// The cumulative-distance function `Q_s(d)` of §3 for one site: the
/// number of *sites* (the chooser excluded) within each distinct distance,
/// as `(d, Q_s(d))` pairs in increasing `d`.
///
/// # Example
///
/// ```
/// use epidemic_net::{cumulative_sites, topologies, Routes};
/// let topo = topologies::line(5);
/// let routes = Routes::compute(&topo);
/// let q = cumulative_sites(&topo, &routes, topo.sites()[0]);
/// assert_eq!(q, vec![(1, 1), (2, 2), (3, 3), (4, 4)]);
/// ```
pub fn cumulative_sites(topology: &Topology, routes: &Routes, site: SiteId) -> Vec<(u32, usize)> {
    let mut distances: Vec<u32> = topology
        .sites()
        .iter()
        .filter(|&&t| t != site)
        .map(|&t| routes.distance(site, t))
        .collect();
    distances.sort_unstable();
    let mut out: Vec<(u32, usize)> = Vec::new();
    for (count, d) in distances.into_iter().enumerate() {
        match out.last_mut() {
            Some(last) if last.0 == d => last.1 = count + 1,
            _ => out.push((d, count + 1)),
        }
    }
    out
}

#[cfg(test)]
mod q_tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn q_counts_grid_neighborhoods() {
        // On a 2-D mesh Q_s(d) grows ~quadratically from the center.
        let topo = topologies::grid(&[5, 5]);
        let routes = Routes::compute(&topo);
        let center = topo.sites()[12];
        let q = cumulative_sites(&topo, &routes, center);
        assert_eq!(q[0], (1, 4)); // four direct neighbors
        assert_eq!(q[1], (2, 12)); // 4 + 8 at distance two
        assert_eq!(q.last().unwrap().1, 24);
    }

    #[test]
    fn q_is_strictly_increasing() {
        let net = topologies::cin(&topologies::CinConfig::default());
        let routes = Routes::compute(&net.topology);
        let q = cumulative_sites(&net.topology, &routes, net.europe[0]);
        for w in q.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        assert_eq!(q.last().unwrap().1, net.topology.site_count() - 1);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Spatial::Uniform.to_string(), "uniform");
        assert_eq!(Spatial::QsPower { a: 2.0 }.to_string(), "Qs(d)^-2");
    }
}
