//! Topology zoo: the networks used in the paper's analyses and experiments.
//!
//! * regular shapes for the §3 scaling analysis: [`line()`], [`ring`],
//!   [`grid`], [`complete`], [`binary_tree`], [`star`];
//! * the two pathological rumor-mongering examples of §3.2: [`figure1`]
//!   and [`figure2`];
//! * a seeded synthetic stand-in for the Xerox Corporate Internet,
//!   [`cin`], used by the Table 4/5 reproductions (see DESIGN.md for the
//!   substitution rationale — the real CIN adjacency list was never
//!   published);
//! * random families for robustness sweeps: [`random_connected`]
//!   (Erdős–Rényi) and [`waxman`] (geometric internet-like).

use epidemic_db::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{LinkId, Topology, TopologyBuilder};

/// A line of `n` sites, each linked to its neighbors — the §3 model where
/// the `d^-2` distribution is optimal.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize) -> Topology {
    assert!(n > 0, "a line needs at least one site");
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("n{i}"))).collect();
    for w in sites.windows(2) {
        b.link(w[0], w[1]);
    }
    b.build().expect("line construction is valid")
}

/// A ring of `n` sites.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least three sites");
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("n{i}"))).collect();
    for w in sites.windows(2) {
        b.link(w[0], w[1]);
    }
    b.link(sites[n - 1], sites[0]);
    b.build().expect("ring construction is valid")
}

/// A D-dimensional rectilinear grid of sites, `dims[k]` sites along axis
/// `k` — the mesh for which §3 suggests distributions as tight as `d^-2D`.
///
/// # Panics
///
/// Panics if `dims` is empty or any dimension is zero.
pub fn grid(dims: &[usize]) -> Topology {
    assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0));
    let n: usize = dims.iter().product();
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("g{i}"))).collect();
    // Mixed-radix coordinates; link each node to its +1 neighbor per axis.
    for i in 0..n {
        let mut stride = 1;
        for &d in dims {
            let coord = (i / stride) % d;
            if coord + 1 < d {
                b.link(sites[i], sites[i + stride]);
            }
            stride *= d;
        }
    }
    b.build().expect("grid construction is valid")
}

/// A complete graph on `n` sites: the "uniform network" of §1, where every
/// pair is one hop apart.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Topology {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("n{i}"))).collect();
    for i in 0..n {
        for j in i + 1..n {
            b.link(sites[i], sites[j]);
        }
    }
    b.build().expect("complete construction is valid")
}

/// A complete binary tree of depth `depth` (`2^depth − 1` sites, root first).
///
/// # Panics
///
/// Panics if `depth == 0` or `depth > 20`.
pub fn binary_tree(depth: u32) -> Topology {
    assert!((1..=20).contains(&depth));
    let n = (1usize << depth) - 1;
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("t{i}"))).collect();
    for i in 1..n {
        b.link(sites[(i - 1) / 2], sites[i]);
    }
    b.build().expect("tree construction is valid")
}

/// A star: one hub site linked to `n - 1` leaf sites.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2);
    let mut b = TopologyBuilder::new();
    let hub = b.add_site("hub");
    for i in 1..n {
        let leaf = b.add_site(format!("leaf{i}"));
        b.link(hub, leaf);
    }
    b.build().expect("star construction is valid")
}

/// The Figure 1 pathology of §3.2: sites `s` and `t` adjacent to each other
/// and, via a relay hub, slightly farther from `m` mutually equidistant
/// sites `u_1..u_m`.
///
/// Under a `Q_s(d)^-2` distribution with `m > k`, push rumor mongering
/// started at `s` or `t` has a significant probability of dying between the
/// pair without reaching any `u_i`.
///
/// Sites 0 and 1 of the result are `s` and `t`.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn figure1(m: usize) -> Topology {
    assert!(m > 0);
    let mut b = TopologyBuilder::new();
    let s = b.add_site("s");
    let t = b.add_site("t");
    let hub = b.add_relay("hub");
    b.link(s, t);
    b.link(s, hub);
    b.link(t, hub);
    for i in 0..m {
        let u = b.add_site(format!("u{i}"));
        b.link(hub, u);
    }
    b.build().expect("figure1 construction is valid")
}

/// The Figure 2 pathology of §3.2: a complete binary tree of `2^depth − 1`
/// sites whose root connects, through a chain of `tail` relay nodes, to one
/// distant site `s`. The paper requires the `s`–root distance to exceed the
/// tree height, i.e. `tail ≥ depth`.
///
/// The distant site `s` is the *first* site of the result.
///
/// # Panics
///
/// Panics if `depth == 0` or `tail < depth as usize`.
pub fn figure2(depth: u32, tail: usize) -> Topology {
    assert!(depth >= 1);
    assert!(
        tail >= depth as usize,
        "the distance from s to the root must exceed the tree height"
    );
    let mut b = TopologyBuilder::new();
    let s = b.add_site("s");
    let mut prev = s;
    for i in 0..tail {
        let relay = b.add_relay(format!("r{i}"));
        b.link(prev, relay);
        prev = relay;
    }
    let n = (1usize << depth) - 1;
    let tree: Vec<_> = (0..n).map(|i| b.add_site(format!("t{i}"))).collect();
    b.link(prev, tree[0]);
    for i in 1..n {
        b.link(tree[(i - 1) / 2], tree[i]);
    }
    b.build().expect("figure2 construction is valid")
}

/// Configuration for the synthetic CIN generator ([`cin`]).
///
/// Defaults approximate the scale the paper describes: several hundred
/// sites, most in North America, a few tens in Europe, two transatlantic
/// links with one terminating at Bushey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CinConfig {
    /// Number of North-American regional clusters.
    pub na_regions: usize,
    /// Database sites per North-American region.
    pub sites_per_region: usize,
    /// Database sites in Europe.
    pub europe_sites: usize,
    /// Extra random backbone chords between NA region gateways.
    pub backbone_chords: usize,
    /// Traversal cost of the two transatlantic links (1 = same as every
    /// other link, the Table 4/5 model; higher values model the slow phone
    /// lines and push `d^-a`-style choosers away from the cut).
    pub transatlantic_cost: u32,
    /// RNG seed; the same seed always produces the same topology.
    pub seed: u64,
}

impl Default for CinConfig {
    fn default() -> Self {
        CinConfig {
            na_regions: 8,
            sites_per_region: 28,
            europe_sites: 30,
            backbone_chords: 4,
            transatlantic_cost: 1,
            seed: 0x0000_C199_1987,
        }
    }
}

/// A generated synthetic Corporate Internet (see [`cin`]).
#[derive(Debug, Clone)]
pub struct Cin {
    /// The network itself.
    pub topology: Topology,
    /// The transatlantic link that terminates at the Bushey gateway — the
    /// critical link Tables 4 and 5 single out.
    pub bushey_link: LinkId,
    /// The second transatlantic link.
    pub second_transatlantic: LinkId,
    /// Database sites located in Europe.
    pub europe: Vec<SiteId>,
    /// Database sites located in North America.
    pub north_america: Vec<SiteId>,
}

/// Generates a synthetic stand-in for the Xerox Corporate Internet.
///
/// Shape: each NA region is a two-level cluster (region gateway relay →
/// a few Ethernet relays → sites); region gateways form a backbone ring
/// plus random chords. Europe is one such cluster hung off the "Bushey"
/// gateway plus a second smaller gateway; exactly two transatlantic links
/// join the continents. This preserves what the Table 4/5 experiments
/// measure: a few hundred sites, small diameter, and a critical two-link
/// cut separating a few tens of sites from the rest (see DESIGN.md).
///
/// # Example
///
/// ```
/// use epidemic_net::topologies::{cin, CinConfig};
/// let net = cin(&CinConfig::default());
/// assert!(net.topology.site_count() > 200);
/// assert!(net.europe.len() >= 25);
/// ```
pub fn cin(config: &CinConfig) -> Cin {
    assert!(config.na_regions >= 2, "need at least two NA regions");
    assert!(config.sites_per_region >= 2 && config.europe_sites >= 2);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TopologyBuilder::new();

    // --- North America ---
    let mut na_gateways = Vec::new();
    let mut north_america = Vec::new();
    for r in 0..config.na_regions {
        let gw = b.add_relay(format!("na{r}-gw"));
        na_gateways.push(gw);
        let sites = build_region(
            &mut b,
            &mut rng,
            gw,
            &format!("na{r}"),
            config.sites_per_region,
        );
        north_america.extend(sites);
    }
    // Backbone: ring of region gateways plus random chords, modelling the
    // CIN's mixture of leased lines.
    for i in 0..config.na_regions {
        b.link(na_gateways[i], na_gateways[(i + 1) % config.na_regions]);
    }
    for _ in 0..config.backbone_chords {
        let i = rng.random_range(0..config.na_regions);
        let mut j = rng.random_range(0..config.na_regions);
        while j == i {
            j = rng.random_range(0..config.na_regions);
        }
        b.link(na_gateways[i], na_gateways[j]);
    }

    // --- Europe ---
    let bushey = b.add_relay("bushey-gw");
    let eu2 = b.add_relay("eu2-gw");
    b.link(bushey, eu2);
    let mut europe = Vec::new();
    let half = config.europe_sites / 2;
    europe.extend(build_region(&mut b, &mut rng, bushey, "eu-b", half));
    europe.extend(build_region(
        &mut b,
        &mut rng,
        eu2,
        "eu-c",
        config.europe_sites - half,
    ));

    // --- The two transatlantic links ---
    let bushey_link = b.link_weighted(na_gateways[0], bushey, config.transatlantic_cost);
    let second = b.link_weighted(
        na_gateways[config.na_regions / 2],
        eu2,
        config.transatlantic_cost,
    );

    let topology = b.build().expect("cin construction is valid");
    Cin {
        topology,
        bushey_link,
        second_transatlantic: second,
        europe,
        north_america,
    }
}

/// Builds one regional cluster: `gateway → ethernets → sites`. Returns the
/// sites created.
fn build_region(
    b: &mut TopologyBuilder,
    rng: &mut StdRng,
    gateway: SiteId,
    prefix: &str,
    sites: usize,
) -> Vec<SiteId> {
    let ethernets = (sites / 10).clamp(1, 4);
    let hubs: Vec<SiteId> = (0..ethernets)
        .map(|e| {
            let hub = b.add_relay(format!("{prefix}-e{e}"));
            b.link(gateway, hub);
            hub
        })
        .collect();
    (0..sites)
        .map(|i| {
            let site = b.add_site(format!("{prefix}-s{i}"));
            let hub = hubs[rng.random_range(0..hubs.len())];
            b.link(hub, site);
            site
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::Routes;

    #[test]
    fn line_shape() {
        let t = line(10);
        assert_eq!(t.site_count(), 10);
        assert_eq!(t.link_count(), 9);
    }

    #[test]
    fn ring_shape() {
        let t = ring(10);
        assert_eq!(t.link_count(), 10);
        let r = Routes::compute(&t);
        assert_eq!(r.diameter(), 5);
    }

    #[test]
    fn grid_shape_and_distances() {
        let t = grid(&[3, 4]);
        assert_eq!(t.site_count(), 12);
        // links: 2*4 horizontal-axis + 3*3 vertical-axis = 17.
        assert_eq!(t.link_count(), 17);
        let r = Routes::compute(&t);
        // Manhattan distance between opposite corners: (3-1)+(4-1) = 5.
        assert_eq!(r.distance(t.sites()[0], t.sites()[11]), 5);
    }

    #[test]
    fn three_dimensional_grid() {
        let t = grid(&[2, 2, 2]);
        assert_eq!(t.site_count(), 8);
        assert_eq!(t.link_count(), 12);
        let r = Routes::compute(&t);
        assert_eq!(r.diameter(), 3);
    }

    #[test]
    fn complete_shape() {
        let t = complete(6);
        assert_eq!(t.link_count(), 15);
        assert_eq!(Routes::compute(&t).diameter(), 1);
    }

    #[test]
    fn binary_tree_shape() {
        let t = binary_tree(4);
        assert_eq!(t.site_count(), 15);
        assert_eq!(t.link_count(), 14);
        assert_eq!(Routes::compute(&t).diameter(), 6);
    }

    #[test]
    fn star_shape() {
        let t = star(7);
        assert_eq!(t.link_count(), 6);
        assert_eq!(Routes::compute(&t).diameter(), 2);
    }

    #[test]
    fn figure1_geometry() {
        let t = figure1(8);
        let r = Routes::compute(&t);
        let s = t.node_by_label("s").unwrap();
        let tt = t.node_by_label("t").unwrap();
        assert_eq!(r.distance(s, tt), 1);
        for i in 0..8 {
            let u = t.node_by_label(&format!("u{i}")).unwrap();
            assert_eq!(r.distance(s, u), 2);
            assert_eq!(r.distance(tt, u), 2);
        }
        assert_eq!(t.site_count(), 10); // s, t, u_1..u_8; hub is a relay
    }

    #[test]
    fn figure2_geometry() {
        let (depth, tail) = (4, 6);
        let t = figure2(depth, tail);
        let r = Routes::compute(&t);
        let s = t.node_by_label("s").unwrap();
        let root = t.node_by_label("t0").unwrap();
        assert_eq!(r.distance(s, root) as usize, tail + 1);
        // Tree height (depth-1) is less than the s-root distance.
        assert!(((depth - 1) as usize) < tail + 1);
        assert_eq!(t.site_count(), 1 + 15);
    }

    #[test]
    fn cin_is_deterministic_per_seed() {
        let a = cin(&CinConfig::default());
        let b = cin(&CinConfig::default());
        assert_eq!(a.topology.node_count(), b.topology.node_count());
        assert_eq!(a.topology.links(), b.topology.links());
        let c = cin(&CinConfig {
            seed: 99,
            ..CinConfig::default()
        });
        // Different seed, same scale, (almost surely) different wiring.
        assert_eq!(a.topology.site_count(), c.topology.site_count());
    }

    #[test]
    fn cin_scale_matches_paper() {
        let net = cin(&CinConfig::default());
        let n = net.topology.site_count();
        assert!((200..400).contains(&n), "site count {n}");
        assert_eq!(net.europe.len() + net.north_america.len(), n);
        assert!(net.europe.len() < 50);
        let r = Routes::compute(&net.topology);
        let d = r.diameter();
        assert!((6..=16).contains(&d), "diameter {d}");
    }

    #[test]
    fn cin_transatlantic_links_are_a_cut() {
        // Removing both transatlantic links must disconnect Europe: verify
        // every NA→EU route crosses one of them.
        let net = cin(&CinConfig::default());
        let r = Routes::compute(&net.topology);
        let na = net.north_america[0];
        for &eu in &net.europe {
            let links = r.route_links(na, eu);
            assert!(links
                .iter()
                .any(|&l| l == net.bushey_link || l == net.second_transatlantic));
        }
    }
}

/// A connected Erdős–Rényi-style random graph: a random spanning tree
/// (guaranteeing connectivity) plus each remaining pair linked with
/// probability `p`. All nodes are database sites.
///
/// # Panics
///
/// Panics if `n < 2` or `p` is not in `[0, 1]`.
pub fn random_connected(n: usize, p: f64, seed: u64) -> Topology {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&p));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("n{i}"))).collect();
    for i in 1..n {
        let parent = rng.random_range(0..i);
        b.link(sites[parent], sites[i]);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random::<f64>() < p {
                b.link(sites[i], sites[j]);
            }
        }
    }
    b.build()
        .expect("the spanning tree keeps the graph connected")
}

/// A Waxman random graph — the classic internet-topology generator: nodes
/// are scattered on the unit square and each pair is linked with
/// probability `alpha * exp(-distance / (beta * sqrt(2)))`. A random
/// spanning tree guarantees connectivity. All nodes are database sites.
///
/// # Panics
///
/// Panics if `n < 2`, or `alpha`/`beta` are not in `(0, 1]`.
pub fn waxman(n: usize, alpha: f64, beta: f64, seed: u64) -> Topology {
    assert!(n >= 2);
    assert!(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let mut b = TopologyBuilder::new();
    let sites: Vec<_> = (0..n).map(|i| b.add_site(format!("w{i}"))).collect();
    // Connectivity: chain each node to its nearest already-placed node.
    for i in 1..n {
        let nearest = (0..i)
            .min_by(|&x, &y| {
                let dx = dist2(points[i], points[x]);
                let dy = dist2(points[i], points[y]);
                dx.partial_cmp(&dy).expect("distances are finite")
            })
            .expect("i >= 1");
        b.link(sites[nearest], sites[i]);
    }
    let l = std::f64::consts::SQRT_2;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist2(points[i], points[j]).sqrt();
            if rng.random::<f64>() < alpha * (-d / (beta * l)).exp() {
                b.link(sites[i], sites[j]);
            }
        }
    }
    b.build()
        .expect("the nearest-neighbor chain keeps the graph connected")
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod random_tests {
    use super::*;
    use crate::routing::Routes;

    #[test]
    fn random_connected_is_connected_and_deterministic() {
        let a = random_connected(40, 0.05, 9);
        let b = random_connected(40, 0.05, 9);
        assert_eq!(a.links(), b.links());
        assert!(a.link_count() >= 39); // at least the spanning tree
        let r = Routes::compute(&a);
        assert!(r.diameter() > 0);
    }

    #[test]
    fn edge_probability_scales_link_count() {
        let sparse = random_connected(40, 0.02, 3);
        let dense = random_connected(40, 0.3, 3);
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn waxman_prefers_short_links() {
        let t = waxman(60, 0.9, 0.15, 4);
        assert!(t.link_count() >= 59);
        let r = Routes::compute(&t);
        // Geometric locality gives a multi-hop diameter, unlike ER at the
        // same density.
        assert!(r.diameter() >= 3, "diameter {}", r.diameter());
    }

    #[test]
    fn waxman_is_deterministic_per_seed() {
        let a = waxman(30, 0.5, 0.3, 11);
        let b = waxman(30, 0.5, 0.3, 11);
        assert_eq!(a.links(), b.links());
    }
}
