//! Per-link traffic accounting (paper §3.1).
//!
//! Tables 4 and 5 report, per spatial distribution, the number of
//! anti-entropy *comparisons* and *update transmissions* per network link —
//! averaged over all links and singled out for the transatlantic link to
//! Bushey. A [`LinkTraffic`] charges one unit to every link on the shortest
//! route between two conversing sites.

use crate::graph::LinkId;
use crate::routing::Routes;
use epidemic_db::SiteId;

/// Traffic counters, one per link of a topology.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, LinkTraffic, Routes};
/// let topo = topologies::line(4);
/// let routes = Routes::compute(&topo);
/// let mut traffic = LinkTraffic::new(topo.link_count());
/// let s = topo.sites();
/// traffic.record_route(&routes, s[0], s[3]); // traverses all 3 links
/// assert_eq!(traffic.total(), 3);
/// assert!((traffic.mean_per_link() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinkTraffic {
    counts: Vec<u64>,
}

impl LinkTraffic {
    /// Creates counters for a topology with `links` links, all zero.
    pub fn new(links: usize) -> Self {
        LinkTraffic {
            counts: vec![0; links],
        }
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.counts.len()
    }

    /// Charges one unit to every link on the route `from → to`.
    pub fn record_route(&mut self, routes: &Routes, from: SiteId, to: SiteId) {
        routes.for_each_route_link(from, to, |l| self.counts[l.index()] += 1);
    }

    /// Charges one unit to a single link.
    pub fn record_link(&mut self, link: LinkId) {
        self.counts[link.index()] += 1;
    }

    /// Units charged to `link`.
    pub fn at(&self, link: LinkId) -> u64 {
        self.counts[link.index()]
    }

    /// Total units over all links.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean units per link.
    pub fn mean_per_link(&self) -> f64 {
        if self.counts.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.counts.len() as f64
        }
    }

    /// The most heavily loaded link and its count, if any links exist.
    pub fn hottest(&self) -> Option<(LinkId, u64)> {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, &c)| (LinkId::from_index(i), c))
    }

    /// Adds another counter set into this one (for aggregating runs).
    ///
    /// # Panics
    ///
    /// Panics if the two counters track different numbers of links.
    pub fn merge(&mut self, other: &LinkTraffic) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Raw per-link counts, indexable by [`LinkId::index`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Resets every counter to zero, keeping the link count (for reusable
    /// per-shard accumulators that drain into a total each cycle).
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies;

    #[test]
    fn records_along_routes() {
        let topo = topologies::line(5);
        let routes = Routes::compute(&topo);
        let mut t = LinkTraffic::new(topo.link_count());
        let s = topo.sites();
        t.record_route(&routes, s[0], s[2]);
        t.record_route(&routes, s[1], s[2]);
        // Link 0-1 carries one unit, link 1-2 carries two.
        let l01 = topo.link_between(s[0], s[1]).unwrap();
        let l12 = topo.link_between(s[1], s[2]).unwrap();
        assert_eq!(t.at(l01), 1);
        assert_eq!(t.at(l12), 2);
        assert_eq!(t.total(), 3);
        assert_eq!(t.hottest(), Some((l12, 2)));
    }

    #[test]
    fn self_route_is_free() {
        let topo = topologies::line(3);
        let routes = Routes::compute(&topo);
        let mut t = LinkTraffic::new(topo.link_count());
        t.record_route(&routes, topo.sites()[1], topo.sites()[1]);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LinkTraffic::new(3);
        let mut b = LinkTraffic::new(3);
        a.record_link(LinkId::from_index(0));
        b.record_link(LinkId::from_index(0));
        b.record_link(LinkId::from_index(2));
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 0, 1]);
        assert!((a.mean_per_link() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_sizes() {
        let mut a = LinkTraffic::new(2);
        a.merge(&LinkTraffic::new(3));
    }

    #[test]
    fn empty_traffic() {
        let t = LinkTraffic::new(0);
        assert_eq!(t.total(), 0);
        assert_eq!(t.mean_per_link(), 0.0);
        assert_eq!(t.hottest(), None);
    }
}
