//! Property-based tests for topologies, routing and spatial sampling on
//! randomly generated connected graphs.

use epidemic_net::{PartnerSampler, Routes, Spatial, Topology, TopologyBuilder};
use proptest::prelude::*;

/// Strategy: a random connected graph of `n` nodes — a random spanning
/// tree plus extra random edges; a random subset of nodes (at least two)
/// are database sites.
fn random_topology() -> impl Strategy<Value = Topology> {
    (3usize..24)
        .prop_flat_map(|n| {
            (
                Just(n),
                // parent[i] < i gives a random spanning tree.
                prop::collection::vec(any::<prop::sample::Index>(), n - 1),
                prop::collection::vec(
                    (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
                    0..8,
                ),
                prop::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(n, parents, extras, site_flags)| {
            let mut b = TopologyBuilder::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| {
                    // Guarantee at least two sites (nodes 0 and 1).
                    if i < 2 || site_flags[i] {
                        b.add_site(format!("n{i}"))
                    } else {
                        b.add_relay(format!("r{i}"))
                    }
                })
                .collect();
            for (i, parent) in parents.iter().enumerate() {
                let child = i + 1;
                let p = parent.index(child); // 0..child
                b.link(nodes[p], nodes[child]);
            }
            for (x, y) in extras {
                let a = x.index(n);
                let c = y.index(n);
                if a != c {
                    b.link(nodes[a], nodes[c]);
                }
            }
            b.build().expect("spanning tree keeps the graph connected")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Distances are a metric: symmetric, zero iff equal, triangle
    /// inequality (over sampled triples).
    #[test]
    fn distances_form_a_metric(topo in random_topology()) {
        let routes = Routes::compute(&topo);
        let nodes = topo.node_count() as u32;
        for a in 0..nodes {
            for b in 0..nodes {
                let ab = routes.distance(a.into(), b.into());
                prop_assert_eq!(ab, routes.distance(b.into(), a.into()));
                prop_assert_eq!(ab == 0, a == b);
                for c in 0..nodes {
                    let ac = routes.distance(a.into(), c.into());
                    let cb = routes.distance(c.into(), b.into());
                    prop_assert!(ab <= ac + cb);
                }
            }
        }
    }

    /// Every route is a connected path of the correct length joining its
    /// endpoints.
    #[test]
    fn routes_are_valid_paths(topo in random_topology()) {
        let routes = Routes::compute(&topo);
        for &a in topo.sites() {
            for &b in topo.sites() {
                let links = routes.route_links(a, b);
                prop_assert_eq!(links.len() as u32, routes.distance(a, b));
                let mut cur = a;
                for link in links {
                    let (x, y) = topo.endpoints(link);
                    prop_assert!(cur == x || cur == y);
                    cur = if cur == x { y } else { x };
                }
                prop_assert_eq!(cur, b);
            }
        }
    }

    /// Spatial samplers are proper probability distributions over the
    /// other sites, for every distribution family.
    #[test]
    fn samplers_are_normalized(topo in random_topology(), a in 0.5f64..3.0) {
        let routes = Routes::compute(&topo);
        for spatial in [
            Spatial::Uniform,
            Spatial::DistancePower { a },
            Spatial::QsPower { a },
            Spatial::PositionPower { a },
        ] {
            let sampler = PartnerSampler::new(&topo, &routes, spatial);
            for &from in topo.sites() {
                let total: f64 = topo
                    .sites()
                    .iter()
                    .map(|&to| sampler.probability(from, to))
                    .sum();
                prop_assert!((total - 1.0).abs() < 1e-9, "{:?}: {}", spatial, total);
                prop_assert_eq!(sampler.probability(from, from), 0.0);
            }
        }
    }

    /// Under Qs^-a, selection probability never increases with distance.
    #[test]
    fn qs_probability_is_monotone_in_distance(topo in random_topology(), a in 1.0f64..3.0) {
        let routes = Routes::compute(&topo);
        let sampler = PartnerSampler::new(&topo, &routes, Spatial::QsPower { a });
        for &from in topo.sites() {
            let mut by_distance: Vec<(u32, f64)> = topo
                .sites()
                .iter()
                .filter(|&&t| t != from)
                .map(|&t| (routes.distance(from, t), sampler.probability(from, t)))
                .collect();
            by_distance.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for w in by_distance.windows(2) {
                if w[0].0 < w[1].0 {
                    prop_assert!(w[0].1 >= w[1].1 - 1e-12);
                }
            }
        }
    }

    /// Sampling never returns the chooser or a relay node.
    #[test]
    fn samples_are_other_sites(topo in random_topology(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let routes = Routes::compute(&topo);
        let sampler = PartnerSampler::new(&topo, &routes, Spatial::QsPower { a: 2.0 });
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for &from in topo.sites() {
            for _ in 0..20 {
                let p = sampler.sample(from, &mut rng);
                prop_assert_ne!(p, from);
                prop_assert!(topo.is_site(p));
            }
        }
    }
}
