//! The [`Arbitrary`] trait and the [`any`] entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )+};
}

impl_arbitrary_standard!(u8, u16, u32, u64, usize, bool, f64);

/// The canonical strategy for `A`: `any::<u64>()`, `any::<bool>()`, ….
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
