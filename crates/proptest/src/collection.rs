//! Collection strategies: [`vec()`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A half-open range of collection sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    /// An exact size.
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
