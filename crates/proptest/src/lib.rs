//! Offline, in-workspace stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate provides a
//! deterministic property-testing harness with the subset of the proptest
//! API the workspace's test suites use: the [`proptest!`] test macro,
//! [`prop_assert!`]-style assertions, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`/`boxed`, [`prop_oneof!`] unions, integer and
//! tuple strategies, [`collection::vec`], [`sample::Index`], a small
//! regex-subset string strategy, and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its values and case number;
//!   the generator is deterministic (seeded from the test's module path
//!   and name), so failures replay exactly on every run.
//! * **No persistence.** `.proptest-regressions` files are neither read
//!   nor written.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec` and `prop::sample::Index`
/// resolve exactly as they do with the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]`-attributed function that draws `config.cases` inputs from the
/// strategies and runs the body on each. The body is evaluated in a
/// `Result` context, so `prop_assert!` failures abort only the current
/// case with a descriptive panic, and `return Ok(())` skips the rest of a
/// case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing only the
/// current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}\n {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Integer range strategies respect their bounds.
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u8..8) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 8);
        }

        /// Vec strategies respect their size bounds and oneof picks
        /// every arm eventually.
        #[test]
        fn vec_and_oneof(v in prop::collection::vec(prop_oneof![0u32..5, 100u32..105], 0..20)) {
            prop_assert!(v.len() < 20);
            for x in v {
                prop_assert!(x < 5 || (100..105).contains(&x));
            }
        }

        /// Flat-map dependencies hold: the index is always valid for the
        /// generated length.
        #[test]
        fn flat_map_dependency(
            (len, idx) in (1usize..30).prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            prop_assert!(idx < len);
        }

        /// The regex-subset string strategy matches its own pattern.
        #[test]
        fn regex_strings_match(s in "[A-Za-z][A-Za-z0-9-]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut chars = s.chars();
            prop_assert!(chars.next().unwrap().is_ascii_alphabetic(), "{s:?}");
            prop_assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '-'),
                "{s:?}"
            );
        }

        /// sample::Index always lands inside the requested length.
        #[test]
        fn index_is_in_range(i in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(i.index(len) < len);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = prop::collection::vec((0u32..1000, any::<bool>()), 0..16);
        let mut a = crate::test_runner::rng_for("det");
        let mut b = crate::test_runner::rng_for("det");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
