//! Sampling helpers: [`Index`].

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use rand::RngExt;

/// A length-agnostic random index: generated once, projected onto any
/// non-empty collection with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this sample onto `0..len`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index(rng.random())
    }
}
