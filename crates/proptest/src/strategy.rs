//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// draws one concrete value directly from the (deterministic) RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it — for dependent inputs (e.g. an index valid for a length).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy, so heterogeneous strategies with a
    /// common value type can live in one collection (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe view of [`Strategy`] backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy producing `V`.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies with a common value type.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.random_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// A string pattern (regex subset) is itself a strategy, as in real
/// proptest: `"[A-Za-z][A-Za-z0-9-]{0,8}"` generates matching strings.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
