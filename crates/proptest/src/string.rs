//! String generation from a small regex subset.
//!
//! Supports what the workspace's tests actually use: literal characters,
//! escaped literals (`\-`), character classes with ranges (`[A-Za-z0-9-]`),
//! and the quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones
//! are capped at 8 repetitions). Anchors, alternation and groups are not
//! supported and panic loudly so a new pattern fails fast rather than
//! generating garbage.

use crate::test_runner::TestRng;
use rand::RngExt;

/// One matchable unit of the pattern.
enum Atom {
    Literal(char),
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let reps = rng.random_range(piece.min..=piece.max);
        for _ in 0..reps {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => out.push(sample_class(ranges, rng)),
            }
        }
    }
    out
}

fn sample_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.random_range(0..total);
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("ranges hold valid chars");
        }
        pick -= span;
    }
    unreachable!("pick < total by construction")
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!(
                    "unsupported regex feature {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses the body of a class starting just past `[`; returns the ranges
/// and the index just past `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // `a-z` is a range unless `-` is the final character of the class.
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    (ranges, i + 1)
}

/// Parses an optional quantifier at `i`; returns `(min, max, next_index)`.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u32, u32, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::generate_matching;
    use crate::test_runner::rng_for;

    #[test]
    fn literal_patterns_generate_themselves() {
        let mut rng = rng_for("string::literal");
        assert_eq!(generate_matching("abc", &mut rng), "abc");
        assert_eq!(generate_matching("a\\-b", &mut rng), "a-b");
    }

    #[test]
    fn quantifiers_bound_repetitions() {
        let mut rng = rng_for("string::quant");
        for _ in 0..200 {
            let s = generate_matching("a{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.bytes().all(|b| b == b'a'));
        }
        assert_eq!(generate_matching("b{3}", &mut rng), "bbb");
    }

    #[test]
    fn classes_cover_their_ranges() {
        let mut rng = rng_for("string::class");
        let mut saw_dash = false;
        for _ in 0..300 {
            let s = generate_matching("[A-Za-z0-9-]", &mut rng);
            let c = s.chars().next().unwrap();
            assert!(c.is_ascii_alphanumeric() || c == '-', "{c:?}");
            saw_dash |= c == '-';
        }
        assert!(saw_dash, "trailing dash is a literal class member");
    }
}
