//! Test configuration, case errors, and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The RNG driving all strategy generation.
pub type TestRng = StdRng;

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failure local to one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Builds the deterministic RNG for a named test.
///
/// The seed is an FNV-1a hash of the test's full path, so every test gets
/// an independent but fully reproducible input stream: a failure observed
/// once recurs on every run until fixed.
pub fn rng_for(name: &str) -> TestRng {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}
