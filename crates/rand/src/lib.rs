//! Offline, in-workspace stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace ships a
//! small deterministic replacement exposing exactly the API surface the
//! other crates use:
//!
//! * [`Rng`] — object-safe core trait (`&mut dyn Rng` works);
//! * [`RngExt`] — generic convenience methods (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every `Rng`;
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64;
//! * [`seq::SliceRandom`] (`shuffle`) and [`seq::IndexedRandom`] (`choose`).
//!
//! Determinism is a feature here: simulations derive per-trial seeds and
//! must replay bit-identically, so `StdRng` is a fixed, portable generator
//! with no platform- or version-dependent behaviour.

use std::ops::{Range, RangeInclusive};

/// Object-safe source of randomness.
///
/// Only the raw word generators live here so the trait can be used as
/// `&mut dyn Rng`; all generic convenience methods are on [`RngExt`].
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value from the full (or unit, for floats) distribution.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self`. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word onto `0..span` by widening multiply.
///
/// The bias is at most `span / 2^64`, invisible at simulation scales, and
/// the mapping is fixed so seeded runs replay exactly.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )+};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $u;
                self.start.wrapping_add(reduce(rng.next_u64(), u64::from(span)) as $t)
            }
        }
    )+};
}

impl_signed_sample_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// Generic convenience methods, blanket-implemented for every [`Rng`]
/// (including trait objects).
pub trait RngExt: Rng {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    ///
    /// Chosen for speed, a 256-bit state, and a fixed portable stream —
    /// every simulation in this repository replays bit-identically from
    /// a seed on any platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{reduce, Rng};

    /// Random mutations of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = reduce(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random selections from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[reduce(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
        for _ in 0..100 {
            let v = rng.random_range(0u8..=3);
            assert!(v <= 3);
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let v = dyn_rng.random_range(0usize..5);
        assert!(v < 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is astronomically unlikely to be identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(17);
        let items = [1, 2, 3, 4];
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
