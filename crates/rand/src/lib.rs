//! Offline, in-workspace stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace ships a
//! small deterministic replacement exposing exactly the API surface the
//! other crates use:
//!
//! * [`Rng`] — object-safe core trait (`&mut dyn Rng` works);
//! * [`RngExt`] — generic convenience methods (`random`, `random_range`,
//!   `random_bool`), blanket-implemented for every `Rng`;
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64;
//! * [`seq::SliceRandom`] (`shuffle`) and [`seq::IndexedRandom`] (`choose`).
//!
//! Determinism is a feature here: simulations derive per-trial seeds and
//! must replay bit-identically, so `StdRng` is a fixed, portable generator
//! with no platform- or version-dependent behaviour.

use std::ops::{Range, RangeInclusive};

/// Object-safe source of randomness.
///
/// Only the raw word generators live here so the trait can be used as
/// `&mut dyn Rng`; all generic convenience methods are on [`RngExt`].
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value from the full (or unit, for floats) distribution.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for u16 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `self`. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word onto `0..span` by widening multiply.
///
/// The bias is at most `span / 2^64`, invisible at simulation scales, and
/// the mapping is fixed so seeded runs replay exactly.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )+};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $u;
                self.start.wrapping_add(reduce(rng.next_u64(), u64::from(span)) as $t)
            }
        }
    )+};
}

impl_signed_sample_range!(i32 => u32, i64 => u64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// Generic convenience methods, blanket-implemented for every [`Rng`]
/// (including trait objects).
pub trait RngExt: Rng {
    /// Draws a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// The SplitMix64 increment (the odd fractional part of the golden
    /// ratio), shared by the [`StdRng`] seed expansion and [`ContactRng`].
    const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// The SplitMix64 finalizer: a bijective avalanche mix of one word.
    #[inline]
    fn splitmix_mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A counter-based per-contact generator: the stream is a pure
    /// function of `(seed, cycle, site)`.
    ///
    /// Sequential generators like [`StdRng`] make every draw depend on
    /// every draw before it, so a simulation's outcome depends on the
    /// *iteration order* of its contact loop — the property that forces
    /// full-roster traversal and serializes parallel sweeps. `ContactRng`
    /// removes that coupling: each `(seed, cycle, site)` triple names an
    /// independent SplitMix64 stream, so a contact's draws are identical
    /// whether its initiator is visited first, last, or on another
    /// thread. Two consequences the megascale fast path builds on:
    ///
    /// * a contact loop may iterate **only the active sites, in any
    ///   order**, and still replay bit-identically;
    /// * shard-parallel execution is byte-identical to sequential
    ///   execution by construction — there is no per-shard stream to
    ///   keep in sync.
    ///
    /// The stream origin hashes the triple through three finalizer
    /// rounds (one per coordinate); successive draws then walk the
    /// standard SplitMix64 sequence (add the golden-ratio gamma,
    /// finalize).
    /// Streams are full-period within themselves; distinct triples
    /// collide on an origin with probability ~`streams²/2⁶⁴` —
    /// negligible at simulation scales, and harmless (a shared origin
    /// only means two contacts draw the same numbers once).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ContactRng {
        x: u64,
    }

    impl ContactRng {
        /// The stream for one contact: `site`'s draws in `cycle` under
        /// `seed`. A pure function — no global state, no ordering.
        #[must_use]
        pub fn new(seed: u64, cycle: u64, site: u64) -> Self {
            let a = splitmix_mix(seed.wrapping_add(GOLDEN_GAMMA));
            let b = splitmix_mix(a ^ cycle.wrapping_add(GOLDEN_GAMMA));
            ContactRng {
                x: splitmix_mix(b ^ site.wrapping_add(GOLDEN_GAMMA)),
            }
        }
    }

    impl Rng for ContactRng {
        fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(GOLDEN_GAMMA);
            splitmix_mix(self.x)
        }
    }

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    ///
    /// Chosen for speed, a 256-bit state, and a fixed portable stream —
    /// every simulation in this repository replays bit-identically from
    /// a seed on any platform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the 64-bit seed into the 256-bit state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(GOLDEN_GAMMA);
                splitmix_mix(x)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{reduce, Rng};

    /// Random mutations of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = reduce(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random selections from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[reduce(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{ContactRng, StdRng};
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn contact_rng_is_a_pure_function_of_its_triple() {
        let draws = |seed, cycle, site| {
            let mut rng = ContactRng::new(seed, cycle, site);
            [rng.next_u64(), rng.next_u64(), rng.next_u64()]
        };
        assert_eq!(draws(7, 3, 41), draws(7, 3, 41));
        // Any single coordinate change moves the whole stream.
        let reference = draws(7, 3, 41);
        for other in [draws(8, 3, 41), draws(7, 4, 41), draws(7, 3, 42)] {
            assert_ne!(reference, other);
        }
    }

    #[test]
    fn contact_rng_streams_do_not_depend_on_each_other() {
        // Drawing from site 5's stream must not perturb site 6's — the
        // property sequential RNGs lack and the active-set loop needs.
        let mut alone = ContactRng::new(1, 2, 6);
        let expected = [alone.next_u64(), alone.next_u64()];
        let mut noisy_neighbor = ContactRng::new(1, 2, 5);
        for _ in 0..17 {
            noisy_neighbor.next_u64();
        }
        let mut after = ContactRng::new(1, 2, 6);
        assert_eq!(expected, [after.next_u64(), after.next_u64()]);
    }

    #[test]
    fn contact_rng_nearby_triples_decorrelate() {
        // Adjacent sites and adjacent cycles — the dense case the
        // megascale sweep hits — must not produce correlated low bits.
        let mut all: Vec<u64> = Vec::new();
        for cycle in 0..8u64 {
            for site in 0..64u64 {
                all.push(ContactRng::new(0, cycle, site).next_u64());
            }
        }
        let ones: u32 = all.iter().map(|w| w.count_ones()).sum();
        let total = (all.len() * 64) as f64;
        let frac = f64::from(ones) / total;
        assert!((0.47..0.53).contains(&frac), "bit bias: {frac}");
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "first draws collide");
    }

    #[test]
    fn contact_rng_supports_the_generic_draw_api() {
        let mut rng = ContactRng::new(3, 1, 0);
        let in_range = rng.random_range(0usize..9);
        assert!(in_range < 9);
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
        let hits = (0..10_000)
            .filter(|&i| ContactRng::new(3, 2, i).random_bool(0.25))
            .count();
        assert!((2_300..2_700).contains(&hits), "got {hits}");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
        for _ in 0..100 {
            let v = rng.random_range(0u8..=3);
            assert!(v <= 3);
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let x: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&x));
        let v = dyn_rng.random_range(0usize..5);
        assert!(v < 5);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle is astronomically unlikely to be identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(17);
        let items = [1, 2, 3, 4];
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
