//! A packed fixed-length bitset for per-site infection state.
//!
//! The synchronous protocols snapshot one bit per site at the start of
//! every cycle (`state0`, `hot0`, the anti-entropy `snapshot`). As
//! `Vec<bool>` those snapshots cost a byte per site; at the `fig-megascale`
//! scale of 10⁶ sites that is a megabyte re-touched every cycle. Packed
//! into `u64` words the same snapshot is 64× smaller, sits in a handful of
//! cache lines for CIN-scale runs, and copies word-at-a-time.

/// A fixed-length bitset backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A set of `len` bits, all false.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` (same contract as slice indexing).
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Sets the bit at `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        let mask = 1 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Repacks a `bool`-per-site slice into this set, 64 sites per word —
    /// the start-of-cycle snapshot operation.
    ///
    /// # Panics
    ///
    /// Panics if `bools.len() != self.len()`.
    pub fn copy_from_bools(&mut self, bools: &[bool]) {
        assert_eq!(bools.len(), self.len, "snapshot length mismatch");
        for (word, chunk) in self.words.iter_mut().zip(bools.chunks(64)) {
            let mut packed = 0u64;
            for (bit, &b) in chunk.iter().enumerate() {
                packed |= u64::from(b) << bit;
            }
            *word = packed;
        }
    }

    /// Copies `other` into this set word-at-a-time without reallocating —
    /// the bitset-to-bitset start-of-cycle snapshot operation (a derived
    /// `clone` would allocate a fresh word vector every cycle).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(other.len, self.len, "snapshot length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the set bits, ascending.
    ///
    /// Cost is proportional to `words + ones`, not to `len` — a word of
    /// 64 clear bits is skipped in one comparison. This is what lets the
    /// active-set contact loop pay for the infective sites it visits
    /// rather than for the million susceptible ones it does not.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut bits = BitSet::new(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!bits.get(i));
            bits.set(i, true);
            assert!(bits.get(i));
        }
        assert_eq!(bits.count_ones(), 8);
        bits.set(64, false);
        assert!(!bits.get(64));
        assert_eq!(bits.count_ones(), 7);
        bits.clear();
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn copy_from_bools_matches_per_bit_sets() {
        let n = 200;
        let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let mut packed = BitSet::new(n);
        packed.copy_from_bools(&bools);
        let mut reference = BitSet::new(n);
        for (i, &b) in bools.iter().enumerate() {
            reference.set(i, b);
        }
        assert_eq!(packed, reference);
        assert_eq!(packed.count_ones(), bools.iter().filter(|&&b| b).count());
    }

    #[test]
    fn iter_ones_matches_a_linear_scan() {
        let n = 300;
        let mut bits = BitSet::new(n);
        let expected: Vec<usize> = (0..n).filter(|i| i % 5 == 0 || i % 63 == 0).collect();
        for &i in &expected {
            bits.set(i, true);
        }
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), expected);
        assert_eq!(bits.iter_ones().count(), bits.count_ones());
        bits.clear();
        assert_eq!(bits.iter_ones().next(), None);
    }

    #[test]
    fn copy_from_mirrors_another_set() {
        let mut src = BitSet::new(100);
        for i in [0, 17, 63, 64, 99] {
            src.set(i, true);
        }
        let mut dst = BitSet::new(100);
        dst.set(5, true); // stale bit must be overwritten
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_len_panics() {
        BitSet::new(10).get(10);
    }

    #[test]
    fn zero_length_set_is_empty() {
        let bits = BitSet::new(0);
        assert!(bits.is_empty());
        assert_eq!(bits.count_ones(), 0);
    }
}
