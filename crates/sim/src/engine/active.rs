//! The active-set cycle engine: per-cycle cost proportional to the
//! *infective* sites, shard-parallel for free.
//!
//! [`CycleEngine`](super::CycleEngine) walks the full roster every cycle
//! — it must, because its sequential RNG makes each partner draw depend
//! on every draw before it, so even a site that does nothing has to be
//! visited (or at least counted) to keep the stream aligned. That is the
//! right contract for the paper-fidelity drivers, and the wrong one for
//! the megascale sweep, where after the first dozen cycles the infective
//! set is a shrinking sliver of a million-site fleet.
//!
//! This engine drops the sequential stream for the counter-based
//! [`ContactRng`]: every contact's draws are a pure function of
//! `(seed, cycle, initiator)`. Each cycle then splits into two phases:
//!
//! 1. **Draw** (parallel, `&self`) — the loop walks only the set bits of
//!    the protocol's [`active`](ActiveSetProtocol::active) bitset,
//!    ascending; each initiator samples its partner and every random
//!    decision it might need from its private stream, producing a pure
//!    [`Draw`](ActiveSetProtocol::Draw) record. Susceptible sites cost
//!    one skipped word per 64, not a visit; worker threads can split the
//!    roster freely because no draw depends on any other.
//! 2. **Apply** (sequential) — the engine replays the draws in ascending
//!    initiator order, letting the protocol judge each contact against
//!    *current* state and mutate it — the same semantics as the legacy
//!    asynchronous loop, just with a sorted roster instead of a shuffled
//!    one. Because the replay order is fixed by the roster rather than
//!    by thread scheduling, the result — and the observer's event stream
//!    — is byte-identical at *any* worker count (a strictly stronger
//!    guarantee than the [`ShardedCycleEngine`](super::ShardedCycleEngine)'s,
//!    whose output depends on its shard count).
//!
//! Totals stay exact without full traversal: every active initiator makes
//! exactly one contact, and `fruitless = contacts − useful` falls out of
//! the per-contact stats the apply phase returns ([`EngineTotals`]).
//!
//! The engine records the `engine.active_setup` /
//! `engine.active_contact_loop` / `engine.active_apply` phases through
//! [`epidemic_trace::profile`] when profiling is enabled (`repro
//! --timings`), mirroring the sequential engine's phase accounting.

use epidemic_trace::profile;
use rand::rngs::ContactRng;

use super::{ContactStats, EngineReport, EngineTotals, Observer};
use crate::bitset::BitSet;

/// A protocol the active-set engine can run.
///
/// The contract that buys parallelism and byte-stability:
///
/// * [`begin_cycle`](Self::begin_cycle) fixes the cycle's roster (and any
///   other start-of-cycle snapshot the protocol needs);
/// * [`contact`](Self::contact) is `&self` and *randomness-complete*: it
///   reads shared state, draws from its own [`ContactRng`] — including
///   any draw whose relevance is only known later (a fresh stream per
///   contact makes over-drawing free) — and returns a pure
///   [`Draw`](Self::Draw) record without mutating anything;
/// * [`apply`](Self::apply) consumes draws strictly in ascending
///   initiator order, judging each contact against current state and
///   mutating it — order-*dependent* logic is fine here, because the
///   engine fixes the order.
pub trait ActiveSetProtocol: Sync {
    /// The pure record of one contact's random choices, produced in
    /// parallel and consumed sequentially.
    type Draw: Send;

    /// Number of sites.
    fn site_count(&self) -> usize;

    /// Starts `cycle` (numbered from 1): fixes the roster snapshot.
    fn begin_cycle(&mut self, cycle: u32);

    /// The initiators for the current cycle, as a bitset over sites.
    /// Sampled after [`begin_cycle`](Self::begin_cycle); an empty set
    /// ends the run.
    fn active(&self) -> &BitSet;

    /// Samples every random choice initiator `i`'s contact might need
    /// from its private stream. Must not depend on any other contact.
    fn contact(&self, cycle: u32, i: usize, rng: &mut ContactRng) -> Self::Draw;

    /// Executes initiator `i`'s contact from its draw record against
    /// current state; returns the partner and the contact's stats.
    /// Called in ascending initiator order.
    fn apply(&mut self, cycle: u32, i: usize, draw: &Self::Draw) -> (usize, ContactStats);
}

/// Samples one chunk of initiators; the heart of both the sequential and
/// the parallel path, so they cannot drift apart.
fn draw_chunk<P: ActiveSetProtocol>(
    protocol: &P,
    seed: u64,
    cycle: u32,
    initiators: &[u32],
    out: &mut Vec<P::Draw>,
) {
    out.clear();
    out.extend(initiators.iter().map(|&i| {
        let mut rng = ContactRng::new(seed, u64::from(cycle), u64::from(i));
        protocol.contact(cycle, i as usize, &mut rng)
    }));
}

/// Below this many initiators per worker, thread spawn overhead beats the
/// parallel win and the cycle runs inline. Purely a performance knob:
/// results are identical either way.
const MIN_PARALLEL_CHUNK: usize = 4096;

/// The active-set cycle loop; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveCycleEngine {
    max_cycles: u32,
    workers: usize,
}

impl Default for ActiveCycleEngine {
    fn default() -> Self {
        ActiveCycleEngine::new()
    }
}

impl ActiveCycleEngine {
    /// An engine with the worker count from `EPIDEMIC_THREADS` (else the
    /// hardware count) and no cycle bound.
    pub fn new() -> Self {
        ActiveCycleEngine {
            max_cycles: u32::MAX,
            workers: crate::runner::default_threads(),
        }
    }

    /// Safety bound on simulated cycles.
    #[must_use]
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// Worker threads for the draw phase. Any value produces
    /// byte-identical output; `1` runs everything inline.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is 0.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is needed");
        self.workers = workers;
        self
    }

    /// Runs `protocol` to quiescence (empty active set) or the cycle
    /// bound. The report, the protocol's final state and the observer's
    /// event stream are all pure functions of `seed`.
    pub fn run<P: ActiveSetProtocol, O: Observer<P>>(
        &self,
        protocol: &mut P,
        seed: u64,
        observer: &mut O,
    ) -> EngineReport {
        use std::time::Instant;
        let timed = profile::is_enabled();
        let mut setup_nanos = 0u64;
        let mut contact_nanos = 0u64;
        let mut apply_nanos = 0u64;

        observer.on_run_start(protocol);
        let mut totals = EngineTotals::default();
        let mut cycle = 0u32;
        let mut roster: Vec<u32> = Vec::new();
        let mut chunks: Vec<Vec<P::Draw>> = (0..self.workers).map(|_| Vec::new()).collect();

        loop {
            let setup_start = timed.then(Instant::now);
            protocol.begin_cycle(cycle + 1);
            roster.clear();
            roster.extend(protocol.active().iter_ones().map(|i| i as u32));
            if let Some(start) = setup_start {
                setup_nanos += profile::span_nanos(start);
            }
            if roster.is_empty() || cycle >= self.max_cycles {
                break;
            }
            cycle += 1;

            // Draw phase: sample every contact's choices, in parallel
            // when the roster is big enough to pay for the threads.
            let contact_start = timed.then(Instant::now);
            let per_worker = roster.len().div_ceil(self.workers).max(MIN_PARALLEL_CHUNK);
            let used = roster.len().div_ceil(per_worker);
            if used <= 1 {
                draw_chunk(protocol, seed, cycle, &roster, &mut chunks[0]);
            } else {
                let protocol = &*protocol;
                std::thread::scope(|scope| {
                    for (chunk, out) in roster.chunks(per_worker).zip(chunks.iter_mut()) {
                        scope.spawn(move || draw_chunk(protocol, seed, cycle, chunk, out));
                    }
                });
            }
            if let Some(start) = contact_start {
                contact_nanos += profile::span_nanos(start);
            }

            // Apply phase: replay in ascending initiator order — chunks
            // partition the ascending roster, so chunk order *is* roster
            // order, whatever the workers did.
            let apply_start = timed.then(Instant::now);
            for (chunk, draws) in roster.chunks(per_worker).zip(chunks.iter()).take(used) {
                for (&i, draw) in chunk.iter().zip(draws.iter()) {
                    let (j, stats) = protocol.apply(cycle, i as usize, draw);
                    totals.contacts += 1;
                    totals.sent += stats.sent;
                    totals.useful += stats.useful;
                    if stats.useful == 0 {
                        totals.fruitless += 1;
                    }
                    observer.on_contact(cycle, i as usize, j, &stats);
                }
            }
            if let Some(start) = apply_start {
                apply_nanos += profile::span_nanos(start);
            }
            observer.on_cycle_end(cycle, protocol);
        }

        if timed {
            profile::record("engine.active_setup", setup_nanos);
            profile::record("engine.active_contact_loop", contact_nanos);
            profile::record("engine.active_apply", apply_nanos);
        }
        EngineReport {
            cycles: cycle,
            totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    /// A toy epidemic: each active site "infects" the next site with
    /// probability 1/2 and always deactivates itself — enough structure
    /// to exercise roster shrinkage, draws, current-state judging, and
    /// totals.
    struct Toy {
        active: BitSet,
        next: BitSet,
        infected: Vec<bool>,
    }

    impl Toy {
        fn new(n: usize) -> Self {
            let mut next = BitSet::new(n);
            next.set(0, true);
            Toy {
                active: BitSet::new(n),
                next,
                infected: {
                    let mut v = vec![false; n];
                    v[0] = true;
                    v
                },
            }
        }
    }

    impl ActiveSetProtocol for Toy {
        type Draw = bool;

        fn site_count(&self) -> usize {
            self.infected.len()
        }

        fn begin_cycle(&mut self, _cycle: u32) {
            std::mem::swap(&mut self.active, &mut self.next);
            self.next.clear();
        }

        fn active(&self) -> &BitSet {
            &self.active
        }

        fn contact(&self, _cycle: u32, _i: usize, rng: &mut ContactRng) -> bool {
            rng.random_bool(0.5)
        }

        fn apply(&mut self, _cycle: u32, i: usize, &spread: &bool) -> (usize, ContactStats) {
            let j = (i + 1) % self.site_count();
            let useful = spread && !self.infected[j];
            if useful {
                self.infected[j] = true;
                self.next.set(j, true);
            }
            (
                j,
                ContactStats {
                    sent: 1,
                    useful: u64::from(useful),
                },
            )
        }
    }

    /// Records observer callbacks so the event-stream contract is pinned.
    #[derive(Default, PartialEq, Eq, Debug)]
    struct Log {
        contacts: Vec<(u32, usize, usize, u64)>,
        cycles: u32,
    }

    impl<P: ?Sized> Observer<P> for Log {
        fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
            self.contacts.push((cycle, i, j, stats.useful));
        }
        fn on_cycle_end(&mut self, cycle: u32, _protocol: &P) {
            self.cycles = cycle;
        }
    }

    fn run_toy(n: usize, seed: u64, workers: usize) -> (Vec<bool>, EngineReport, Log) {
        let mut toy = Toy::new(n);
        let mut log = Log::default();
        let report = ActiveCycleEngine::new()
            .workers(workers)
            .max_cycles(10_000)
            .run(&mut toy, seed, &mut log);
        (toy.infected, report, log)
    }

    #[test]
    fn runs_to_quiescence_with_exact_totals() {
        let (infected, report, log) = run_toy(64, 9, 1);
        assert!(report.cycles > 0);
        assert!(infected.iter().filter(|&&b| b).count() > 1);
        assert_eq!(report.totals.contacts, log.contacts.len() as u64);
        assert_eq!(
            report.totals.fruitless,
            report.totals.contacts - report.totals.useful,
            "fruitless is reconstructed exactly"
        );
        assert_eq!(log.cycles, report.cycles);
    }

    #[test]
    fn output_is_byte_identical_at_any_worker_count() {
        let reference = run_toy(200, 3, 1);
        for workers in [2, 8] {
            let candidate = run_toy(200, 3, workers);
            assert_eq!(reference.0, candidate.0, "state at {workers} workers");
            assert_eq!(
                format!("{:?}", reference.1),
                format!("{:?}", candidate.1),
                "report at {workers} workers"
            );
            assert_eq!(reference.2, candidate.2, "events at {workers} workers");
        }
    }

    #[test]
    fn empty_active_set_ends_immediately() {
        let mut toy = Toy::new(8);
        toy.next.clear();
        toy.infected = vec![false; 8];
        let report = ActiveCycleEngine::new().run(&mut toy, 1, &mut ());
        assert_eq!(report.cycles, 0);
        assert_eq!(report.totals.contacts, 0);
    }

    #[test]
    fn cycle_bound_is_honored() {
        let mut toy = Toy::new(4096);
        let report = ActiveCycleEngine::new()
            .max_cycles(3)
            .run(&mut toy, 5, &mut ());
        assert!(report.cycles <= 3);
    }
}
