//! The shared round-synchronous simulation engine.
//!
//! Every cycle-based driver in this crate is the same machine wearing a
//! different protocol: per cycle, a roster of initiating sites is shuffled,
//! each initiator draws a partner (with optional connection limits and
//! hunting), one protocol contact runs per accepted connection, and the
//! run ends at quiescence/convergence or a cycle bound. This module owns
//! that machine exactly once:
//!
//! * [`EpidemicProtocol`] — what a contact *does* (anti-entropy exchange,
//!   rumor mongering in any [`Direction`](epidemic_core::Direction),
//!   direct mail) plus per-cycle state transitions and the finish
//!   predicate;
//! * [`PartnerPolicy`] — where partners come from: uniform complete mixing
//!   or any [`PartnerSelection`](epidemic_net::PartnerSelection) topology
//!   sampler ([`UniformPartners`], [`SpatialPartners`]);
//! * [`CycleEngine`] — the round loop itself: roster computation, scratch
//!   buffer reuse, connection-limit/hunting retries, per-contact traffic
//!   totals and the cycle bound;
//! * [`Observer`] — composable tracing hooks (per-contact events, per-cycle
//!   SIR snapshots) that replaced the drivers' bespoke trace plumbing.
//!
//! The loop preserves the historical drivers' exact RNG draw order —
//! roster filtering is ascending, shuffles come after `begin_cycle`, one
//! partner draw per hunting attempt, admission checks happen after the
//! draw — so porting a driver onto the engine is output-preserving, which
//! the golden-table and fixture tests pin down to the byte.

pub mod active;
pub mod observer;
pub mod partner;
pub mod protocols;
pub mod sharded;
pub mod trace;

pub use active::{ActiveCycleEngine, ActiveSetProtocol};
pub use observer::{Observer, SirCounts, SirObserver, SirView};
pub use partner::{NeighborPartners, PartnerPolicy, SpatialPartners, UniformPartners};
pub use protocols::{DirectMailProtocol, ReceiveLog, RouteRecorder, UpdateInjector};
pub use sharded::{
    default_shards, ContactPair, ShardableProtocol, ShardedCycleEngine, DEFAULT_SHARDS,
    SHARDS_ENV_VAR,
};
pub use trace::{AggregateObserver, InvariantObserver, TraceObserver, TraceView};

use std::time::Instant;

use epidemic_trace::{profile, MetricsSink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Traffic accounting for one protocol contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContactStats {
    /// Database updates transmitted during the contact.
    pub sent: u64,
    /// Transmissions that told the recipient something new.
    pub useful: u64,
}

impl From<epidemic_core::rumor::RumorStats> for ContactStats {
    fn from(stats: epidemic_core::rumor::RumorStats) -> Self {
        // Saturate instead of panicking: `usize > u64` only exists on
        // 128-bit targets, but the conversion sits on the hot path and a
        // megascale run must degrade to a clamped counter, not abort.
        ContactStats {
            sent: u64::try_from(stats.sent).unwrap_or(u64::MAX),
            useful: u64::try_from(stats.useful).unwrap_or(u64::MAX),
        }
    }
}

/// Which sites initiate a contact each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Roster {
    /// Every site initiates (anti-entropy, pull/push-pull rumors: polling
    /// happens whether or not there is anything to say).
    Everyone,
    /// Only sites for which [`EpidemicProtocol::is_active`] holds initiate
    /// (push rumors, direct mail: a quiescent site costs nothing).
    Active,
}

/// A pluggable epidemic protocol driven by the [`CycleEngine`].
///
/// The engine owns the round loop; the protocol owns the replicas and
/// answers four questions: who initiates ([`Self::roster`] /
/// [`Self::is_active`] / [`Self::initiates`]), who may be contacted
/// ([`Self::admits`]), what a contact does ([`Self::contact`]), and when
/// the run is over ([`Self::finished`]).
pub trait EpidemicProtocol {
    /// Number of sites being simulated.
    fn site_count(&self) -> usize;

    /// Which sites initiate contacts each cycle.
    fn roster(&self) -> Roster {
        Roster::Everyone
    }

    /// Whether site `i` is currently active (spreading). Drives the
    /// [`Roster::Active`] roster and the default quiescence test.
    fn is_active(&self, _i: usize) -> bool {
        true
    }

    /// Whether the run is over, checked before each cycle. `cycle` is the
    /// number of completed cycles; `active` lists the currently active
    /// sites in ascending order.
    fn finished(&self, cycle: u32, active: &[usize]) -> bool;

    /// Per-cycle state transition before any contact: clock advances,
    /// update injection, churn transitions, start-of-cycle snapshots.
    /// Runs before the roster shuffle, so its RNG draws (if any) come
    /// first in the cycle.
    fn begin_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {}

    /// Whether roster member `i` actually initiates this cycle (checked
    /// after the shuffle, before any partner draw) — e.g. a site that is
    /// down under churn.
    fn initiates(&self, _i: usize) -> bool {
        true
    }

    /// Whether the drawn partner `j` accepts the connection (checked after
    /// the draw, so the RNG cost of the failed attempt is still paid —
    /// connections to unreachable sites simply fail).
    fn admits(&self, _j: usize) -> bool {
        true
    }

    /// Performs one contact between initiator `i` and partner `j`.
    fn contact(&mut self, cycle: u32, i: usize, j: usize, rng: &mut StdRng) -> ContactStats;

    /// Per-cycle processing after all contacts (e.g. deferred pull-counter
    /// bookkeeping, trace accumulation).
    fn end_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {}
}

/// Aggregate contact totals for one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineTotals {
    /// Contacts executed (connections accepted).
    pub contacts: u64,
    /// Database updates transmitted.
    pub sent: u64,
    /// Transmissions that were news to the recipient.
    pub useful: u64,
    /// Contacts that transmitted nothing useful.
    pub fruitless: u64,
}

/// Outcome of one [`CycleEngine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Cycles executed before the finish predicate held (or the bound).
    pub cycles: u32,
    /// Aggregate contact totals.
    pub totals: EngineTotals,
}

/// The shared round loop: owns roster/order/admission scratch buffers
/// (reused across cycles so the hot loop allocates nothing after warm-up),
/// connection limits and hunting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleEngine {
    connection_limit: Option<u32>,
    hunt_limit: u32,
    max_cycles: u32,
}

impl Default for CycleEngine {
    fn default() -> Self {
        CycleEngine::new()
    }
}

impl CycleEngine {
    /// An engine with no connection limit, no hunting and a generous
    /// cycle bound.
    pub fn new() -> Self {
        CycleEngine {
            connection_limit: None,
            hunt_limit: 0,
            max_cycles: 100_000,
        }
    }

    /// Limits how many connections a site can accept per cycle (§1.4
    /// *Connection Limit*). `None` means unlimited.
    pub fn connection_limit(mut self, limit: Option<u32>) -> Self {
        self.connection_limit = limit;
        self
    }

    /// Alternate partners a rejected initiator may try (§1.4 *Hunting*).
    pub fn hunt_limit(mut self, hunt: u32) -> Self {
        self.hunt_limit = hunt;
        self
    }

    /// Safety bound on simulated cycles.
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// Drives `protocol` to completion, drawing partners from `policy` and
    /// reporting every event to `observer` (pass `&mut ()` to observe
    /// nothing).
    pub fn run<P, L, O>(
        &self,
        protocol: &mut P,
        policy: &L,
        rng: &mut StdRng,
        observer: &mut O,
    ) -> EngineReport
    where
        P: EpidemicProtocol,
        L: PartnerPolicy + ?Sized,
        O: Observer<P>,
    {
        self.run_instrumented(protocol, policy, rng, observer, &mut ())
    }

    /// As [`CycleEngine::run`], additionally reporting run metrics and
    /// phase timings to `sink`.
    ///
    /// Counters (`engine.cycles` / `engine.contacts` / `engine.sent` /
    /// `engine.useful` / `engine.fruitless`) and an `engine.cycle_contacts`
    /// histogram are emitted once per run; the setup / contact-loop /
    /// end-of-cycle phases are clocked only when the sink records
    /// ([`MetricsSink::ENABLED`]) or the global
    /// [`epidemic_trace::profile`] recorder is on — with the no-op
    /// sink `()` and profiling off, this monomorphizes to exactly
    /// [`CycleEngine::run`] (which delegates here).
    pub fn run_instrumented<P, L, O, S>(
        &self,
        protocol: &mut P,
        policy: &L,
        rng: &mut StdRng,
        observer: &mut O,
        sink: &mut S,
    ) -> EngineReport
    where
        P: EpidemicProtocol,
        L: PartnerPolicy + ?Sized,
        O: Observer<P>,
        S: MetricsSink,
    {
        // Audited: `Instant::now` is reached only when the sink records
        // (`S::ENABLED`) or the global profile recorder is on. With the
        // no-op sink and profiling off every `timed.then(..)` below is
        // `None` and the hot loop performs no clock syscalls — pinned by
        // `uninstrumented_run_reads_no_clocks_and_records_no_phases`.
        let timed = S::ENABLED || profile::is_enabled();
        let setup_start = timed.then(Instant::now);
        let n = protocol.site_count();
        let mut order: Vec<usize> = (0..n).collect();
        let mut active: Vec<usize> = Vec::with_capacity(n);
        let mut accepted: Vec<u32> = vec![0; n];
        let mut totals = EngineTotals::default();
        // `cycle` cannot overflow: it only increments while strictly below
        // `max_cycles`, itself a `u32`, so the counter tops out there.
        let mut cycle = 0u32;
        observer.on_run_start(protocol);
        let setup_nanos = setup_start.map_or(0, profile::span_nanos);
        let mut contact_nanos = 0u64;
        let mut end_nanos = 0u64;

        while cycle < self.max_cycles {
            let cycle_start = timed.then(Instant::now);
            let contacts_before = totals.contacts;
            active.clear();
            active.extend((0..n).filter(|&i| protocol.is_active(i)));
            if protocol.finished(cycle, &active) {
                break;
            }
            cycle += 1;
            accepted.fill(0);
            protocol.begin_cycle(cycle, rng);
            let roster: &mut Vec<usize> = match protocol.roster() {
                Roster::Active => {
                    // begin_cycle may change who is active (e.g. update
                    // injection makes fresh sites hot): recompute so they
                    // initiate this very cycle, as the drivers always did.
                    active.clear();
                    active.extend((0..n).filter(|&i| protocol.is_active(i)));
                    &mut active
                }
                Roster::Everyone => &mut order,
            };
            roster.shuffle(rng);
            for &i in roster.iter() {
                if !protocol.initiates(i) {
                    continue;
                }
                let Some(j) = self.find_partner(policy, i, &accepted, rng) else {
                    continue;
                };
                if !protocol.admits(j) {
                    continue;
                }
                accepted[j] += 1;
                let stats = protocol.contact(cycle, i, j, rng);
                totals.contacts += 1;
                totals.sent += stats.sent;
                totals.useful += stats.useful;
                if stats.useful == 0 {
                    totals.fruitless += 1;
                }
                observer.on_contact(cycle, i, j, &stats);
            }
            let contacts_end = timed.then(Instant::now);
            if let (Some(start), Some(end)) = (cycle_start, contacts_end) {
                contact_nanos += u64::try_from((end - start).as_nanos()).unwrap_or(u64::MAX);
            }
            protocol.end_cycle(cycle, rng);
            observer.on_cycle_end(cycle, protocol);
            if let Some(end) = contacts_end {
                end_nanos += profile::span_nanos(end);
            }
            if S::ENABLED {
                sink.observe(
                    "engine.cycle_contacts",
                    (totals.contacts - contacts_before) as f64,
                );
            }
        }

        if S::ENABLED {
            sink.counter("engine.cycles", u64::from(cycle));
            sink.counter("engine.contacts", totals.contacts);
            sink.counter("engine.sent", totals.sent);
            sink.counter("engine.useful", totals.useful);
            sink.counter("engine.fruitless", totals.fruitless);
            sink.phase("engine.setup", setup_nanos);
            sink.phase("engine.contact_loop", contact_nanos);
            sink.phase("engine.end_of_cycle", end_nanos);
        }
        if profile::is_enabled() {
            profile::record("engine.setup", setup_nanos);
            profile::record("engine.contact_loop", contact_nanos);
            profile::record("engine.end_of_cycle", end_nanos);
        }

        EngineReport {
            cycles: cycle,
            totals,
        }
    }

    /// Draws a partner for `i`, honoring the connection limit with up to
    /// `hunt_limit` retries. Every attempt pays its RNG draw whether or
    /// not the candidate accepts.
    fn find_partner<L: PartnerPolicy + ?Sized>(
        &self,
        policy: &L,
        i: usize,
        accepted: &[u32],
        rng: &mut StdRng,
    ) -> Option<usize> {
        for _ in 0..=self.hunt_limit {
            let j = policy.attempt(i, rng);
            match self.connection_limit {
                Some(limit) if accepted[j] >= limit => continue,
                _ => return Some(j),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A protocol where "infection" is one bit per site: every active
    /// (infected) site pushes its bit to its partner.
    struct BitPush {
        infected: Vec<bool>,
        contact_log: Vec<(usize, usize)>,
    }

    impl EpidemicProtocol for BitPush {
        fn site_count(&self) -> usize {
            self.infected.len()
        }
        fn roster(&self) -> Roster {
            Roster::Active
        }
        fn is_active(&self, i: usize) -> bool {
            self.infected[i]
        }
        fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
            self.infected.iter().all(|&b| b)
        }
        fn contact(&mut self, _cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
            self.contact_log.push((i, j));
            let useful = u64::from(!self.infected[j]);
            self.infected[j] = true;
            ContactStats { sent: 1, useful }
        }
    }

    #[test]
    fn engine_runs_a_push_epidemic_to_completion() {
        let mut protocol = BitPush {
            infected: {
                let mut v = vec![false; 32];
                v[0] = true;
                v
            },
            contact_log: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let report =
            CycleEngine::new().run(&mut protocol, &UniformPartners::new(32), &mut rng, &mut ());
        assert!(protocol.infected.iter().all(|&b| b));
        assert!(report.cycles > 0);
        assert_eq!(report.totals.contacts, protocol.contact_log.len() as u64);
        assert_eq!(report.totals.sent, report.totals.contacts);
        assert_eq!(report.totals.useful, 31, "each site infected exactly once");
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let run = || {
            let mut protocol = BitPush {
                infected: {
                    let mut v = vec![false; 24];
                    v[3] = true;
                    v
                },
                contact_log: Vec::new(),
            };
            let mut rng = StdRng::seed_from_u64(9);
            let report =
                CycleEngine::new().run(&mut protocol, &UniformPartners::new(24), &mut rng, &mut ());
            (report, protocol.contact_log)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn connection_limit_rejects_and_hunting_recovers() {
        /// Everyone initiates; contacts always succeed.
        struct Count {
            n: usize,
            cycles: u32,
            contacts: u64,
        }
        impl EpidemicProtocol for Count {
            fn site_count(&self) -> usize {
                self.n
            }
            fn finished(&self, cycle: u32, _active: &[usize]) -> bool {
                cycle >= self.cycles
            }
            fn contact(
                &mut self,
                _cycle: u32,
                _i: usize,
                _j: usize,
                _rng: &mut StdRng,
            ) -> ContactStats {
                self.contacts += 1;
                ContactStats::default()
            }
        }
        let run = |limit: Option<u32>, hunt: u32| {
            let mut protocol = Count {
                n: 40,
                cycles: 20,
                contacts: 0,
            };
            let mut rng = StdRng::seed_from_u64(2);
            CycleEngine::new()
                .connection_limit(limit)
                .hunt_limit(hunt)
                .run(&mut protocol, &UniformPartners::new(40), &mut rng, &mut ());
            protocol.contacts
        };
        let unlimited = run(None, 0);
        let limited = run(Some(1), 0);
        let hunting = run(Some(1), 8);
        assert_eq!(unlimited, 40 * 20, "every site connects every cycle");
        assert!(limited < unlimited, "limit 1 must reject some initiators");
        assert!(hunting > limited, "hunting recovers rejected connections");
    }

    #[test]
    fn max_cycles_bounds_a_run_that_never_finishes() {
        struct Never;
        impl EpidemicProtocol for Never {
            fn site_count(&self) -> usize {
                4
            }
            fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
                false
            }
            fn contact(
                &mut self,
                _cycle: u32,
                _i: usize,
                _j: usize,
                _rng: &mut StdRng,
            ) -> ContactStats {
                ContactStats::default()
            }
        }
        let mut rng = StdRng::seed_from_u64(0);
        let report = CycleEngine::new().max_cycles(17).run(
            &mut Never,
            &UniformPartners::new(4),
            &mut rng,
            &mut (),
        );
        assert_eq!(report.cycles, 17);
    }

    /// Regression (hot-path sweep): a six-figure cycle bound must run to
    /// completion with an exact cycle count — the `u32` counter is bounded
    /// by `max_cycles` and cannot wrap or misreport on long runs.
    #[test]
    fn long_runs_keep_an_exact_cycle_count() {
        struct Idle;
        impl EpidemicProtocol for Idle {
            fn site_count(&self) -> usize {
                2
            }
            fn roster(&self) -> Roster {
                Roster::Active
            }
            fn is_active(&self, _i: usize) -> bool {
                false // empty roster: cycles tick with zero contacts
            }
            fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
                false
            }
            fn contact(
                &mut self,
                _cycle: u32,
                _i: usize,
                _j: usize,
                _rng: &mut StdRng,
            ) -> ContactStats {
                unreachable!("no site is active")
            }
        }
        let mut rng = StdRng::seed_from_u64(0);
        let report = CycleEngine::new().max_cycles(250_000).run(
            &mut Idle,
            &UniformPartners::new(2),
            &mut rng,
            &mut (),
        );
        assert_eq!(report.cycles, 250_000);
        assert_eq!(report.totals.contacts, 0);
    }

    /// Regression (hot-path sweep): converting pathological `RumorStats`
    /// saturates instead of panicking — `ContactStats::from` sits on the
    /// per-contact path and must never abort a run.
    #[test]
    fn contact_stats_conversion_saturates_on_huge_counts() {
        let stats = epidemic_core::rumor::RumorStats {
            sent: usize::MAX,
            useful: usize::MAX,
            deactivated: 0,
        };
        let converted = ContactStats::from(stats);
        assert_eq!(
            converted.sent,
            u64::try_from(usize::MAX).unwrap_or(u64::MAX)
        );
        assert_eq!(converted.useful, converted.sent);
    }

    /// Audit pin (hot-path sweep): with the no-op sink and the global
    /// profile recorder off, the engine performs no phase timing at all —
    /// no `engine.*` phases appear in the profile table afterwards. (The
    /// `timed` gate in `run_instrumented` is what keeps `Instant::now`
    /// off the uninstrumented hot path.)
    #[test]
    fn uninstrumented_run_reads_no_clocks_and_records_no_phases() {
        assert!(
            !profile::is_enabled(),
            "test assumes the global recorder is off"
        );
        let mut protocol = BitPush {
            infected: {
                let mut v = vec![false; 16];
                v[0] = true;
                v
            },
            contact_log: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        CycleEngine::new().run(&mut protocol, &UniformPartners::new(16), &mut rng, &mut ());
        let phases = profile::snapshot();
        assert!(
            phases.iter().all(|p| !p.name.starts_with("engine.")),
            "uninstrumented runs must record no engine phases: {phases:?}"
        );
    }
}
