//! Observation hooks for engine runs.
//!
//! An [`Observer`] sees every contact and every cycle boundary without the
//! protocol knowing it is being watched — tracing is composed onto a run
//! instead of being compiled into each driver (this is what replaced the
//! bespoke `run_traced` plumbing in the mixing driver). The no-op observer
//! is the unit type `()`, which compiles away entirely.

use super::ContactStats;

/// Hooks invoked by [`CycleEngine::run`](super::CycleEngine::run).
///
/// All methods default to no-ops, so an observer implements only what it
/// needs. `P` is the protocol type, giving `on_cycle_end` a read-only view
/// of protocol state (e.g. SIR counts).
pub trait Observer<P: ?Sized> {
    /// Called once before the first cycle, with the initial state.
    fn on_run_start(&mut self, _protocol: &P) {}

    /// Called after every executed contact.
    fn on_contact(&mut self, _cycle: u32, _i: usize, _j: usize, _stats: &ContactStats) {}

    /// Called after each cycle completes (post `end_cycle`).
    fn on_cycle_end(&mut self, _cycle: u32, _protocol: &P) {}
}

/// The null observer: observes nothing, costs nothing.
impl<P: ?Sized> Observer<P> for () {}

/// Forwarding impl so observers can be passed by value or reference
/// interchangeably (e.g. reusing one observer across several runs).
impl<P: ?Sized, O: Observer<P>> Observer<P> for &mut O {
    fn on_run_start(&mut self, protocol: &P) {
        (**self).on_run_start(protocol);
    }
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        (**self).on_contact(cycle, i, j, stats);
    }
    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        (**self).on_cycle_end(cycle, protocol);
    }
}

/// Pair composition: both observers see every event, `A` first. Nest pairs
/// or use the 3-tuple for wider fan-out, e.g.
/// `(&mut sir_observer, &mut invariant_observer)`.
impl<P: ?Sized, A: Observer<P>, B: Observer<P>> Observer<P> for (A, B) {
    fn on_run_start(&mut self, protocol: &P) {
        self.0.on_run_start(protocol);
        self.1.on_run_start(protocol);
    }
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.0.on_contact(cycle, i, j, stats);
        self.1.on_contact(cycle, i, j, stats);
    }
    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        self.0.on_cycle_end(cycle, protocol);
        self.1.on_cycle_end(cycle, protocol);
    }
}

/// Triple composition: all three observers see every event, in order.
impl<P: ?Sized, A: Observer<P>, B: Observer<P>, C: Observer<P>> Observer<P> for (A, B, C) {
    fn on_run_start(&mut self, protocol: &P) {
        self.0.on_run_start(protocol);
        self.1.on_run_start(protocol);
        self.2.on_run_start(protocol);
    }
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.0.on_contact(cycle, i, j, stats);
        self.1.on_contact(cycle, i, j, stats);
        self.2.on_contact(cycle, i, j, stats);
    }
    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        self.0.on_cycle_end(cycle, protocol);
        self.1.on_cycle_end(cycle, protocol);
        self.2.on_cycle_end(cycle, protocol);
    }
}

/// Homogeneous fan-out: every observer in the vector sees every event, in
/// vector order. For a dynamic observer count (tuples cover the static
/// case).
impl<P: ?Sized, O: Observer<P>> Observer<P> for Vec<O> {
    fn on_run_start(&mut self, protocol: &P) {
        for obs in self.iter_mut() {
            obs.on_run_start(protocol);
        }
    }
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        for obs in self.iter_mut() {
            obs.on_contact(cycle, i, j, stats);
        }
    }
    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        for obs in self.iter_mut() {
            obs.on_cycle_end(cycle, protocol);
        }
    }
}

/// Susceptible / infective / removed counts at one instant, as site
/// counts. Protocols that model a single spreading update expose these via
/// [`SirView`] so the same trace observer serves them all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SirCounts {
    /// Sites that have not received the update.
    pub susceptible: usize,
    /// Sites actively spreading the update.
    pub infective: usize,
    /// Sites that hold the update but no longer spread it.
    pub removed: usize,
}

/// A protocol whose state projects onto the §1.4 SIR compartments.
pub trait SirView {
    /// Current susceptible/infective/removed site counts.
    fn sir_counts(&self) -> SirCounts;
}

/// Records the `(s, i, r)` fraction trajectory of a run — point 0 is the
/// state at injection, point `c` the state after cycle `c` — the simulated
/// counterpart of §1.4's differential-equation trajectory.
#[derive(Debug, Clone, Default)]
pub struct SirObserver {
    /// The recorded `(s, i, r)` fraction triples.
    pub points: Vec<(f64, f64, f64)>,
}

impl SirObserver {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SirObserver::default()
    }

    fn record<P: SirView>(&mut self, protocol: &P) {
        let SirCounts {
            susceptible,
            infective,
            removed,
        } = protocol.sir_counts();
        let n = (susceptible + infective + removed) as f64;
        self.points.push((
            susceptible as f64 / n,
            infective as f64 / n,
            removed as f64 / n,
        ));
    }
}

impl<P: SirView> Observer<P> for SirObserver {
    fn on_run_start(&mut self, protocol: &P) {
        self.record(protocol);
    }

    fn on_cycle_end(&mut self, _cycle: u32, protocol: &P) {
        self.record(protocol);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(SirCounts);
    impl SirView for Fixed {
        fn sir_counts(&self) -> SirCounts {
            self.0
        }
    }

    /// Counts events, for composition tests.
    #[derive(Default, Debug, PartialEq, Eq)]
    struct Counting {
        starts: u32,
        contacts: u32,
        cycles: u32,
    }
    impl<P: ?Sized> Observer<P> for Counting {
        fn on_run_start(&mut self, _protocol: &P) {
            self.starts += 1;
        }
        fn on_contact(&mut self, _cycle: u32, _i: usize, _j: usize, _stats: &ContactStats) {
            self.contacts += 1;
        }
        fn on_cycle_end(&mut self, _cycle: u32, _protocol: &P) {
            self.cycles += 1;
        }
    }

    fn drive<O: Observer<()>>(observer: &mut O) {
        observer.on_run_start(&());
        observer.on_contact(1, 0, 1, &ContactStats::default());
        observer.on_contact(1, 2, 3, &ContactStats::default());
        observer.on_cycle_end(1, &());
    }

    #[test]
    fn tuple_observers_both_see_every_event() {
        let mut pair = (Counting::default(), Counting::default());
        drive(&mut pair);
        let expected = Counting {
            starts: 1,
            contacts: 2,
            cycles: 1,
        };
        assert_eq!(pair.0, expected);
        assert_eq!(pair.1, expected);

        let mut triple = (
            Counting::default(),
            Counting::default(),
            Counting::default(),
        );
        drive(&mut triple);
        for obs in [&triple.0, &triple.1, &triple.2] {
            assert_eq!(obs.contacts, 2);
        }
    }

    #[test]
    fn vec_and_mut_ref_observers_compose() {
        let mut many = vec![Counting::default(), Counting::default()];
        drive(&mut many);
        assert!(many.iter().all(|c| c.starts == 1 && c.contacts == 2));

        // A `&mut` observer can be composed without giving up ownership.
        let mut keep = Counting::default();
        let mut pair = (&mut keep, Counting::default());
        drive(&mut pair);
        assert_eq!(keep.cycles, 1);
    }

    #[test]
    fn sir_observer_records_fractions_that_sum_to_one() {
        let state = Fixed(SirCounts {
            susceptible: 6,
            infective: 1,
            removed: 3,
        });
        let mut obs = SirObserver::new();
        obs.on_run_start(&state);
        obs.on_cycle_end(1, &state);
        assert_eq!(obs.points.len(), 2);
        for &(s, i, r) in &obs.points {
            assert!((s + i + r - 1.0).abs() < 1e-12);
            assert!((s - 0.6).abs() < 1e-12);
            assert!((i - 0.1).abs() < 1e-12);
            assert!((r - 0.3).abs() < 1e-12);
        }
    }
}
