//! Observation hooks for engine runs.
//!
//! An [`Observer`] sees every contact and every cycle boundary without the
//! protocol knowing it is being watched — tracing is composed onto a run
//! instead of being compiled into each driver (this is what replaced the
//! bespoke `run_traced` plumbing in the mixing driver). The no-op observer
//! is the unit type `()`, which compiles away entirely.

use super::ContactStats;

/// Hooks invoked by [`CycleEngine::run`](super::CycleEngine::run).
///
/// All methods default to no-ops, so an observer implements only what it
/// needs. `P` is the protocol type, giving `on_cycle_end` a read-only view
/// of protocol state (e.g. SIR counts).
pub trait Observer<P: ?Sized> {
    /// Called once before the first cycle, with the initial state.
    fn on_run_start(&mut self, _protocol: &P) {}

    /// Called after every executed contact.
    fn on_contact(&mut self, _cycle: u32, _i: usize, _j: usize, _stats: &ContactStats) {}

    /// Called after each cycle completes (post `end_cycle`).
    fn on_cycle_end(&mut self, _cycle: u32, _protocol: &P) {}
}

/// The null observer: observes nothing, costs nothing.
impl<P: ?Sized> Observer<P> for () {}

/// Susceptible / infective / removed counts at one instant, as site
/// counts. Protocols that model a single spreading update expose these via
/// [`SirView`] so the same trace observer serves them all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SirCounts {
    /// Sites that have not received the update.
    pub susceptible: usize,
    /// Sites actively spreading the update.
    pub infective: usize,
    /// Sites that hold the update but no longer spread it.
    pub removed: usize,
}

/// A protocol whose state projects onto the §1.4 SIR compartments.
pub trait SirView {
    /// Current susceptible/infective/removed site counts.
    fn sir_counts(&self) -> SirCounts;
}

/// Records the `(s, i, r)` fraction trajectory of a run — point 0 is the
/// state at injection, point `c` the state after cycle `c` — the simulated
/// counterpart of §1.4's differential-equation trajectory.
#[derive(Debug, Clone, Default)]
pub struct SirObserver {
    /// The recorded `(s, i, r)` fraction triples.
    pub points: Vec<(f64, f64, f64)>,
}

impl SirObserver {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SirObserver::default()
    }

    fn record<P: SirView>(&mut self, protocol: &P) {
        let SirCounts {
            susceptible,
            infective,
            removed,
        } = protocol.sir_counts();
        let n = (susceptible + infective + removed) as f64;
        self.points.push((
            susceptible as f64 / n,
            infective as f64 / n,
            removed as f64 / n,
        ));
    }
}

impl<P: SirView> Observer<P> for SirObserver {
    fn on_run_start(&mut self, protocol: &P) {
        self.record(protocol);
    }

    fn on_cycle_end(&mut self, _cycle: u32, protocol: &P) {
        self.record(protocol);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(SirCounts);
    impl SirView for Fixed {
        fn sir_counts(&self) -> SirCounts {
            self.0
        }
    }

    #[test]
    fn sir_observer_records_fractions_that_sum_to_one() {
        let state = Fixed(SirCounts {
            susceptible: 6,
            infective: 1,
            removed: 3,
        });
        let mut obs = SirObserver::new();
        obs.on_run_start(&state);
        obs.on_cycle_end(1, &state);
        assert_eq!(obs.points.len(), 2);
        for &(s, i, r) in &obs.points {
            assert!((s + i + r - 1.0).abs() < 1e-12);
            assert!((s - 0.6).abs() < 1e-12);
            assert!((i - 0.1).abs() < 1e-12);
            assert!((r - 0.3).abs() < 1e-12);
        }
    }
}
