//! Partner-selection policies for the [`CycleEngine`](super::CycleEngine).
//!
//! A [`PartnerPolicy`] produces exactly one candidate partner per call —
//! the engine layers connection limits and hunting (retry draws) on top,
//! so the *same* limit/hunt logic serves uniform mixing and topology-aware
//! spatial selection. Each `attempt` consumes exactly the RNG draws the
//! historical drivers consumed, which is what keeps the engine port
//! byte-identical to the pre-engine simulators.

use epidemic_db::SiteId;
use epidemic_net::{DegreeGraph, PartnerSelection};
use rand::rngs::StdRng;
use rand::RngExt;

/// A source of candidate gossip partners for the engine's contact loop.
///
/// `attempt` draws one candidate for initiator `i` (a dense site index,
/// never `i` itself). The engine calls it once per hunting attempt; a
/// policy must not loop internally.
pub trait PartnerPolicy {
    /// Draws one candidate partner index for initiator `i`.
    fn attempt(&self, i: usize, rng: &mut StdRng) -> usize;
}

/// Uniform complete mixing over `n` sites: every other site is equally
/// likely (the Tables 1–3 model). Uses the classic skip-self draw — one
/// `random_range(0..n-1)` per attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformPartners {
    n: usize,
}

impl UniformPartners {
    /// Creates the policy for a fleet of `n` sites.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — with one site there is nobody to gossip with.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "an epidemic needs at least two sites");
        UniformPartners { n }
    }
}

impl PartnerPolicy for UniformPartners {
    fn attempt(&self, i: usize, rng: &mut StdRng) -> usize {
        let mut j = rng.random_range(0..self.n - 1);
        if j >= i {
            j += 1;
        }
        j
    }
}

/// Topology-aware selection: delegates to any
/// [`PartnerSelection`] strategy (flat
/// [`Spatial`](epidemic_net::Spatial) distributions, the §4 hierarchy, …)
/// and maps the chosen [`SiteId`] back to the dense replica index the
/// engine works with.
#[derive(Debug, Clone, Copy)]
pub struct SpatialPartners<'a, S> {
    sites: &'a [SiteId],
    sampler: &'a S,
}

impl<'a, S: PartnerSelection> SpatialPartners<'a, S> {
    /// Wraps `sampler` for the (sorted) dense site list `sites`.
    pub fn new(sites: &'a [SiteId], sampler: &'a S) -> Self {
        SpatialPartners { sites, sampler }
    }
}

impl<S: PartnerSelection> PartnerPolicy for SpatialPartners<'_, S> {
    fn attempt(&self, i: usize, rng: &mut StdRng) -> usize {
        let partner = self.sampler.select(self.sites[i], rng);
        self.sites.binary_search(&partner).expect("site exists")
    }
}

/// Adjacency-constrained selection over a [`DegreeGraph`]: the initiator
/// gossips with a uniform random *neighbor*. This is the megascale analog
/// of [`SpatialPartners`] — at 10⁵–10⁶ sites there is no routing table to
/// weight by distance, and the heterogeneous-degree dynamics come entirely
/// from the topology itself (hubs are drawn as partners in proportion to
/// their degree). One RNG draw per attempt, like every other policy.
#[derive(Debug, Clone, Copy)]
pub struct NeighborPartners<'a> {
    graph: &'a DegreeGraph,
}

impl<'a> NeighborPartners<'a> {
    /// Wraps a graph whose dense site indices coincide with the engine's.
    ///
    /// # Panics
    ///
    /// Panics if any site is isolated — an isolated initiator would have
    /// no partner to draw.
    pub fn new(graph: &'a DegreeGraph) -> Self {
        assert!(
            (0..graph.site_count()).all(|i| graph.degree(i) > 0),
            "every site needs at least one neighbor to gossip with"
        );
        NeighborPartners { graph }
    }
}

impl PartnerPolicy for NeighborPartners<'_> {
    fn attempt(&self, i: usize, rng: &mut StdRng) -> usize {
        let neighbors = self.graph.neighbors(i);
        neighbors[rng.random_range(0..neighbors.len())] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_net::{topologies, PartnerSampler, Routes, Spatial};
    use rand::SeedableRng;

    #[test]
    fn uniform_never_returns_self_and_covers_everyone() {
        let policy = UniformPartners::new(5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let j = policy.attempt(2, &mut rng);
            assert_ne!(j, 2);
            seen[j] = true;
        }
        assert!(seen.iter().enumerate().all(|(i, &s)| s || i == 2));
    }

    #[test]
    fn uniform_matches_the_historical_skip_self_idiom() {
        let policy = UniformPartners::new(7);
        let mut a = StdRng::seed_from_u64(11);
        let mut b = StdRng::seed_from_u64(11);
        for i in 0..7 {
            let expected = {
                let mut j = b.random_range(0..6);
                if j >= i {
                    j += 1;
                }
                j
            };
            assert_eq!(policy.attempt(i, &mut a), expected);
        }
    }

    #[test]
    #[should_panic(expected = "two sites")]
    fn uniform_rejects_degenerate_fleets() {
        let _ = UniformPartners::new(1);
    }

    #[test]
    fn neighbor_policy_draws_only_adjacent_sites() {
        let graph = DegreeGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let policy = NeighborPartners::new(&graph);
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..5 {
            for _ in 0..40 {
                let j = policy.attempt(i, &mut rng);
                assert!(graph.neighbors(i).contains(&(j as u32)), "{i} -> {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one neighbor")]
    fn neighbor_policy_rejects_isolated_sites() {
        let graph = DegreeGraph::from_edges(3, &[(0, 1)]);
        let _ = NeighborPartners::new(&graph);
    }

    #[test]
    fn spatial_maps_back_to_dense_indices() {
        let topo = topologies::ring(8);
        let routes = Routes::compute(&topo);
        let sampler = PartnerSampler::new(&topo, &routes, Spatial::Uniform);
        let policy = SpatialPartners::new(topo.sites(), &sampler);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..8 {
            let j = policy.attempt(i, &mut rng);
            assert!(j < 8);
            assert_ne!(j, i, "PartnerSelection never returns the chooser");
        }
    }
}
