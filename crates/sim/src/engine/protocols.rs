//! Shared protocol building blocks and a reference protocol.
//!
//! The drivers' ports onto the [`CycleEngine`](super::CycleEngine) all need
//! the same bookkeeping: who has received the update and when
//! ([`ReceiveLog`]), per-link comparison/update traffic ([`RouteRecorder`]),
//! Poisson-ish client-update injection ([`UpdateInjector`]), and the
//! uniform random-pair draw the scenario tests use ([`random_pair`]).
//! Each existed as copy-pasted inline code in several drivers; now each
//! exists once.
//!
//! The paper's three propagation mechanisms live here as engine
//! protocols: `MixingProtocol` (§1.4 rumor mongering over complete
//! mixing, with the connection-limit/hunting variants supplied by the
//! engine), `BitAntiEntropyProtocol` (§1.3 anti-entropy on one bit of
//! state per site), and [`DirectMailProtocol`] — §1.1's baseline, where
//! the originating site mails its update to `n - 1` randomly addressed
//! recipients and then goes quiet. Nobody re-mails, so duplicate
//! addressing leaves a residue of never-notified sites — the motivating
//! failure the other two mechanisms repair.

use epidemic_core::rumor::{self, RumorConfig, RumorScratch};
use epidemic_core::{Direction, Feedback, Removal, Replica};
use epidemic_db::SiteId;
use epidemic_net::{LinkTraffic, Routes};
use rand::rngs::StdRng;
use rand::RngExt;

use super::{
    ContactPair, ContactStats, EpidemicProtocol, Roster, ShardableProtocol, SirCounts, SirView,
    UniformPartners,
};
use crate::bitset::BitSet;
use crate::engine::PartnerPolicy;
use crate::util::pair_mut;

/// The single key every single-update protocol spreads.
const KEY: u32 = 0;

/// Per-site receive times for a single spreading update.
///
/// `T` is the clock type: cycles (`u32`) for the round-synchronous drivers,
/// microseconds (`u64`) for the event-driven ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiveLog<T = u32> {
    times: Vec<Option<T>>,
}

impl<T: Copy> ReceiveLog<T> {
    /// A log for `n` sites, none of which has received the update.
    pub fn new(n: usize) -> Self {
        ReceiveLog {
            times: vec![None; n],
        }
    }

    /// Records that site `i` received the update at time `t`, unless it
    /// already had it. Returns whether this was the first receipt.
    pub fn mark(&mut self, i: usize, t: T) -> bool {
        if self.times[i].is_none() {
            self.times[i] = Some(t);
            true
        } else {
            false
        }
    }

    /// Whether site `i` has received the update.
    pub fn is_marked(&self, i: usize) -> bool {
        self.times[i].is_some()
    }

    /// Whether every site has received the update.
    pub fn complete(&self) -> bool {
        self.times.iter().all(Option::is_some)
    }

    /// Number of sites that have received the update.
    pub fn received_count(&self) -> usize {
        self.times.iter().flatten().count()
    }

    /// Fraction of sites still missing the update (the paper's *residue*).
    pub fn residue(&self) -> f64 {
        (self.times.len() - self.received_count()) as f64 / self.times.len() as f64
    }

    /// Indices of sites that never received the update, ascending.
    pub fn unreceived(&self) -> impl Iterator<Item = usize> + '_ {
        self.times
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_none())
            .map(|(i, _)| i)
    }

    /// The raw per-site receive times.
    pub fn times(&self) -> &[Option<T>] {
        &self.times
    }
}

impl<T: Copy + Ord> ReceiveLog<T> {
    /// Latest receive time, if anyone received the update.
    pub fn t_last(&self) -> Option<T> {
        self.times.iter().flatten().max().copied()
    }
}

impl<T: Copy + Into<u64>> ReceiveLog<T> {
    /// Mean receive time over sites that *did* receive the update
    /// (`0.0` if nobody did) — the mixing driver's `t_ave` convention.
    pub fn t_ave_received(&self) -> f64 {
        let received: Vec<u64> = self.times.iter().flatten().map(|&t| t.into()).collect();
        if received.is_empty() {
            0.0
        } else {
            received.iter().sum::<u64>() as f64 / received.len() as f64
        }
    }

    /// Mean receive time over *all* sites, charging `fallback` to sites
    /// that never received the update — the spatial drivers' convention.
    pub fn t_ave_all(&self, fallback: T) -> f64 {
        let n = self.times.len();
        let sum: u64 = self
            .times
            .iter()
            .map(|t| t.unwrap_or(fallback).into())
            .sum();
        sum as f64 / n as f64
    }
}

/// Paired comparison/update traffic counters for a spatial run.
///
/// Every contact charges one *comparison* unit along the route; an update
/// charges `update_units` additional units (entries shipped, or simply
/// 1 when an update flowed).
#[derive(Debug)]
pub struct RouteRecorder<'a> {
    routes: &'a Routes,
    /// Conversation (comparison) traffic: one route charge per contact.
    pub compare: LinkTraffic,
    /// Update traffic: one route charge per transmitted unit.
    pub update: LinkTraffic,
}

impl<'a> RouteRecorder<'a> {
    /// Creates zeroed counters for a topology with `links` links.
    pub fn new(routes: &'a Routes, links: usize) -> Self {
        RouteRecorder {
            routes,
            compare: LinkTraffic::new(links),
            update: LinkTraffic::new(links),
        }
    }

    /// Records one conversation `from → to` that shipped `update_units`
    /// units of update traffic.
    pub fn record(&mut self, from: SiteId, to: SiteId, update_units: u64) {
        self.compare.record_route(self.routes, from, to);
        for _ in 0..update_units {
            self.update.record_route(self.routes, from, to);
        }
    }

    /// The routing table the recorder charges against.
    pub fn routes(&self) -> &'a Routes {
        self.routes
    }
}

/// Fractional-rate client-update injection with carry accumulation.
///
/// At `rate` updates per cycle, [`inject`](Self::inject) fires
/// `floor(carry + rate)` updates this cycle and carries the remainder, so
/// e.g. `rate = 0.5` injects one update every other cycle. Keys are
/// sequential from zero, sites uniform random — exactly the loop the
/// steady-state drivers each inlined.
#[derive(Debug, Clone, Copy)]
pub struct UpdateInjector {
    rate: f64,
    carry: f64,
    next_key: u32,
}

impl UpdateInjector {
    /// An injector producing `rate` updates per cycle on average.
    pub fn new(rate: f64) -> Self {
        UpdateInjector {
            rate,
            carry: 0.0,
            next_key: 0,
        }
    }

    /// Runs one cycle of injection over `n` sites, calling
    /// `place(site, key)` for each new update. Returns how many updates
    /// were injected this cycle.
    pub fn inject(&mut self, n: usize, rng: &mut StdRng, mut place: impl FnMut(usize, u32)) -> u32 {
        let due = self.due();
        for _ in 0..due {
            let site = rng.random_range(0..n);
            let key = self.alloc_key();
            place(site, key);
        }
        due
    }

    /// Advances the carry accumulator by one cycle and returns how many
    /// operations are due, for callers that place updates themselves
    /// (e.g. a weighted workload mix choosing among update/delete/read).
    pub fn due(&mut self) -> u32 {
        let mut due = 0;
        self.carry += self.rate;
        while self.carry >= 1.0 {
            self.carry -= 1.0;
            due += 1;
        }
        due
    }

    /// Mints the next sequential key without drawing a site.
    pub fn alloc_key(&mut self) -> u32 {
        let key = self.next_key;
        // Checked-with-context rather than a silent debug-only wrap: a
        // steady-state run long enough to mint 2^32 keys would start
        // recycling update identities, corrupting every receive log.
        self.next_key = self
            .next_key
            .checked_add(1)
            .expect("update key space (u32) exhausted; shorten the run or widen the key type");
        key
    }

    /// Total updates injected so far (equivalently, the next unused key).
    pub fn injected(&self) -> u32 {
        self.next_key
    }
}

/// Draws a uniform random ordered pair of distinct site indices — the
/// `(i, j)` draw the scenario tests perform for ad-hoc anti-entropy
/// exchanges. Uses the same skip-self idiom as [`UniformPartners`].
pub fn random_pair(n: usize, rng: &mut StdRng) -> (usize, usize) {
    let i = rng.random_range(0..n);
    let j = UniformPartners::new(n).attempt(i, rng);
    (i, j)
}

/// Single-update rumor mongering as an engine protocol: push initiators
/// are the infective sites, pull/push-pull initiators are everyone, and
/// the synchronous variants judge feedback against start-of-cycle
/// snapshots captured in `begin_cycle`.
///
/// Public so observers can be written against it (it is the `P` of
/// [`RumorEpidemic::run_observed`](crate::mixing::RumorEpidemic::run_observed));
/// construction stays crate-internal.
pub struct MixingProtocol {
    pub(crate) cfg: RumorConfig,
    pub(crate) synchronous: bool,
    pub(crate) sites: Vec<Replica<u32, u32>>,
    pub(crate) received: ReceiveLog<u32>,
    /// Start-of-cycle "holds the update" snapshot (push/pull synchronous),
    /// packed one bit per site.
    pub(crate) state0: BitSet,
    /// Start-of-cycle "is infective" snapshot (pull synchronous), packed
    /// one bit per site.
    pub(crate) hot0: BitSet,
    /// Reused hot-key snapshot buffers for the sequential contact paths.
    pub(crate) scratch: RumorScratch<u32>,
}

impl EpidemicProtocol for MixingProtocol {
    fn site_count(&self) -> usize {
        self.sites.len()
    }

    fn roster(&self) -> Roster {
        match self.cfg.direction {
            Direction::Push => Roster::Active,
            Direction::Pull | Direction::PushPull => Roster::Everyone,
        }
    }

    fn is_active(&self, i: usize) -> bool {
        !self.sites[i].hot().is_empty()
    }

    fn finished(&self, _cycle: u32, active: &[usize]) -> bool {
        active.is_empty()
    }

    fn begin_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        match self.cfg.direction {
            Direction::Push => {
                for (idx, site) in self.sites.iter().enumerate() {
                    self.state0.set(idx, site.db().entry(&KEY).is_some());
                }
            }
            Direction::Pull => {
                for (idx, site) in self.sites.iter().enumerate() {
                    self.state0.set(idx, site.db().entry(&KEY).is_some());
                    self.hot0.set(idx, site.is_infective(&KEY));
                }
            }
            Direction::PushPull => {}
        }
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, rng: &mut StdRng) -> ContactStats {
        match self.cfg.direction {
            Direction::Push => {
                let (a, b) = pair_mut(&mut self.sites, i, j);
                if self.synchronous {
                    // Single-rumor push against start-of-cycle state.
                    let Some(entry) = a.db().entry(&KEY).cloned() else {
                        a.hot_mut().remove(&KEY);
                        return ContactStats::default();
                    };
                    let applied = b.receive_rumor(KEY, entry).was_useful();
                    rumor::record_feedback(&self.cfg, a, &KEY, !self.state0.get(j), rng);
                    if applied {
                        self.received.mark(j, cycle);
                    }
                    ContactStats {
                        sent: 1,
                        useful: u64::from(applied),
                    }
                } else {
                    let stats =
                        rumor::push_contact_with(&self.cfg, a, b, rng, &mut self.scratch.a_keys);
                    if stats.useful > 0 {
                        self.received.mark(j, cycle);
                    }
                    stats.into()
                }
            }
            Direction::Pull => {
                let (requester, source) = pair_mut(&mut self.sites, i, j);
                if self.synchronous {
                    // Serve from the source's start-of-cycle state.
                    if !self.hot0.get(j) {
                        return ContactStats::default();
                    }
                    let Some(entry) = source.db().entry(&KEY).cloned() else {
                        return ContactStats::default();
                    };
                    let applied = requester.receive_rumor(KEY, entry).was_useful();
                    let needed = match self.cfg.feedback {
                        Feedback::Feedback => !self.state0.get(i),
                        Feedback::Blind => false,
                    };
                    match self.cfg.removal {
                        Removal::Counter { .. } => {
                            source.hot_mut().record_pending(&KEY, needed);
                        }
                        Removal::Coin { .. } => {
                            rumor::record_feedback(&self.cfg, source, &KEY, needed, rng);
                        }
                    }
                    if applied {
                        self.received.mark(i, cycle);
                    }
                    ContactStats {
                        sent: 1,
                        useful: u64::from(applied),
                    }
                } else {
                    let stats = rumor::pull_contact_with(
                        &self.cfg,
                        requester,
                        source,
                        rng,
                        &mut self.scratch.b_keys,
                    );
                    if stats.useful > 0 {
                        self.received.mark(i, cycle);
                    }
                    stats.into()
                }
            }
            Direction::PushPull => {
                let (a, b) = pair_mut(&mut self.sites, i, j);
                let stats = rumor::push_pull_contact_with(&self.cfg, a, b, rng, &mut self.scratch);
                for idx in [i, j] {
                    if self.sites[idx].db().entry(&KEY).is_some() {
                        self.received.mark(idx, cycle);
                    }
                }
                stats.into()
            }
        }
    }

    fn end_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        if self.cfg.direction == Direction::Pull {
            for site in &mut self.sites {
                rumor::end_cycle(&self.cfg, site);
            }
        }
    }
}

/// Read-only cycle context for the sharded mixing path: configuration and
/// the start-of-cycle snapshots captured by `begin_cycle`.
pub struct MixingCtx<'p> {
    cfg: &'p RumorConfig,
    synchronous: bool,
    state0: &'p BitSet,
    hot0: &'p BitSet,
}

/// Per-shard accumulator for the sharded mixing path: one rumor scratch
/// per shard (PR 4's buffer-reuse discipline, now shard-owned) plus the
/// deferred receive-log marks.
pub struct MixingShard {
    scratch: RumorScratch<u32>,
    marks: Vec<(usize, u32)>,
}

impl ShardableProtocol for MixingProtocol {
    type Site = Replica<u32, u32>;
    type Ctx<'p> = MixingCtx<'p>;
    type Shard = MixingShard;

    fn make_shard(&self) -> MixingShard {
        MixingShard {
            scratch: RumorScratch::new(),
            marks: Vec::new(),
        }
    }

    fn split(&mut self) -> (MixingCtx<'_>, &mut [Replica<u32, u32>]) {
        (
            MixingCtx {
                cfg: &self.cfg,
                synchronous: self.synchronous,
                state0: &self.state0,
                hot0: &self.hot0,
            },
            &mut self.sites,
        )
    }

    fn contact_sharded(
        ctx: &MixingCtx<'_>,
        shard: &mut MixingShard,
        cycle: u32,
        pair: ContactPair<'_, Replica<u32, u32>>,
        rng: &mut StdRng,
    ) -> ContactStats {
        let ContactPair { i, a, j, b } = pair;
        match ctx.cfg.direction {
            Direction::Push => {
                if ctx.synchronous {
                    let Some(entry) = a.db().entry(&KEY).cloned() else {
                        a.hot_mut().remove(&KEY);
                        return ContactStats::default();
                    };
                    let applied = b.receive_rumor(KEY, entry).was_useful();
                    rumor::record_feedback(ctx.cfg, a, &KEY, !ctx.state0.get(j), rng);
                    if applied {
                        shard.marks.push((j, cycle));
                    }
                    ContactStats {
                        sent: 1,
                        useful: u64::from(applied),
                    }
                } else {
                    let stats =
                        rumor::push_contact_with(ctx.cfg, a, b, rng, &mut shard.scratch.a_keys);
                    if stats.useful > 0 {
                        shard.marks.push((j, cycle));
                    }
                    stats.into()
                }
            }
            Direction::Pull => {
                let (requester, source) = (a, b);
                if ctx.synchronous {
                    if !ctx.hot0.get(j) {
                        return ContactStats::default();
                    }
                    let Some(entry) = source.db().entry(&KEY).cloned() else {
                        return ContactStats::default();
                    };
                    let applied = requester.receive_rumor(KEY, entry).was_useful();
                    let needed = match ctx.cfg.feedback {
                        Feedback::Feedback => !ctx.state0.get(i),
                        Feedback::Blind => false,
                    };
                    match ctx.cfg.removal {
                        Removal::Counter { .. } => {
                            source.hot_mut().record_pending(&KEY, needed);
                        }
                        Removal::Coin { .. } => {
                            rumor::record_feedback(ctx.cfg, source, &KEY, needed, rng);
                        }
                    }
                    if applied {
                        shard.marks.push((i, cycle));
                    }
                    ContactStats {
                        sent: 1,
                        useful: u64::from(applied),
                    }
                } else {
                    let stats = rumor::pull_contact_with(
                        ctx.cfg,
                        requester,
                        source,
                        rng,
                        &mut shard.scratch.b_keys,
                    );
                    if stats.useful > 0 {
                        shard.marks.push((i, cycle));
                    }
                    stats.into()
                }
            }
            Direction::PushPull => {
                let stats = rumor::push_pull_contact_with(ctx.cfg, a, b, rng, &mut shard.scratch);
                if a.db().entry(&KEY).is_some() {
                    shard.marks.push((i, cycle));
                }
                if b.db().entry(&KEY).is_some() {
                    shard.marks.push((j, cycle));
                }
                stats.into()
            }
        }
    }

    fn absorb(&mut self, shard: &mut MixingShard) {
        // Every mark in a cycle carries the same cycle value and
        // `ReceiveLog::mark` keeps the first receipt, so drain order
        // across shards cannot change the recorded times.
        for (site, cycle) in shard.marks.drain(..) {
            self.received.mark(site, cycle);
        }
    }
}

impl SirView for MixingProtocol {
    fn sir_counts(&self) -> SirCounts {
        let infective = self.sites.iter().filter(|r| !r.hot().is_empty()).count();
        let have = self
            .sites
            .iter()
            .filter(|r| r.db().entry(&KEY).is_some())
            .count();
        SirCounts {
            susceptible: self.sites.len() - have,
            infective,
            removed: have - infective,
        }
    }
}

/// §1.3 anti-entropy with one bit of state per site: every site initiates
/// each cycle and differences resolve against the start-of-cycle snapshot.
///
/// Public so observers can be written against it (it is the `P` of
/// [`AntiEntropyEpidemic::run_observed`](crate::mixing::AntiEntropyEpidemic::run_observed));
/// construction stays crate-internal.
pub struct BitAntiEntropyProtocol {
    pub(crate) direction: Direction,
    pub(crate) infected: Vec<bool>,
    pub(crate) snapshot: BitSet,
    pub(crate) count: usize,
    pub(crate) trace: Vec<f64>,
}

impl EpidemicProtocol for BitAntiEntropyProtocol {
    fn site_count(&self) -> usize {
        self.infected.len()
    }

    fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
        self.count == self.infected.len()
    }

    fn begin_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        // Synchronous semantics: resolve against start-of-cycle state.
        self.snapshot.copy_from_bools(&self.infected);
    }

    fn contact(&mut self, _cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        let mut useful = 0;
        if self.direction.pushes() && self.snapshot.get(i) && !self.infected[j] {
            self.infected[j] = true;
            self.count += 1;
            useful += 1;
        }
        if self.direction.pulls() && self.snapshot.get(j) && !self.infected[i] {
            self.infected[i] = true;
            self.count += 1;
            useful += 1;
        }
        ContactStats {
            sent: useful,
            useful,
        }
    }

    fn end_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        let n = self.infected.len();
        self.trace.push((n - self.count) as f64 / n as f64);
    }
}

/// Read-only cycle context for the sharded bit-anti-entropy path.
pub struct BitAeCtx<'p> {
    direction: Direction,
    snapshot: &'p BitSet,
}

impl ShardableProtocol for BitAntiEntropyProtocol {
    type Site = bool;
    type Ctx<'p> = BitAeCtx<'p>;
    /// Newly infected sites charged by this shard's contacts.
    type Shard = usize;

    fn make_shard(&self) -> usize {
        0
    }

    fn split(&mut self) -> (BitAeCtx<'_>, &mut [bool]) {
        (
            BitAeCtx {
                direction: self.direction,
                snapshot: &self.snapshot,
            },
            &mut self.infected,
        )
    }

    fn contact_sharded(
        ctx: &BitAeCtx<'_>,
        shard: &mut usize,
        _cycle: u32,
        pair: ContactPair<'_, bool>,
        _rng: &mut StdRng,
    ) -> ContactStats {
        let ContactPair { i, a, j, b } = pair;
        let mut useful = 0;
        if ctx.direction.pushes() && ctx.snapshot.get(i) && !*b {
            *b = true;
            *shard += 1;
            useful += 1;
        }
        if ctx.direction.pulls() && ctx.snapshot.get(j) && !*a {
            *a = true;
            *shard += 1;
            useful += 1;
        }
        ContactStats {
            sent: useful,
            useful,
        }
    }

    fn absorb(&mut self, shard: &mut usize) {
        self.count += *shard;
        *shard = 0;
    }
}

impl SirView for BitAntiEntropyProtocol {
    fn sir_counts(&self) -> SirCounts {
        // Anti-entropy has no removal: every informed site keeps resolving
        // differences forever, so the removed compartment is always empty.
        SirCounts {
            susceptible: self.infected.len() - self.count,
            infective: self.count,
            removed: 0,
        }
    }
}

/// §1.1 direct mail as an engine protocol.
///
/// The originating site mails its update to `n - 1` uniformly random
/// recipients — matching the *number* of messages a complete mailing would
/// take — but random addressing double-mails some sites and misses others,
/// and recipients never forward. The run ends when the mailing budget is
/// spent; [`ReceiveLog::residue`] on [`Self::deliveries`] measures the
/// coverage gap.
#[derive(Debug)]
pub struct DirectMailProtocol {
    pub(crate) sites: Vec<Replica<u32, u32>>,
    origin: usize,
    remaining: u32,
    received: ReceiveLog<u32>,
}

impl DirectMailProtocol {
    const KEY: u32 = 0;

    /// `n` sites with the update injected at `origin` and a mailing budget
    /// of `n - 1` messages.
    pub fn new(n: usize, origin: usize) -> Self {
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        sites[origin].client_update(Self::KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(origin, 0);
        DirectMailProtocol {
            sites,
            origin,
            remaining: u32::try_from(n - 1).expect("mailing budget fits u32"),
            received,
        }
    }

    /// Per-site receive log after (or during) a run.
    pub fn deliveries(&self) -> &ReceiveLog<u32> {
        &self.received
    }
}

impl EpidemicProtocol for DirectMailProtocol {
    fn site_count(&self) -> usize {
        self.sites.len()
    }

    fn roster(&self) -> Roster {
        Roster::Active
    }

    fn is_active(&self, i: usize) -> bool {
        i == self.origin && self.remaining > 0
    }

    fn finished(&self, _cycle: u32, active: &[usize]) -> bool {
        active.is_empty()
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        self.remaining -= 1;
        let entry = self.sites[i]
            .db()
            .entry(&Self::KEY)
            .cloned()
            .expect("the origin holds the update it mails");
        let useful = self.sites[j].receive_rumor(Self::KEY, entry).was_useful();
        if useful {
            self.received.mark(j, cycle);
        }
        ContactStats {
            sent: 1,
            useful: u64::from(useful),
        }
    }
}

/// Per-shard accumulator for the sharded direct-mail path: mails charged
/// against the budget plus the deferred receive-log marks.
#[derive(Debug, Default)]
pub struct DirectMailShard {
    mailed: u32,
    marks: Vec<(usize, u32)>,
}

impl ShardableProtocol for DirectMailProtocol {
    type Site = Replica<u32, u32>;
    type Ctx<'p> = ();
    type Shard = DirectMailShard;

    fn make_shard(&self) -> DirectMailShard {
        DirectMailShard::default()
    }

    fn split(&mut self) -> ((), &mut [Replica<u32, u32>]) {
        ((), &mut self.sites)
    }

    fn contact_sharded(
        _ctx: &(),
        shard: &mut DirectMailShard,
        cycle: u32,
        pair: ContactPair<'_, Replica<u32, u32>>,
        _rng: &mut StdRng,
    ) -> ContactStats {
        shard.mailed += 1;
        let entry = pair
            .a
            .db()
            .entry(&Self::KEY)
            .cloned()
            .expect("the origin holds the update it mails");
        let useful = pair.b.receive_rumor(Self::KEY, entry).was_useful();
        if useful {
            shard.marks.push((pair.j, cycle));
        }
        ContactStats {
            sent: 1,
            useful: u64::from(useful),
        }
    }

    fn absorb(&mut self, shard: &mut DirectMailShard) {
        self.remaining = self.remaining.saturating_sub(shard.mailed);
        shard.mailed = 0;
        for (site, cycle) in shard.marks.drain(..) {
            self.received.mark(site, cycle);
        }
    }
}

impl SirView for DirectMailProtocol {
    fn sir_counts(&self) -> SirCounts {
        // Only the origin ever spreads, and only while its mailing budget
        // lasts; every other recipient holds the update passively.
        let have = self.received.received_count();
        let infective = usize::from(self.remaining > 0);
        SirCounts {
            susceptible: self.sites.len() - have,
            infective,
            removed: have - infective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CycleEngine;
    use epidemic_net::{topologies, Spatial};
    use rand::SeedableRng;

    /// Regression (hot-path sweep): the injector mints keys right up to
    /// the top of the `u32` range without wrapping.
    #[test]
    fn update_injector_issues_keys_to_the_top_of_the_range() {
        let mut injector = UpdateInjector::new(1.0);
        injector.next_key = u32::MAX - 2;
        let mut rng = StdRng::seed_from_u64(0);
        let mut keys = Vec::new();
        for _ in 0..2 {
            injector.inject(4, &mut rng, |_, key| keys.push(key));
        }
        assert_eq!(keys, vec![u32::MAX - 2, u32::MAX - 1]);
    }

    /// Regression (hot-path sweep): exhausting the key space fails loudly
    /// with context instead of silently recycling update identities.
    #[test]
    #[should_panic(expected = "key space")]
    fn update_injector_panics_with_context_on_key_exhaustion() {
        let mut injector = UpdateInjector::new(1.0);
        injector.next_key = u32::MAX;
        let mut rng = StdRng::seed_from_u64(0);
        injector.inject(4, &mut rng, |_, _| {});
    }

    #[test]
    fn receive_log_marks_once_and_reports() {
        let mut log: ReceiveLog<u32> = ReceiveLog::new(4);
        assert!(log.mark(1, 3));
        assert!(!log.mark(1, 9), "second receipt is ignored");
        assert!(log.mark(0, 5));
        assert!(!log.complete());
        assert_eq!(log.received_count(), 2);
        assert_eq!(log.t_last(), Some(5));
        assert!((log.t_ave_received() - 4.0).abs() < 1e-12);
        assert!((log.t_ave_all(7) - (3.0 + 5.0 + 7.0 + 7.0) / 4.0).abs() < 1e-12);
        assert_eq!(log.unreceived().collect::<Vec<_>>(), vec![2, 3]);
        assert!((log.residue() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn route_recorder_charges_compare_once_and_update_per_unit() {
        let topo = topologies::line(4);
        let routes = Routes::compute(&topo);
        let mut rec = RouteRecorder::new(&routes, topo.link_count());
        let s = topo.sites();
        rec.record(s[0], s[3], 2); // 3 links on the route
        assert_eq!(rec.compare.total(), 3);
        assert_eq!(rec.update.total(), 6);
        rec.record(s[0], s[1], 0);
        assert_eq!(rec.compare.total(), 4);
        assert_eq!(rec.update.total(), 6);
        // Spatial is imported to prove the recorder composes with any
        // sampler-driven run (the spatial drivers construct both).
        let _ = Spatial::Uniform;
    }

    #[test]
    fn injector_carries_fractional_rates() {
        let mut inj = UpdateInjector::new(0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut keys = Vec::new();
        for _ in 0..6 {
            inj.inject(10, &mut rng, |site, key| {
                assert!(site < 10);
                keys.push(key);
            });
        }
        assert_eq!(keys, vec![0, 1, 2], "rate 0.5 over 6 cycles fires thrice");
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn random_pair_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let (i, j) = random_pair(6, &mut rng);
            assert!(i < 6 && j < 6);
            assert_ne!(i, j);
        }
    }

    #[test]
    fn direct_mail_spends_its_budget_and_usually_misses_someone() {
        let mut misses = 0;
        for seed in 0..8 {
            let mut protocol = DirectMailProtocol::new(30, 0);
            let mut rng = StdRng::seed_from_u64(seed);
            let report =
                CycleEngine::new().run(&mut protocol, &UniformPartners::new(30), &mut rng, &mut ());
            assert_eq!(report.totals.sent, 29, "budget is exactly n - 1 mails");
            if protocol.deliveries().residue() > 0.0 {
                misses += 1;
            }
        }
        // Duplicate random addressing leaves holes with overwhelming
        // probability; requiring most seeds to miss keeps the test robust.
        assert!(
            misses >= 6,
            "direct mail covered everyone in {misses}/8 runs"
        );
    }
}
