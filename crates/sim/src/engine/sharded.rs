//! Deterministic shard-parallel cycle execution.
//!
//! [`ShardedCycleEngine`] runs the same round-synchronous loop as
//! [`CycleEngine`](super::CycleEngine), but partitions the sites into a
//! fixed number of **shards** and executes each cycle's contacts
//! shard-parallel. The output is a pure function of `(protocol, policy,
//! seed, shard count)` — never of the worker-thread count or of thread
//! scheduling — which the equivalence suite pins byte-for-byte at
//! `EPIDEMIC_THREADS` ∈ {1, 2, 8}.
//!
//! # How determinism survives parallelism
//!
//! * **Per-shard RNG streams.** A master RNG seeded from the trial seed
//!   derives one control stream (for `begin_cycle`/`end_cycle`) plus one
//!   independent stream per shard. Every partner draw for an initiator in
//!   shard `s` comes from stream `s`, and every in-contact draw for a
//!   contact *initiated* by shard `s` comes from stream `s` — so the draw
//!   sequences are fixed by the shard layout alone.
//! * **Two-phase cycles.** Phase one walks the shards in order and
//!   performs all partner draws sequentially on the shard streams,
//!   bucketing each accepted contact by `(initiator shard, partner
//!   shard)`. Phase two executes the buckets round by round using the
//!   circle method (round-robin tournament scheduling): round 0 runs every
//!   shard's internal contacts, and each subsequent round runs a perfect
//!   matching of shard *pairs* — disjoint pairs, so every pair-task owns
//!   both of its shard slices and all tasks in a round run in parallel,
//!   cross-shard contacts included.
//! * **Deterministic merge order.** The rounds, the pairs within a round,
//!   and the contacts within a bucket are all pure functions of `(cycle,
//!   shard ids)`. Contact events are recorded per pair-task and replayed
//!   to the [`Observer`] in exactly that order, so traces serialize
//!   identically at any worker count. Per-shard accumulators are absorbed
//!   into the protocol in ascending shard order each cycle.
//!
//! # The sharded path is a new RNG universe
//!
//! Re-deriving RNG streams necessarily changes which random numbers feed
//! which decision, so a sharded run does **not** reproduce the sequential
//! engine's output byte-for-byte — not even at one shard. The golden
//! tables pin the sequential path; the sharded path is pinned by
//! sharded-vs-sharded byte identity across worker counts plus
//! sharded-vs-sequential *statistical* agreement (see
//! `tests/sharded_equivalence.rs` and DESIGN.md §Deterministic parallel
//! cycle).
//!
//! Connection limits and hunting are deliberately unsupported here: both
//! serialize on a global `accepted[j]` counter whose draw-order coupling
//! is exactly what sharding removes. Drivers assert this at their
//! `run_sharded` entry points and fall back to the sequential engine.

use std::time::Instant;

use epidemic_trace::{profile, MetricsSink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use super::{ContactStats, EngineReport, EngineTotals, EpidemicProtocol, Observer, Roster};
use crate::engine::PartnerPolicy;
use crate::util::pair_mut;

/// Environment variable overriding the shard count (default
/// [`DEFAULT_SHARDS`]). Distinct from `EPIDEMIC_THREADS`, which controls
/// *worker* counts: shards fix the output, workers only the wall-clock.
pub const SHARDS_ENV_VAR: &str = "EPIDEMIC_SHARDS";

/// Shard count used when neither the builder nor the environment says
/// otherwise.
pub const DEFAULT_SHARDS: usize = 8;

/// The shard count to use by default: `EPIDEMIC_SHARDS` if present and a
/// positive integer, else [`DEFAULT_SHARDS`].
pub fn default_shards() -> usize {
    std::env::var(SHARDS_ENV_VAR)
        .ok()
        .and_then(|v| parse_shard_override(&v))
        .unwrap_or(DEFAULT_SHARDS)
}

fn parse_shard_override(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// One contact's endpoints as seen by [`ShardableProtocol::contact_sharded`]:
/// global site indices plus exclusive references to both sites.
pub struct ContactPair<'s, S> {
    /// Global index of the initiating site.
    pub i: usize,
    /// The initiating site.
    pub a: &'s mut S,
    /// Global index of the partner site.
    pub j: usize,
    /// The partner site.
    pub b: &'s mut S,
}

/// A protocol that can run its contacts shard-parallel.
///
/// The contract mirrors [`EpidemicProtocol::contact`] but splits the
/// protocol state three ways for the parallel phase:
///
/// * a [`Sync`] **context** (`Ctx`) shared read-only by every pair-task
///   (configuration, routing tables, start-of-cycle snapshots);
/// * the per-site state (`Site`), sliced by shard so each pair-task owns
///   its two slices exclusively;
/// * a per-shard **accumulator** (`Shard`) collecting everything a contact
///   would have written to shared protocol state (receive-log marks,
///   traffic counters, scratch buffers). Accumulators are drained back
///   into the protocol by [`absorb`](Self::absorb) in ascending shard
///   order at the end of every cycle.
///
/// `begin_cycle`/`end_cycle`/`finished`/rosters still run sequentially on
/// the full protocol, exactly as in the sequential engine.
pub trait ShardableProtocol: EpidemicProtocol {
    /// Per-site state moved into the parallel phase.
    type Site: Send;
    /// Read-only context shared by all pair-tasks during a cycle.
    type Ctx<'p>: Sync
    where
        Self: 'p;
    /// Per-shard accumulator (scratch buffers + deferred writes).
    type Shard: Send;

    /// Creates one (empty) per-shard accumulator.
    fn make_shard(&self) -> Self::Shard;

    /// Splits the protocol into the shared read-only context and the
    /// per-site state for one cycle's parallel phase. The slice must have
    /// exactly [`site_count`](EpidemicProtocol::site_count) elements, in
    /// site order.
    fn split(&mut self) -> (Self::Ctx<'_>, &mut [Self::Site]);

    /// Performs one contact, writing only to the two sites, the initiating
    /// shard's accumulator and the initiating shard's RNG stream. Must
    /// match [`EpidemicProtocol::contact`] semantics.
    fn contact_sharded(
        ctx: &Self::Ctx<'_>,
        shard: &mut Self::Shard,
        cycle: u32,
        pair: ContactPair<'_, Self::Site>,
        rng: &mut StdRng,
    ) -> ContactStats;

    /// Drains one shard accumulator back into the protocol. Called once
    /// per shard per cycle, in ascending shard order, after every contact
    /// of the cycle has run.
    fn absorb(&mut self, shard: &mut Self::Shard);
}

/// Contiguous partition of `n` sites into `shards` balanced ranges: the
/// first `n % shards` shards hold `n / shards + 1` sites each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardLayout {
    n: usize,
    shards: usize,
    quot: usize,
    rem: usize,
}

impl ShardLayout {
    /// Partitions `n` sites into `shards` ranges (shards beyond `n` are
    /// empty).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(n: usize, shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        ShardLayout {
            n,
            shards,
            quot: n / shards,
            rem: n % shards,
        }
    }

    /// Number of shards (including empty ones).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// First site index of shard `s` (== `n` for the tail of empty
    /// shards).
    pub fn start(&self, s: usize) -> usize {
        s * self.quot + s.min(self.rem)
    }

    /// The site-index range owned by shard `s`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.start(s)..self.start(s + 1)
    }

    /// The shard owning site `i`.
    pub fn shard_of(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        let wide = self.rem * (self.quot + 1);
        if i < wide {
            i / (self.quot + 1)
        } else {
            self.rem + (i - wide) / self.quot
        }
    }
}

/// The per-cycle execution schedule: round 0 pairs every shard with
/// itself (internal contacts); each later round is a perfect matching of
/// distinct shard pairs from the circle method, so over all rounds every
/// unordered pair meets exactly once and no shard appears twice in a
/// round. Pure function of the shard count.
fn pair_rounds(shards: usize) -> Vec<Vec<(usize, usize)>> {
    let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
    rounds.push((0..shards).map(|s| (s, s)).collect());
    if shards > 1 {
        // Circle method on `t` seats (a dummy seat pads odd counts; its
        // opponent sits the round out).
        let t = if shards.is_multiple_of(2) {
            shards
        } else {
            shards + 1
        };
        for r in 0..t - 1 {
            let mut round: Vec<(usize, usize)> = Vec::new();
            for k in 0..t / 2 {
                let (x, y) = if k == 0 {
                    (t - 1, r)
                } else {
                    ((r + k) % (t - 1), (r + t - 1 - k) % (t - 1))
                };
                if x >= shards || y >= shards {
                    continue; // paired with the dummy seat
                }
                round.push((x.min(y), x.max(y)));
            }
            round.sort_unstable();
            if !round.is_empty() {
                rounds.push(round);
            }
        }
    }
    rounds
}

/// One bucketed contact: `(initiator, partner)` global site indices.
type Draw = (usize, usize);
/// One executed contact in replay order: `(initiator, partner, stats)`.
type ContactEvent = (usize, usize, ContactStats);

/// Everything one pair-task owns exclusively while a round executes: the
/// two shard slices, the initiating streams and accumulators, and the
/// task's event log. For the self round (`a == b`) the `_b` halves are
/// `None`.
struct PairTask<'x, Site, Shard> {
    a: usize,
    b: usize,
    base_a: usize,
    base_b: usize,
    sites_a: &'x mut [Site],
    sites_b: Option<&'x mut [Site]>,
    rng_a: &'x mut StdRng,
    rng_b: Option<&'x mut StdRng>,
    shard_a: &'x mut Shard,
    shard_b: Option<&'x mut Shard>,
    events: &'x mut Vec<ContactEvent>,
}

/// Splits `sites` into per-shard slices (wrapped in `Option` so each
/// pair-task can take exclusive ownership of its two).
fn shard_slices<'x, T>(mut sites: &'x mut [T], layout: &ShardLayout) -> Vec<Option<&'x mut [T]>> {
    let mut out = Vec::with_capacity(layout.shards());
    for s in 0..layout.shards() {
        let (head, tail) = sites.split_at_mut(layout.range(s).len());
        out.push(Some(head));
        sites = tail;
    }
    out
}

/// Executes one pair-task: the contacts initiated by shard `a` toward
/// shard `b`, then (for cross pairs) the contacts initiated by shard `b`
/// toward shard `a` — each bucket in draw order, on the initiator's RNG
/// stream and accumulator.
fn run_pair<'p, P>(
    ctx: &P::Ctx<'p>,
    buckets: &[Vec<Vec<Draw>>],
    cycle: u32,
    task: &mut PairTask<'_, P::Site, P::Shard>,
) where
    P: ShardableProtocol + 'p,
{
    match task.sites_b.as_deref_mut() {
        None => {
            // Self round: both endpoints live in `sites_a`.
            for &(i, j) in &buckets[task.a][task.b] {
                let (a, b) = pair_mut(task.sites_a, i - task.base_a, j - task.base_a);
                let stats = P::contact_sharded(
                    ctx,
                    task.shard_a,
                    cycle,
                    ContactPair { i, a, j, b },
                    task.rng_a,
                );
                task.events.push((i, j, stats));
            }
        }
        Some(sites_b) => {
            for &(i, j) in &buckets[task.a][task.b] {
                let pair = ContactPair {
                    i,
                    a: &mut task.sites_a[i - task.base_a],
                    j,
                    b: &mut sites_b[j - task.base_b],
                };
                let stats = P::contact_sharded(ctx, task.shard_a, cycle, pair, task.rng_a);
                task.events.push((i, j, stats));
            }
            let rng_b = task
                .rng_b
                .as_mut()
                .expect("cross pair carries both streams");
            let shard_b = task
                .shard_b
                .as_mut()
                .expect("cross pair carries both shards");
            for &(i, j) in &buckets[task.b][task.a] {
                let pair = ContactPair {
                    i,
                    a: &mut sites_b[i - task.base_b],
                    j,
                    b: &mut task.sites_a[j - task.base_a],
                };
                let stats = P::contact_sharded(ctx, shard_b, cycle, pair, rng_b);
                task.events.push((i, j, stats));
            }
        }
    }
}

/// The shard-parallel round loop. See the [module docs](self) for the
/// determinism contract; [`CycleEngine`](super::CycleEngine) remains the
/// sequential reference (and the golden-pinned RNG universe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedCycleEngine {
    shards: usize,
    workers: usize,
    max_cycles: u32,
}

impl ShardedCycleEngine {
    /// An engine with `shards` shards, one worker (the sequential
    /// reference mode) and a generous cycle bound.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        ShardedCycleEngine {
            shards,
            workers: 1,
            max_cycles: 100_000,
        }
    }

    /// Worker threads executing each round's pair-tasks. Affects only
    /// wall-clock, never output; `1` runs every task inline with no
    /// thread spawns.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "worker count must be at least 1");
        self.workers = workers;
        self
    }

    /// Safety bound on simulated cycles.
    #[must_use]
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// Drives `protocol` to completion. The run is a pure function of
    /// `(protocol, policy, seed, shards)`; the worker count only changes
    /// wall-clock. Pass `&mut ()` to observe nothing.
    pub fn run<P, L, O>(
        &self,
        protocol: &mut P,
        policy: &L,
        seed: u64,
        observer: &mut O,
    ) -> EngineReport
    where
        P: ShardableProtocol,
        L: PartnerPolicy + Sync + ?Sized,
        O: Observer<P>,
    {
        self.run_instrumented(protocol, policy, seed, observer, &mut ())
    }

    /// As [`ShardedCycleEngine::run`], additionally reporting run metrics
    /// and phase timings to `sink` under the same counter/phase names as
    /// the sequential engine (`engine.setup` / `engine.contact_loop` /
    /// `engine.end_of_cycle`), so BENCH phase breakdowns compare directly.
    pub fn run_instrumented<P, L, O, S>(
        &self,
        protocol: &mut P,
        policy: &L,
        seed: u64,
        observer: &mut O,
        sink: &mut S,
    ) -> EngineReport
    where
        P: ShardableProtocol,
        L: PartnerPolicy + Sync + ?Sized,
        O: Observer<P>,
        S: MetricsSink,
    {
        // Same audited gate as the sequential engine: `Instant::now` is
        // only read when a recording sink or the global profiler asks.
        let timed = S::ENABLED || profile::is_enabled();
        let setup_start = timed.then(Instant::now);
        let n = protocol.site_count();
        let layout = ShardLayout::new(n, self.shards);
        let shards = layout.shards();

        // RNG derivation: one control stream (begin/end_cycle) plus one
        // stream per shard, all from a master seeded with the trial seed.
        // The draw sequences depend on (seed, shards) only.
        let mut master = StdRng::seed_from_u64(seed);
        let mut control = StdRng::seed_from_u64(master.next_u64());
        let mut shard_rngs: Vec<StdRng> = (0..shards)
            .map(|_| StdRng::seed_from_u64(master.next_u64()))
            .collect();

        // Reused cycle scratch (nothing below allocates after warm-up).
        let mut orders: Vec<Vec<usize>> = (0..shards).map(|s| layout.range(s).collect()).collect();
        let mut actives: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut global_active: Vec<usize> = Vec::with_capacity(n);
        let mut buckets: Vec<Vec<Vec<Draw>>> = vec![vec![Vec::new(); shards]; shards];
        let rounds = pair_rounds(shards);
        let mut round_events: Vec<Vec<Vec<ContactEvent>>> =
            rounds.iter().map(|r| vec![Vec::new(); r.len()]).collect();
        let mut shard_states: Vec<P::Shard> = (0..shards).map(|_| protocol.make_shard()).collect();

        let mut totals = EngineTotals::default();
        let mut cycle = 0u32;
        observer.on_run_start(protocol);
        let setup_nanos = setup_start.map_or(0, profile::span_nanos);
        let mut contact_nanos = 0u64;
        let mut end_nanos = 0u64;

        while cycle < self.max_cycles {
            let cycle_start = timed.then(Instant::now);
            let contacts_before = totals.contacts;
            global_active.clear();
            global_active.extend((0..n).filter(|&i| protocol.is_active(i)));
            if protocol.finished(cycle, &global_active) {
                break;
            }
            cycle += 1;
            protocol.begin_cycle(cycle, &mut control);

            // Phase 1 (sequential): per-shard rosters and partner draws,
            // walked in ascending shard order on the shard streams.
            let roster_kind = protocol.roster();
            for row in buckets.iter_mut() {
                for bucket in row.iter_mut() {
                    bucket.clear();
                }
            }
            for s in 0..shards {
                let rng = &mut shard_rngs[s];
                let roster: &mut Vec<usize> = match roster_kind {
                    Roster::Active => {
                        let list = &mut actives[s];
                        list.clear();
                        list.extend(layout.range(s).filter(|&i| protocol.is_active(i)));
                        list
                    }
                    Roster::Everyone => &mut orders[s],
                };
                roster.shuffle(rng);
                for &i in roster.iter() {
                    if !protocol.initiates(i) {
                        continue;
                    }
                    let j = policy.attempt(i, rng);
                    if !protocol.admits(j) {
                        continue;
                    }
                    buckets[s][layout.shard_of(j)].push((i, j));
                }
            }

            // Phase 2 (parallel): execute the buckets round by round.
            // Every pair-task owns its shard slices, streams and
            // accumulators exclusively; rounds are barriers. The scope
            // bounds the `split()` borrow so the protocol is whole again
            // for the absorb/end-of-cycle phase below.
            {
                let (ctx, sites) = protocol.split();
                debug_assert_eq!(sites.len(), n, "split() must expose every site");
                for (r, pairs) in rounds.iter().enumerate() {
                    let events = &mut round_events[r];
                    if self.workers <= 1 || pairs.len() <= 1 {
                        // Sequential reference mode: identical draw order,
                        // no spawns. Each pair-task's exclusive borrows are
                        // carved on the fly instead of staging per-round
                        // option vectors, so a steady-state cycle allocates
                        // nothing on this path (pinned by `zero_alloc.rs`).
                        for (&(a, b), events) in pairs.iter().zip(events.iter_mut()) {
                            events.clear();
                            if a == b {
                                let mut task = PairTask {
                                    a,
                                    b,
                                    base_a: layout.start(a),
                                    base_b: layout.start(b),
                                    sites_a: &mut sites[layout.range(a)],
                                    sites_b: None,
                                    rng_a: &mut shard_rngs[a],
                                    rng_b: None,
                                    shard_a: &mut shard_states[a],
                                    shard_b: None,
                                    events,
                                };
                                run_pair::<P>(&ctx, &buckets, cycle, &mut task);
                            } else {
                                // Cross pairs are ordered (a < b), so the
                                // two shard ranges split cleanly.
                                let (head, tail) = sites.split_at_mut(layout.start(b));
                                let (rng_a, rng_b) = pair_mut(&mut shard_rngs, a, b);
                                let (shard_a, shard_b) = pair_mut(&mut shard_states, a, b);
                                let mut task = PairTask {
                                    a,
                                    b,
                                    base_a: layout.start(a),
                                    base_b: layout.start(b),
                                    sites_a: &mut head[layout.range(a)],
                                    sites_b: Some(&mut tail[..layout.range(b).len()]),
                                    rng_a,
                                    rng_b: Some(rng_b),
                                    shard_a,
                                    shard_b: Some(shard_b),
                                    events,
                                };
                                run_pair::<P>(&ctx, &buckets, cycle, &mut task);
                            }
                        }
                    } else {
                        let mut slices = shard_slices(&mut *sites, &layout);
                        let mut rngs: Vec<Option<&mut StdRng>> =
                            shard_rngs.iter_mut().map(Some).collect();
                        let mut states: Vec<Option<&mut P::Shard>> =
                            shard_states.iter_mut().map(Some).collect();
                        let mut tasks: Vec<PairTask<'_, P::Site, P::Shard>> = pairs
                            .iter()
                            .zip(events.iter_mut())
                            .map(|(&(a, b), events)| {
                                events.clear();
                                let cross = a != b;
                                PairTask {
                                    a,
                                    b,
                                    base_a: layout.start(a),
                                    base_b: layout.start(b),
                                    sites_a: slices[a].take().expect("shard used once per round"),
                                    sites_b: cross.then(|| {
                                        slices[b].take().expect("shard used once per round")
                                    }),
                                    rng_a: rngs[a].take().expect("stream used once per round"),
                                    rng_b: cross.then(|| {
                                        rngs[b].take().expect("stream used once per round")
                                    }),
                                    shard_a: states[a]
                                        .take()
                                        .expect("accumulator used once per round"),
                                    shard_b: cross.then(|| {
                                        states[b].take().expect("accumulator used once per round")
                                    }),
                                    events,
                                }
                            })
                            .collect();
                        let ctx = &ctx;
                        let buckets = &buckets;
                        let per_worker = tasks.len().div_ceil(self.workers);
                        std::thread::scope(|scope| {
                            for group in tasks.chunks_mut(per_worker) {
                                scope.spawn(move || {
                                    for task in group.iter_mut() {
                                        run_pair::<P>(ctx, buckets, cycle, task);
                                    }
                                });
                            }
                        });
                    }
                }
            }

            // Phase 3 (sequential): replay events in schedule order —
            // round, then pair within round, then draw within bucket — a
            // pure function of (cycle, shard ids); then absorb the shard
            // accumulators in ascending shard order.
            for (events, pairs) in round_events.iter().zip(rounds.iter()) {
                for task_events in events.iter().take(pairs.len()) {
                    for &(i, j, stats) in task_events.iter() {
                        totals.contacts += 1;
                        totals.sent += stats.sent;
                        totals.useful += stats.useful;
                        if stats.useful == 0 {
                            totals.fruitless += 1;
                        }
                        observer.on_contact(cycle, i, j, &stats);
                    }
                }
            }
            for state in shard_states.iter_mut() {
                protocol.absorb(state);
            }

            let contacts_end = timed.then(Instant::now);
            if let (Some(start), Some(end)) = (cycle_start, contacts_end) {
                contact_nanos += u64::try_from((end - start).as_nanos()).unwrap_or(u64::MAX);
            }
            protocol.end_cycle(cycle, &mut control);
            observer.on_cycle_end(cycle, protocol);
            if let Some(end) = contacts_end {
                end_nanos += profile::span_nanos(end);
            }
            if S::ENABLED {
                sink.observe(
                    "engine.cycle_contacts",
                    (totals.contacts - contacts_before) as f64,
                );
            }
        }

        if S::ENABLED {
            sink.counter("engine.cycles", u64::from(cycle));
            sink.counter("engine.contacts", totals.contacts);
            sink.counter("engine.sent", totals.sent);
            sink.counter("engine.useful", totals.useful);
            sink.counter("engine.fruitless", totals.fruitless);
            sink.phase("engine.setup", setup_nanos);
            sink.phase("engine.contact_loop", contact_nanos);
            sink.phase("engine.end_of_cycle", end_nanos);
        }
        if profile::is_enabled() {
            profile::record("engine.setup", setup_nanos);
            profile::record("engine.contact_loop", contact_nanos);
            profile::record("engine.end_of_cycle", end_nanos);
        }

        EngineReport {
            cycles: cycle,
            totals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::UniformPartners;

    #[test]
    fn layout_partitions_all_sites_contiguously() {
        for (n, shards) in [(10, 4), (8, 8), (7, 3), (5, 8), (1000, 8), (3, 1)] {
            let layout = ShardLayout::new(n, shards);
            let mut seen = Vec::new();
            for s in 0..shards {
                for i in layout.range(s) {
                    assert_eq!(layout.shard_of(i), s, "n={n} shards={shards} i={i}");
                    seen.push(i);
                }
            }
            assert_eq!(seen, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = (0..shards).map(|s| layout.range(s).len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced layout {sizes:?}");
        }
    }

    #[test]
    fn pair_rounds_cover_every_pair_exactly_once_without_conflicts() {
        for shards in 1..=9 {
            let rounds = pair_rounds(shards);
            assert_eq!(rounds[0], (0..shards).map(|s| (s, s)).collect::<Vec<_>>());
            let mut seen = std::collections::BTreeSet::new();
            for round in &rounds[1..] {
                let mut used = std::collections::BTreeSet::new();
                for &(a, b) in round {
                    assert!(a < b, "cross pairs are ordered");
                    assert!(used.insert(a) && used.insert(b), "shard conflict in round");
                    assert!(seen.insert((a, b)), "pair ({a},{b}) scheduled twice");
                }
            }
            let expected = shards * (shards - 1) / 2;
            assert_eq!(seen.len(), expected, "shards={shards}");
        }
    }

    #[test]
    fn shard_override_parsing() {
        assert_eq!(parse_shard_override("4"), Some(4));
        assert_eq!(parse_shard_override(" 16 "), Some(16));
        assert_eq!(parse_shard_override("0"), None);
        assert_eq!(parse_shard_override("many"), None);
        assert_eq!(parse_shard_override(""), None);
    }

    /// One-bit push epidemic, shardable: snapshot in the ctx, infection
    /// delta in the accumulator.
    struct ShardBitPush {
        infected: Vec<bool>,
        snapshot: Vec<bool>,
        count: usize,
    }

    impl EpidemicProtocol for ShardBitPush {
        fn site_count(&self) -> usize {
            self.infected.len()
        }
        fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
            self.count == self.infected.len()
        }
        fn begin_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
            self.snapshot.clone_from(&self.infected);
        }
        fn contact(&mut self, _cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
            let useful = u64::from(self.snapshot[i] && !self.infected[j]);
            if useful > 0 {
                self.infected[j] = true;
                self.count += 1;
            }
            ContactStats { sent: 1, useful }
        }
    }

    struct BitCtx<'p> {
        snapshot: &'p [bool],
    }

    impl ShardableProtocol for ShardBitPush {
        type Site = bool;
        type Ctx<'p>
            = BitCtx<'p>
        where
            Self: 'p;
        type Shard = usize;

        fn make_shard(&self) -> usize {
            0
        }
        fn split(&mut self) -> (BitCtx<'_>, &mut [bool]) {
            (
                BitCtx {
                    snapshot: &self.snapshot,
                },
                &mut self.infected,
            )
        }
        fn contact_sharded(
            ctx: &BitCtx<'_>,
            shard: &mut usize,
            _cycle: u32,
            pair: ContactPair<'_, bool>,
            _rng: &mut StdRng,
        ) -> ContactStats {
            let useful = u64::from(ctx.snapshot[pair.i] && !*pair.b);
            if useful > 0 {
                *pair.b = true;
                *shard += 1;
            }
            ContactStats { sent: 1, useful }
        }
        fn absorb(&mut self, shard: &mut usize) {
            self.count += *shard;
            *shard = 0;
        }
    }

    /// Records every observer event, for byte-identity comparisons.
    #[derive(Default, Debug, PartialEq, Eq)]
    struct EventLog {
        events: Vec<(u32, usize, usize, ContactStats)>,
        cycles: Vec<u32>,
    }

    impl<P: ?Sized> Observer<P> for EventLog {
        fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
            self.events.push((cycle, i, j, *stats));
        }
        fn on_cycle_end(&mut self, cycle: u32, _protocol: &P) {
            self.cycles.push(cycle);
        }
    }

    fn run_bit_push(
        n: usize,
        shards: usize,
        workers: usize,
        seed: u64,
    ) -> (EngineReport, Vec<bool>, EventLog) {
        let mut protocol = ShardBitPush {
            infected: {
                let mut v = vec![false; n];
                v[0] = true;
                v
            },
            snapshot: vec![false; n],
            count: 1,
        };
        let mut log = EventLog::default();
        let report = ShardedCycleEngine::new(shards).workers(workers).run(
            &mut protocol,
            &UniformPartners::new(n),
            seed,
            &mut log,
        );
        (report, protocol.infected, log)
    }

    #[test]
    fn sharded_run_completes_and_counts_match() {
        let (report, infected, log) = run_bit_push(64, 4, 1, 3);
        assert!(infected.iter().all(|&b| b));
        assert_eq!(report.totals.contacts, log.events.len() as u64);
        assert_eq!(report.totals.useful, 63, "each site infected exactly once");
    }

    #[test]
    fn output_is_invariant_under_worker_count() {
        for shards in [1, 3, 4, 8] {
            let reference = run_bit_push(96, shards, 1, 7);
            for workers in [2, 3, 8] {
                let parallel = run_bit_push(96, shards, workers, 7);
                assert_eq!(reference, parallel, "shards={shards} workers={workers}");
            }
        }
    }

    #[test]
    fn shard_count_changes_the_rng_universe_but_stays_deterministic() {
        let a = run_bit_push(96, 4, 1, 7);
        let b = run_bit_push(96, 4, 1, 7);
        assert_eq!(a, b, "same (seed, shards) is bit-identical");
        let c = run_bit_push(96, 8, 1, 7);
        assert_ne!(
            a.2.events, c.2.events,
            "different shard counts draw different streams"
        );
        assert!(c.1.iter().all(|&x| x), "still converges at 8 shards");
    }

    #[test]
    fn more_workers_than_tasks_is_safe() {
        let (report, infected, _) = run_bit_push(16, 2, 64, 1);
        assert!(infected.iter().all(|&b| b));
        assert!(report.cycles > 0);
    }

    #[test]
    fn max_cycles_bounds_the_sharded_run() {
        struct Never {
            sites: Vec<()>,
        }
        impl EpidemicProtocol for Never {
            fn site_count(&self) -> usize {
                self.sites.len()
            }
            fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
                false
            }
            fn contact(
                &mut self,
                _cycle: u32,
                _i: usize,
                _j: usize,
                _rng: &mut StdRng,
            ) -> ContactStats {
                ContactStats::default()
            }
        }
        impl ShardableProtocol for Never {
            type Site = ();
            type Ctx<'p>
                = ()
            where
                Self: 'p;
            type Shard = ();
            fn make_shard(&self) {}
            fn split(&mut self) -> ((), &mut [()]) {
                ((), &mut self.sites)
            }
            fn contact_sharded(
                _ctx: &(),
                _shard: &mut (),
                _cycle: u32,
                _pair: ContactPair<'_, ()>,
                _rng: &mut StdRng,
            ) -> ContactStats {
                ContactStats::default()
            }
            fn absorb(&mut self, _shard: &mut ()) {}
        }
        let report = ShardedCycleEngine::new(2).max_cycles(17).run(
            &mut Never { sites: vec![(); 6] },
            &UniformPartners::new(6),
            0,
            &mut (),
        );
        assert_eq!(report.cycles, 17);
    }
}
