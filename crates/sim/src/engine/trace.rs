//! Trace and invariant observers: the bridge between the engine's
//! [`Observer`] seam and the `epidemic-trace` crate.
//!
//! [`TraceObserver`] records a run as deterministic JSONL (see
//! [`epidemic_trace::record`]); [`InvariantObserver`] checks the protocol
//! invariants from [`epidemic_trace::invariant`] as the run streams by.
//! Both work against any protocol implementing [`TraceView`] — every
//! engine protocol in this crate does — and compose with each other and
//! with [`SirObserver`](super::SirObserver) through the tuple observer
//! combinators, e.g.:
//!
//! ```
//! use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
//! use epidemic_sim::engine::trace::{InvariantObserver, TraceObserver};
//! use epidemic_sim::mixing::RumorEpidemic;
//! use epidemic_trace::TraceConfig;
//!
//! let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k: 2 });
//! let mut trace = TraceObserver::new(TraceConfig::cycles_only());
//! let mut check = InvariantObserver::new();
//! let result = RumorEpidemic::new(cfg).run_observed(100, 7, &mut (&mut trace, &mut check));
//! assert!(check.is_clean());
//! let jsonl = trace.finish();
//! assert!(jsonl.lines().count() as u32 >= result.cycles);
//! ```

use epidemic_trace::{
    AggregatingSink, InvariantChecker, RunAggregate, RunTracer, Sir, TraceConfig, TraceTotals,
    Violation,
};

use super::observer::{Observer, SirCounts, SirView};
use super::protocols::{BitAntiEntropyProtocol, DirectMailProtocol, MixingProtocol};
use super::{ContactStats, EngineTotals};
use crate::spatial_ae::SpatialAntiEntropyProtocol;
use crate::spatial_rumor::SpatialRumorProtocol;

/// A protocol whose state can be traced: SIR counts plus a stable
/// per-site database digest.
///
/// The digests feed the *coverage ⇒ convergence* invariant — once no site
/// is susceptible, all replicas must agree — so two sites holding the same
/// data must digest equal, and (up to hash collisions) divergent sites
/// must digest differently. They are only computed when that invariant can
/// fire (susceptible count zero), never in the hot path.
pub trait TraceView: SirView {
    /// Appends one digest per site to `out` (site order).
    fn site_digests(&self, out: &mut Vec<u64>);
}

fn sir_of<P: SirView + ?Sized>(protocol: &P) -> Sir {
    let SirCounts {
        susceptible,
        infective,
        removed,
    } = protocol.sir_counts();
    Sir {
        susceptible,
        infective,
        removed,
    }
}

fn db_digest(replica: &epidemic_core::Replica<u32, u32>) -> u64 {
    epidemic_db::checksum::fnv1a_hash(&replica.db().checksum())
}

impl TraceView for MixingProtocol {
    fn site_digests(&self, out: &mut Vec<u64>) {
        out.extend(self.sites.iter().map(db_digest));
    }
}

impl TraceView for BitAntiEntropyProtocol {
    fn site_digests(&self, out: &mut Vec<u64>) {
        out.extend(self.infected.iter().map(|&b| u64::from(b)));
    }
}

impl TraceView for DirectMailProtocol {
    fn site_digests(&self, out: &mut Vec<u64>) {
        out.extend(self.sites.iter().map(db_digest));
    }
}

impl TraceView for SpatialAntiEntropyProtocol<'_> {
    fn site_digests(&self, out: &mut Vec<u64>) {
        out.extend(self.replicas.iter().map(db_digest));
    }
}

impl TraceView for SpatialRumorProtocol<'_> {
    fn site_digests(&self, out: &mut Vec<u64>) {
        out.extend(self.replicas.iter().map(db_digest));
    }
}

/// Records a run as deterministic JSONL through the engine's observer
/// seam. Works with any [`SirView`] protocol; wraps
/// [`epidemic_trace::RunTracer`].
#[derive(Debug, Clone)]
pub struct TraceObserver {
    tracer: RunTracer,
}

impl TraceObserver {
    /// An observer emitting the streams selected by `config`.
    pub fn new(config: TraceConfig) -> Self {
        TraceObserver {
            tracer: RunTracer::new(config),
        }
    }

    /// As [`TraceObserver::new`], with a pre-labelled tracer (labels are
    /// stamped onto every line; see [`RunTracer::label_u64`]).
    pub fn with_tracer(tracer: RunTracer) -> Self {
        TraceObserver { tracer }
    }

    /// Aggregate contact totals recorded so far.
    pub fn totals(&self) -> TraceTotals {
        self.tracer.totals()
    }

    /// Finishes the trace and returns the complete JSONL text.
    pub fn finish(self) -> String {
        self.tracer.finish()
    }
}

impl<P: SirView + ?Sized> Observer<P> for TraceObserver {
    fn on_run_start(&mut self, protocol: &P) {
        self.tracer.run_start(sir_of(protocol));
    }

    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.tracer.contact(
            u64::from(cycle),
            i as u64,
            j as u64,
            stats.sent,
            stats.useful,
        );
    }

    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        self.tracer.cycle(u64::from(cycle), sir_of(protocol));
    }
}

/// Folds a run into a bounded-memory [`RunAggregate`] through the
/// engine's observer seam. Works with any [`SirView`] protocol; wraps
/// [`epidemic_trace::AggregatingSink`]. Unlike [`TraceObserver`] the
/// memory footprint does not grow with run length, so this is the
/// observer the megascale sweep can afford.
#[derive(Debug, Clone, Default)]
pub struct AggregateObserver {
    sink: AggregatingSink,
}

impl AggregateObserver {
    /// An observer with an empty aggregate.
    pub fn new() -> Self {
        AggregateObserver::default()
    }

    /// A view of the aggregate accumulated so far.
    pub fn aggregate(&self) -> &RunAggregate {
        self.sink.aggregate()
    }

    /// Consumes the observer, returning its aggregate.
    pub fn finish(self) -> RunAggregate {
        self.sink.finish()
    }
}

impl<P: SirView + ?Sized> Observer<P> for AggregateObserver {
    fn on_run_start(&mut self, protocol: &P) {
        self.sink.run_start(sir_of(protocol));
    }

    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.sink.contact(cycle, i, j, stats.sent, stats.useful);
    }

    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        self.sink.cycle(cycle, sir_of(protocol));
    }
}

/// Checks protocol invariants as a run streams by, through the engine's
/// observer seam. Violations are recorded, never panicked on; inspect
/// [`InvariantObserver::is_clean`] / [`InvariantObserver::violations`]
/// after the run. Wraps [`epidemic_trace::InvariantChecker`]; the rule set
/// is documented in [`epidemic_trace::invariant`].
#[derive(Debug, Clone, Default)]
pub struct InvariantObserver {
    checker: InvariantChecker,
    digests: Vec<u64>,
}

impl InvariantObserver {
    /// A fresh checker.
    pub fn new() -> Self {
        InvariantObserver::default()
    }

    /// Verifies the engine's aggregate totals against contact-by-contact
    /// accumulation (call after the run with the
    /// [`EngineReport`](super::EngineReport) totals, when available).
    pub fn verify_totals(&mut self, totals: EngineTotals) {
        self.checker.finish(
            TraceTotals {
                contacts: totals.contacts,
                sent: totals.sent,
                useful: totals.useful,
                fruitless: totals.fruitless,
            },
            None,
        );
    }

    /// `true` when no invariant violation has been detected.
    pub fn is_clean(&self) -> bool {
        self.checker.is_clean()
    }

    /// Violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// All stored violations as JSONL; empty string when clean.
    pub fn to_jsonl(&self) -> String {
        self.checker.to_jsonl()
    }
}

impl<P: TraceView + ?Sized> Observer<P> for InvariantObserver {
    fn on_run_start(&mut self, protocol: &P) {
        self.checker.start(sir_of(protocol));
    }

    fn on_contact(&mut self, cycle: u32, _i: usize, _j: usize, stats: &ContactStats) {
        self.checker
            .contact(u64::from(cycle), stats.sent, stats.useful);
    }

    fn on_cycle_end(&mut self, cycle: u32, protocol: &P) {
        let sir = sir_of(protocol);
        // Digests are only needed — and only computed — once coverage is
        // complete, which is when the convergence invariant can fire.
        let digests = if sir.susceptible == 0 {
            self.digests.clear();
            protocol.site_digests(&mut self.digests);
            Some(self.digests.as_slice())
        } else {
            None
        };
        self.checker.cycle(u64::from(cycle), sir, digests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CycleEngine, EpidemicProtocol, Roster, UniformPartners};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Compile-time proof that every engine protocol is traceable.
    #[test]
    fn every_engine_protocol_implements_trace_view() {
        fn assert_traceable<P: TraceView>() {}
        assert_traceable::<MixingProtocol>();
        assert_traceable::<BitAntiEntropyProtocol>();
        assert_traceable::<DirectMailProtocol>();
        assert_traceable::<SpatialAntiEntropyProtocol<'static>>();
        assert_traceable::<SpatialRumorProtocol<'static>>();
    }

    /// A deliberately broken protocol: sites "unhear" the update (the
    /// susceptible count grows back), violating monotonicity and the
    /// infection-needs-traffic rule.
    struct Flapping {
        n: usize,
        cycle: u32,
    }

    impl EpidemicProtocol for Flapping {
        fn site_count(&self) -> usize {
            self.n
        }
        fn roster(&self) -> Roster {
            Roster::Everyone
        }
        fn finished(&self, cycle: u32, _active: &[usize]) -> bool {
            cycle >= 4
        }
        fn begin_cycle(&mut self, cycle: u32, _rng: &mut StdRng) {
            self.cycle = cycle;
        }
        fn contact(
            &mut self,
            _cycle: u32,
            _i: usize,
            _j: usize,
            _rng: &mut StdRng,
        ) -> ContactStats {
            ContactStats { sent: 1, useful: 0 }
        }
    }

    impl SirView for Flapping {
        fn sir_counts(&self) -> SirCounts {
            // Susceptible oscillates: 2 fewer on odd cycles, back up on
            // even ones — infections appear without useful traffic and
            // un-happen later.
            let infected = if self.cycle % 2 == 1 { 3 } else { 1 };
            SirCounts {
                susceptible: self.n - infected,
                infective: infected,
                removed: 0,
            }
        }
    }

    impl TraceView for Flapping {
        fn site_digests(&self, out: &mut Vec<u64>) {
            out.extend(std::iter::repeat_n(0, self.n));
        }
    }

    #[test]
    fn broken_protocol_is_reported_not_panicked() {
        let mut protocol = Flapping { n: 10, cycle: 0 };
        let mut rng = StdRng::seed_from_u64(3);
        let mut check = InvariantObserver::new();
        let report = CycleEngine::new().run(
            &mut protocol,
            &UniformPartners::new(10),
            &mut rng,
            &mut check,
        );
        check.verify_totals(report.totals);
        assert!(!check.is_clean(), "the flapping protocol must be caught");
        let rules: Vec<_> = check.violations().iter().map(|v| v.rule).collect();
        assert!(
            rules.contains(&"infection_needs_traffic"),
            "fruitless contacts cannot infect: {rules:?}"
        );
        assert!(
            rules.contains(&"monotone_susceptible"),
            "susceptible grew back: {rules:?}"
        );
        assert!(check.to_jsonl().contains(r#""event":"violation""#));
    }

    #[test]
    fn totals_mismatch_is_reported() {
        let mut check = InvariantObserver::new();
        let protocol = Flapping { n: 4, cycle: 0 };
        Observer::<Flapping>::on_run_start(&mut check, &protocol);
        check.verify_totals(EngineTotals {
            contacts: 99,
            ..EngineTotals::default()
        });
        assert!(check
            .violations()
            .iter()
            .any(|v| v.rule == "totals_consistency"));
    }
}
