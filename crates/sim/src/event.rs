//! Event-driven (asynchronous) anti-entropy simulation.
//!
//! The paper's simulations — and this crate's other drivers — use
//! synchronized cycles: every site acts once per cycle. Real Clearinghouse
//! servers were not synchronized; each ran anti-entropy on its own timer.
//! This driver replays the Table 4 experiment on a discrete-event queue
//! with per-site periods and jitter, as an *ablation of the synchrony
//! assumption*: convergence times (measured in periods) and per-link
//! traffic rates come out close to the round-synchronous results, so the
//! paper's conclusions do not hinge on lockstep cycles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use epidemic_core::{AntiEntropy, Comparison, Direction, Replica};
use epidemic_db::SiteId;
use epidemic_net::{LinkTraffic, PartnerSampler, Routes, Spatial, Topology};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

use crate::engine::{PartnerPolicy, ReceiveLog, RouteRecorder, SpatialPartners, UniformPartners};

/// Time in microticks; one nominal anti-entropy period is
/// [`AsyncAntiEntropySim::PERIOD`] microticks.
pub type Micros = u64;

/// Result of one asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncRunResult {
    /// Time (in periods) until the last site received the update.
    pub t_last: f64,
    /// Mean time (in periods) from injection to receipt over all sites.
    pub t_ave: f64,
    /// Total exchanges performed until convergence.
    pub exchanges: u64,
    /// Conversations per link, accumulated over the run.
    pub compare_traffic: LinkTraffic,
    /// Update-bearing conversations per link.
    pub update_traffic: LinkTraffic,
    /// Conversations per link per period, averaged over links.
    pub compare_per_link_period: f64,
}

/// Discrete-event anti-entropy driver with per-site timers.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, Spatial};
/// use epidemic_sim::event::AsyncAntiEntropySim;
///
/// let topo = topologies::ring(16);
/// let sim = AsyncAntiEntropySim::new(&topo, Spatial::Uniform, 0.2);
/// let r = sim.run(3, None);
/// assert!(r.t_last > 0.0);
/// ```
#[derive(Debug)]
pub struct AsyncAntiEntropySim<'a> {
    topology: &'a Topology,
    routes: Routes,
    sampler: PartnerSampler,
    jitter: f64,
    max_events: u64,
}

const KEY: u32 = 0;

impl<'a> AsyncAntiEntropySim<'a> {
    /// Nominal anti-entropy period in microticks.
    pub const PERIOD: Micros = 1_000;

    /// Builds the simulator. `jitter` is the fraction of the period by
    /// which each firing deviates, uniformly in `[-jitter, +jitter]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= jitter < 1.0`.
    pub fn new(topology: &'a Topology, spatial: Spatial, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        let routes = Routes::compute(topology);
        let sampler = PartnerSampler::new(topology, &routes, spatial);
        AsyncAntiEntropySim {
            topology,
            routes,
            sampler,
            jitter,
            max_events: 10_000_000,
        }
    }

    /// Runs one experiment: a single update injected at `origin` (random
    /// when `None`) at time 0; every site fires anti-entropy exchanges on
    /// its own jittered timer until all sites hold the update.
    pub fn run(&self, seed: u64, origin: Option<SiteId>) -> AsyncRunResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        let policy = SpatialPartners::new(sites, &self.sampler);
        let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut rng).expect("sites"));
        let origin_idx = sites.binary_search(&origin).expect("site exists");
        replicas[origin_idx].client_update(KEY, 1);
        replicas[origin_idx].hot_mut().clear();
        let mut received: ReceiveLog<Micros> = ReceiveLog::new(n);
        received.mark(origin_idx, 0);

        // Seed each site's first firing with a random phase so the fleet
        // starts fully desynchronized.
        let mut queue: BinaryHeap<Reverse<(Micros, usize)>> = (0..n)
            .map(|i| Reverse((rng.random_range(0..Self::PERIOD), i)))
            .collect();

        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let mut scratch = epidemic_core::ExchangeScratch::new();
        let mut recorder = RouteRecorder::new(&self.routes, self.topology.link_count());
        let mut exchanges = 0u64;
        let mut now = 0;

        while !received.complete() && exchanges < self.max_events {
            let Some(Reverse((t, i))) = queue.pop() else {
                break;
            };
            now = t;
            let j = policy.attempt(i, &mut rng);
            let (a, b) = crate::util::pair_mut(&mut replicas, i, j);
            let stats = protocol.exchange_with(a, b, &mut scratch);
            exchanges += 1;
            let flowed = stats.update_flowed();
            recorder.record(sites[i], sites[j], u64::from(flowed));
            if flowed {
                for idx in [i, j] {
                    if replicas[idx].db().entry(&KEY).is_some() {
                        received.mark(idx, now);
                    }
                }
            }
            // Schedule this site's next firing.
            let base = Self::PERIOD as f64;
            let jitter = 1.0 + self.jitter * (2.0 * rng.random::<f64>() - 1.0);
            let next = now + (base * jitter).max(1.0) as Micros;
            queue.push(Reverse((next, i)));
        }

        let period = Self::PERIOD as f64;
        let t_last = received.t_last().unwrap_or(0) as f64 / period;
        let t_ave = received.t_ave_all(now) / period;
        let periods_elapsed = (now as f64 / period).max(1.0);
        let compare_per_link_period = recorder.compare.mean_per_link() / periods_elapsed;
        AsyncRunResult {
            t_last,
            t_ave,
            exchanges,
            compare_traffic: recorder.compare,
            update_traffic: recorder.update,
            compare_per_link_period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial_ae::AntiEntropySim;
    use epidemic_net::topologies;

    #[test]
    fn converges_and_accounts_traffic() {
        let topo = topologies::grid(&[5, 5]);
        let sim = AsyncAntiEntropySim::new(&topo, Spatial::Uniform, 0.2);
        let r = sim.run(1, Some(topo.sites()[0]));
        assert!(r.t_last > 0.0);
        assert!(r.t_ave <= r.t_last);
        assert!(r.update_traffic.total() > 0);
        assert!(r.exchanges >= 24);
    }

    #[test]
    fn asynchronous_matches_synchronous_convergence_roughly() {
        // The ablation claim: measured in periods, asynchronous t_last is
        // within a factor ~1.6 of the synchronous cycle count.
        let topo = topologies::grid(&[6, 6]);
        let sync = AntiEntropySim::new(&topo, Spatial::Uniform);
        let async_ = AsyncAntiEntropySim::new(&topo, Spatial::Uniform, 0.3);
        let trials = 15;
        let mut sync_mean = 0.0;
        let mut async_mean = 0.0;
        for seed in 0..trials {
            sync_mean += f64::from(sync.run(seed, Some(topo.sites()[0])).t_last);
            async_mean += async_.run(seed, Some(topo.sites()[0])).t_last;
        }
        sync_mean /= f64::from(trials as u32);
        async_mean /= f64::from(trials as u32);
        let ratio = async_mean / sync_mean;
        assert!(
            (0.6..1.7).contains(&ratio),
            "async {async_mean} vs sync {sync_mean} (ratio {ratio})"
        );
    }

    #[test]
    fn jitter_zero_is_allowed_and_deterministic() {
        let topo = topologies::ring(12);
        let sim = AsyncAntiEntropySim::new(&topo, Spatial::QsPower { a: 2.0 }, 0.0);
        let a = sim.run(7, None);
        let b = sim.run(7, None);
        assert_eq!(a.exchanges, b.exchanges);
        assert_eq!(a.t_last, b.t_last);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_out_of_range_jitter() {
        let topo = topologies::ring(6);
        AsyncAntiEntropySim::new(&topo, Spatial::Uniform, 1.5);
    }
}

/// Event-driven rumor mongering under complete mixing: each site fires
/// contacts on its own jittered timer instead of lockstep cycles —
/// ablating the cycle model behind Tables 1–3.
///
/// Counter semantics are necessarily per-contact here (there is no cycle
/// over which to aggregate pull feedback), so results are compared against
/// the synchronous driver's *sequential* mode.
///
/// # Example
///
/// ```
/// use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
/// use epidemic_sim::event::AsyncRumorEpidemic;
///
/// let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback,
///                            Removal::Counter { k: 3 });
/// let r = AsyncRumorEpidemic::new(cfg, 0.2).run(300, 5);
/// assert!(r.residue < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncRumorEpidemic {
    cfg: epidemic_core::RumorConfig,
    jitter: f64,
    max_events: u64,
}

/// Result of one asynchronous rumor epidemic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncRumorResult {
    /// Fraction of sites still susceptible at quiescence.
    pub residue: f64,
    /// Updates sent per site.
    pub traffic: f64,
    /// Time (in periods) until the last receiving site got the update.
    pub t_last: f64,
    /// Whether every site received the update.
    pub complete: bool,
}

impl AsyncRumorEpidemic {
    /// Creates the driver.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= jitter < 1.0`.
    pub fn new(cfg: epidemic_core::RumorConfig, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        AsyncRumorEpidemic {
            cfg,
            jitter,
            max_events: 10_000_000,
        }
    }

    /// Runs one epidemic: a single update injected at site 0, each site
    /// firing one contact per (jittered) period, until no rumor is hot.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run(&self, n: usize, seed: u64) -> AsyncRumorResult {
        use epidemic_core::rumor;
        let policy = UniformPartners::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        sites[0].client_update(KEY, 1);
        let mut received: ReceiveLog<Micros> = ReceiveLog::new(n);
        received.mark(0, 0);
        let period = AsyncAntiEntropySim::PERIOD;
        let mut queue: BinaryHeap<Reverse<(Micros, usize)>> = (0..n)
            .map(|i| Reverse((rng.random_range(0..period), i)))
            .collect();
        let mut sent: u64 = 0;
        let mut events = 0u64;
        let mut scratch = rumor::RumorScratch::new();

        while events < self.max_events {
            // Quiescence: no site is infective.
            if sites.iter().all(|s| s.hot().is_empty()) {
                break;
            }
            let Some(Reverse((now, i))) = queue.pop() else {
                break;
            };
            events += 1;
            let j = policy.attempt(i, &mut rng);
            let (a, b) = crate::util::pair_mut(&mut sites, i, j);
            let stats = rumor::contact_with(&self.cfg, a, b, &mut rng, &mut scratch);
            if self.cfg.direction == Direction::Pull {
                // No cycle boundary exists: apply counters immediately.
                rumor::end_cycle(&self.cfg, b);
            }
            sent += u64::try_from(stats.sent).expect("sent count fits u64");
            for idx in [i, j] {
                if sites[idx].db().entry(&KEY).is_some() {
                    received.mark(idx, now);
                }
            }
            let jitter = 1.0 + self.jitter * (2.0 * rng.random::<f64>() - 1.0);
            let next = now + (period as f64 * jitter).max(1.0) as Micros;
            queue.push(Reverse((next, i)));
        }

        AsyncRumorResult {
            residue: received.residue(),
            traffic: sent as f64 / n as f64,
            t_last: received.t_last().unwrap_or(0) as f64 / period as f64,
            complete: received.complete(),
        }
    }
}

#[cfg(test)]
mod rumor_tests {
    use super::*;
    use epidemic_core::{Feedback, Removal, RumorConfig};

    fn cfg(k: u32) -> RumorConfig {
        RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k })
    }

    #[test]
    fn async_push_epidemic_completes_mostly() {
        let r = AsyncRumorEpidemic::new(cfg(4), 0.3).run(400, 2);
        assert!(r.residue < 0.05, "residue {}", r.residue);
        assert!(r.traffic > 1.0);
        assert!(r.t_last > 0.0);
    }

    #[test]
    fn async_matches_synchronous_sequential_mode_roughly() {
        use crate::mixing::RumorEpidemic;
        let trials = 15;
        let sync_driver = RumorEpidemic::new(cfg(2)).synchronous(false);
        let async_driver = AsyncRumorEpidemic::new(cfg(2), 0.3);
        let mut sync_res = 0.0;
        let mut async_res = 0.0;
        for seed in 0..trials {
            sync_res += sync_driver.run(500, seed).residue;
            async_res += async_driver.run(500, seed).residue;
        }
        sync_res /= f64::from(trials as u32);
        async_res /= f64::from(trials as u32);
        assert!(
            (async_res - sync_res).abs() < 0.05,
            "async {async_res} vs sync {sync_res}"
        );
    }

    #[test]
    fn pull_works_without_cycle_boundaries() {
        let cfg = RumorConfig::new(
            Direction::Pull,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let r = AsyncRumorEpidemic::new(cfg, 0.2).run(300, 3);
        assert!(r.residue < 0.1, "residue {}", r.residue);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AsyncRumorEpidemic::new(cfg(3), 0.25).run(200, 9);
        let b = AsyncRumorEpidemic::new(cfg(3), 0.25).run(200, 9);
        assert_eq!(a, b);
    }
}
