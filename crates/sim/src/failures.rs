//! Failure injection for spatial anti-entropy (paper §2: "there is a
//! fairly high probability that at any time some site will be down (or
//! unreachable) for hours or even days").
//!
//! Each site independently alternates between up and down states with
//! geometric sojourn times. A down site neither initiates nor accepts
//! conversations (connections to it simply fail, like the paper's
//! unreachable servers); anti-entropy's claim is that distribution still
//! completes, merely stretched by the unavailable capacity.
//!
//! Since the scenario refactor this driver is a thin adapter: the churn
//! model is a two-line fault timeline (`at 0 update …`, `at 0 churn …`)
//! lowered through [`ScenarioEngine::run_with_policy`] with this module's
//! spatial partner sampler. The lowering is RNG-identical to the
//! hand-rolled protocol it replaced — same per-site churn draws at cycle
//! start, same roster shuffle, same partner draws, failed connections to
//! down sites still paid for — pinned exactly by
//! `tests/scenario_equivalence.rs`.

use epidemic_db::SiteId;
use epidemic_net::{PartnerSampler, Routes, Spatial, Topology};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::SeedableRng;

use crate::engine::SpatialPartners;
use crate::scenario::{AntiEntropySpec, FaultEvent, FaultKind, Scenario, ScenarioEngine, StopRule};

/// Churn model: per-cycle transition probabilities of the two-state
/// up/down Markov chain at each site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Probability an up site goes down at the start of a cycle.
    pub fail: f64,
    /// Probability a down site comes back at the start of a cycle.
    pub recover: f64,
}

impl Churn {
    /// The stationary fraction of time a site spends down.
    pub fn down_fraction(&self) -> f64 {
        if self.fail + self.recover == 0.0 {
            0.0
        } else {
            self.fail / (self.fail + self.recover)
        }
    }
}

/// Result of one churn run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnRunResult {
    /// Cycles until every site (including ones that were down) received
    /// the update.
    pub t_last: u32,
    /// Whether full coverage was reached within the cycle bound.
    pub complete: bool,
    /// Mean fraction of sites down per cycle (sanity check vs the model).
    pub observed_down_fraction: f64,
}

/// Spatial anti-entropy under site churn.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, Spatial};
/// use epidemic_sim::failures::{Churn, ChurnedAntiEntropySim};
///
/// let topo = topologies::grid(&[5, 5]);
/// let churn = Churn { fail: 0.05, recover: 0.2 };
/// let sim = ChurnedAntiEntropySim::new(&topo, Spatial::Uniform, churn);
/// let r = sim.run(3, None);
/// assert!(r.complete);
/// ```
#[derive(Debug)]
pub struct ChurnedAntiEntropySim<'a> {
    topology: &'a Topology,
    routes: Routes,
    sampler: PartnerSampler,
    churn: Churn,
    max_cycles: u32,
}

impl<'a> ChurnedAntiEntropySim<'a> {
    /// Builds the simulator.
    pub fn new(topology: &'a Topology, spatial: Spatial, churn: Churn) -> Self {
        let routes = Routes::compute(topology);
        let sampler = PartnerSampler::new(topology, &routes, spatial);
        ChurnedAntiEntropySim {
            topology,
            routes,
            sampler,
            churn,
            max_cycles: 50_000,
        }
    }

    /// Shortest-path tables (for traffic assertions in tests).
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// The declarative spec this simulator lowers to, given the dense
    /// index of the originating site (the topology itself is supplied at
    /// run time via [`ScenarioEngine::run_with_policy`], so the spec's
    /// `topology` line is the placeholder default).
    pub fn to_scenario(&self, origin_idx: usize) -> Scenario {
        let mut spec = Scenario::new("churn", self.topology.sites().len());
        spec.protocol.anti_entropy = Some(AntiEntropySpec {
            every: 1,
            from: 0,
            redistribution: epidemic_core::Redistribution::None,
        });
        spec.events = vec![
            FaultEvent {
                cycle: 0,
                kind: FaultKind::Update {
                    site: Some(origin_idx),
                    count: 1,
                },
            },
            FaultEvent {
                cycle: 0,
                kind: FaultKind::Churn {
                    fail: self.churn.fail,
                    recover: self.churn.recover,
                },
            },
        ];
        spec.until = StopRule::Coverage;
        spec.max_cycles = self.max_cycles;
        spec
    }

    /// Runs one experiment: single update at `origin` (random when
    /// `None`), push-pull anti-entropy each cycle among *up* sites.
    pub fn run(&self, seed: u64, origin: Option<SiteId>) -> ChurnRunResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut rng).expect("sites"));
        let origin_idx = sites.binary_search(&origin).expect("site exists");
        let engine = ScenarioEngine::new(self.to_scenario(origin_idx)).expect("churn spec valid");
        let report = engine.run_with_policy(
            &mut rng,
            &SpatialPartners::new(sites, &self.sampler),
            Some(sites),
            &mut (),
        );
        ChurnRunResult {
            t_last: report.cycles,
            complete: report.residue == 0.0,
            observed_down_fraction: if report.cycles == 0 {
                0.0
            } else {
                report.down_site_cycles as f64 / (f64::from(report.cycles) * n as f64)
            },
        }
    }

    /// Runs `trials` experiments in parallel with seeds
    /// `seed_base + trial`, returning results in trial order — identical
    /// to a sequential loop over [`ChurnedAntiEntropySim::run`] at any
    /// thread count.
    pub fn run_trials(
        &self,
        runner: crate::runner::TrialRunner,
        trials: u64,
        seed_base: u64,
        origin: Option<SiteId>,
    ) -> Vec<ChurnRunResult> {
        runner.run(trials, seed_base, |seed| self.run(seed, origin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_net::topologies;

    #[test]
    fn churn_model_stationary_fraction() {
        let churn = Churn {
            fail: 0.1,
            recover: 0.3,
        };
        assert!((churn.down_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(
            Churn {
                fail: 0.0,
                recover: 0.0
            }
            .down_fraction(),
            0.0
        );
    }

    #[test]
    fn anti_entropy_survives_heavy_churn() {
        // A third of the fleet is down at any moment; distribution still
        // completes with probability 1 (§2's premise for why snapshot
        // protocols stall but anti-entropy does not).
        let topo = topologies::grid(&[6, 6]);
        let churn = Churn {
            fail: 0.1,
            recover: 0.2,
        };
        let sim = ChurnedAntiEntropySim::new(&topo, Spatial::Uniform, churn);
        for seed in 0..10 {
            let r = sim.run(seed, Some(topo.sites()[0]));
            assert!(r.complete, "seed {seed}: {r:?}");
            assert!((r.observed_down_fraction - churn.down_fraction()).abs() < 0.15);
        }
    }

    #[test]
    fn churn_slows_but_does_not_stop_convergence() {
        let topo = topologies::grid(&[6, 6]);
        let quiet = ChurnedAntiEntropySim::new(
            &topo,
            Spatial::Uniform,
            Churn {
                fail: 0.0,
                recover: 1.0,
            },
        );
        let stormy = ChurnedAntiEntropySim::new(
            &topo,
            Spatial::Uniform,
            Churn {
                fail: 0.2,
                recover: 0.2,
            },
        );
        let mean = |sim: &ChurnedAntiEntropySim, seeds: u64| {
            (0..seeds)
                .map(|s| f64::from(sim.run(s, Some(topo.sites()[0])).t_last))
                .sum::<f64>()
                / seeds as f64
        };
        let quiet_t = mean(&quiet, 10);
        let stormy_t = mean(&stormy, 10);
        assert!(
            stormy_t > quiet_t,
            "stormy {stormy_t} should exceed quiet {quiet_t}"
        );
    }

    #[test]
    fn zero_churn_matches_plain_simulation_behaviour() {
        let topo = topologies::ring(16);
        let sim = ChurnedAntiEntropySim::new(
            &topo,
            Spatial::QsPower { a: 2.0 },
            Churn {
                fail: 0.0,
                recover: 1.0,
            },
        );
        let r = sim.run(5, Some(topo.sites()[0]));
        assert!(r.complete);
        assert_eq!(r.observed_down_fraction, 0.0);
    }
}
