//! Round-synchronous simulator for the epidemic protocols — the harness
//! behind every table and figure of Demers et al. (PODC 1987).
//!
//! The paper evaluates its protocols with cycle-based simulations: in each
//! cycle every (relevant) site chooses a partner and performs one protocol
//! exchange. This crate provides those drivers:
//!
//! * [`mixing`] — uniform complete-mixing rumor epidemics on `n` sites
//!   (Tables 1–3): residue, traffic `m`, `t_ave`, `t_last`, with connection
//!   limits and hunting;
//! * [`spatial_ae`] — anti-entropy on a real topology with spatial partner
//!   selection and per-link traffic accounting (Tables 4–5);
//! * [`spatial_rumor`] — rumor mongering on a topology (§3.2), including
//!   the minimal-`k` search used to match Table 4 and the Figure 1/2
//!   pathology demonstrations;
//! * [`megascale`] — the single-update rumor epidemic at 10⁴–10⁷ sites on
//!   uniform and scale-free topologies: the active-set fast path
//!   ([`FastRumorProtocol`] on [`engine::ActiveCycleEngine`]) plus the
//!   legacy eager path parameterised by storage backend (the
//!   fig-megascale sweep);
//! * [`scenario`] — the declarative scenario subsystem: a parsed
//!   [`scenario::Scenario`] spec (site count, protocol, weighted workload
//!   mix, fault-event timeline) lowered onto the cycle engine by
//!   [`scenario::ScenarioEngine`], with the historical end-to-end drivers
//!   (Clearinghouse, death certificates, partitions, crashes) kept as thin
//!   adapters in [`scenario::legacy`] over bundled `.scenario` files;
//! * [`steady`] — steady-state anti-entropy under continuous updates: the
//!   §1.3 checksum/recent-list window trade-off;
//! * [`event`] — a discrete-event, per-site-timer driver ablating the
//!   synchronous-cycle assumption;
//! * [`failures`] — spatial anti-entropy under site churn (§2's
//!   hours-to-days downtime);
//! * [`rumor_steady`] — continuous-update rumor mongering: §1.4's
//!   push-vs-pull update-rate trade-off;
//! * [`engine`] — the shared cycle engine all of the above drive:
//!   pluggable [`engine::EpidemicProtocol`] contacts, uniform or spatial
//!   [`engine::PartnerPolicy`] partner selection, and [`engine::Observer`]
//!   tracing hooks;
//! * [`runner`] — deterministic parallel trial execution: fans Monte-Carlo
//!   trials across threads with per-trial seeds `seed_base + trial`,
//!   returning results in trial order so aggregates are bit-identical at
//!   any thread count (force one thread with `EPIDEMIC_THREADS=1` or
//!   [`runner::TrialRunner::threads`]);
//! * [`stats`] — small summary-statistics helpers.
//!
//! Everything is deterministic given a seed — including multi-trial
//! aggregates run through [`runner::TrialRunner`].
//!
//! # Example
//!
//! ```
//! use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
//! use epidemic_sim::mixing::RumorEpidemic;
//!
//! // One trial of Table 1's protocol at k = 2 on 200 sites.
//! let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k: 2 });
//! let result = RumorEpidemic::new(cfg).run(200, 42);
//! assert!(result.residue < 0.5);
//! assert!(result.traffic > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod engine;
pub mod event;
pub mod failures;
pub mod megascale;
pub mod mixing;
pub mod rumor_steady;
pub mod runner;
pub mod scenario;
pub mod spatial_ae;
pub mod spatial_rumor;
pub mod spatial_steady;
pub mod stats;
pub mod steady;
mod util;

pub use bitset::BitSet;
pub use engine::{
    ContactStats, CycleEngine, EngineReport, EpidemicProtocol, InvariantObserver, NeighborPartners,
    Observer, PartnerPolicy, SirObserver, SpatialPartners, TraceObserver, TraceView,
    UniformPartners,
};
pub use event::{AsyncAntiEntropySim, AsyncRumorEpidemic, AsyncRumorResult, AsyncRunResult};
pub use failures::{Churn, ChurnRunResult, ChurnedAntiEntropySim};
pub use megascale::{FastDraw, FastRumorProtocol, MegascaleSim};
pub use mixing::{EpidemicResult, RumorEpidemic};
pub use rumor_steady::{RumorSteadyConfig, RumorSteadyReport, RumorSteadySim};
pub use runner::TrialRunner;
pub use scenario::{Scenario, ScenarioEngine, ScenarioReport};
pub use spatial_ae::{AntiEntropySim, SpatialRunResult};
pub use spatial_rumor::SpatialRumorSim;
pub use spatial_steady::{SpatialSteadyConfig, SpatialSteadyReport, SpatialSteadySim};
pub use stats::{Quantiles, Summary};
pub use steady::{SteadyStateReport, SteadyStateSim};
