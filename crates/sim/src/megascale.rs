//! Million-site epidemic sweeps (the `fig-megascale` experiment).
//!
//! The paper validates rumor mongering at CIN scale (n ≈ 1000–3000). The
//! complex-networks literature that followed (Moreno–Nekovee–Vespignani)
//! shows residue and delay behave qualitatively differently at 10⁵–10⁶
//! sites on heterogeneous-degree topologies — hubs both accelerate spread
//! and concentrate fruitless contacts. This driver reruns the §1.4
//! single-update rumor epidemic at that scale:
//!
//! * **uniform** — complete mixing, the Tables 1–3 model, via
//!   [`UniformPartners`];
//! * **scale-free** — partners drawn uniformly from the initiator's
//!   neighbors on a Barabási–Albert [`DegreeGraph`], via
//!   [`NeighborPartners`].
//!
//! The protocol is fixed at the paper's workhorse variant — push, feedback,
//! coin removal with `k = 4` — so the sweep varies only scale, topology and
//! storage [`Backend`]. Replicas are constructed on an explicit backend
//! ([`Replica::with_backend`]); running the same `(n, topology, seed)`
//! point on both backends is the apples-to-apples comparison behind the
//! flat-storage claims, and the backends' observational equivalence means
//! the two runs produce identical results (only speed and footprint
//! differ).

use epidemic_core::rumor::{RumorConfig, RumorScratch};
use epidemic_core::{Direction, Feedback, Removal, Replica};
use epidemic_db::{Backend, SiteId};
use epidemic_net::DegreeGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bitset::BitSet;
use crate::engine::protocols::{MixingProtocol, ReceiveLog};
use crate::engine::{CycleEngine, NeighborPartners, Observer, PartnerPolicy, UniformPartners};
use crate::mixing::EpidemicResult;

/// The single key the megascale update spreads under.
const KEY: u32 = 0;

/// Single-update rumor epidemics at 10⁴–10⁶ sites; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct MegascaleSim {
    cfg: RumorConfig,
    max_cycles: u32,
}

impl Default for MegascaleSim {
    fn default() -> Self {
        MegascaleSim::new()
    }
}

impl MegascaleSim {
    /// The fixed sweep protocol: push, feedback, coin removal with
    /// `k = 4` — high-coverage and cheap per contact, so the interesting
    /// variation is scale and topology.
    pub fn new() -> Self {
        MegascaleSim {
            cfg: RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Coin { k: 4 }),
            max_cycles: 100_000,
        }
    }

    /// Safety bound on simulated cycles.
    #[must_use]
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// One epidemic over `n` uniformly mixing sites on `backend` storage.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_uniform(&self, n: usize, seed: u64, backend: Backend) -> EpidemicResult {
        self.run_uniform_observed(n, seed, backend, &mut ())
    }

    /// As [`MegascaleSim::run_uniform`], streaming the run through
    /// `observer` (e.g. an
    /// [`AggregateObserver`](crate::engine::AggregateObserver), whose
    /// bounded memory is what makes observing n=10⁶ affordable).
    /// Observers never touch the RNG, so the [`EpidemicResult`] is
    /// identical to the unobserved run's.
    pub fn run_uniform_observed<O: Observer<MixingProtocol>>(
        &self,
        n: usize,
        seed: u64,
        backend: Backend,
        observer: &mut O,
    ) -> EpidemicResult {
        self.run_with_policy(n, &UniformPartners::new(n), seed, backend, observer)
    }

    /// One epidemic over the sites of `graph`, each initiator gossiping
    /// with a uniform random neighbor, on `backend` storage. The update
    /// starts at site 0 — a member of the Barabási–Albert seed clique, so
    /// scale-free runs start from the well-connected core.
    pub fn run_scale_free(
        &self,
        graph: &DegreeGraph,
        seed: u64,
        backend: Backend,
    ) -> EpidemicResult {
        self.run_scale_free_observed(graph, seed, backend, &mut ())
    }

    /// As [`MegascaleSim::run_scale_free`], streaming the run through
    /// `observer` (see [`MegascaleSim::run_uniform_observed`]).
    pub fn run_scale_free_observed<O: Observer<MixingProtocol>>(
        &self,
        graph: &DegreeGraph,
        seed: u64,
        backend: Backend,
        observer: &mut O,
    ) -> EpidemicResult {
        self.run_with_policy(
            graph.site_count(),
            &NeighborPartners::new(graph),
            seed,
            backend,
            observer,
        )
    }

    fn run_with_policy<L: PartnerPolicy + ?Sized, O: Observer<MixingProtocol>>(
        &self,
        n: usize,
        policy: &L,
        seed: u64,
        backend: Backend,
        observer: &mut O,
    ) -> EpidemicResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| {
                Replica::with_backend(
                    SiteId::new(u32::try_from(i).expect("site count fits u32")),
                    backend,
                )
            })
            .collect();
        sites[0].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(0, 0);

        let mut protocol = MixingProtocol {
            cfg: self.cfg,
            synchronous: false,
            sites,
            received,
            state0: BitSet::new(n),
            hot0: BitSet::new(n),
            scratch: RumorScratch::new(),
        };
        let report = CycleEngine::new().max_cycles(self.max_cycles).run(
            &mut protocol,
            policy,
            &mut rng,
            observer,
        );

        let received = protocol.received;
        EpidemicResult {
            n,
            residue: received.residue(),
            traffic: report.totals.sent as f64 / n as f64,
            t_ave: received.t_ave_received(),
            t_last: f64::from(received.t_last().unwrap_or(0)),
            cycles: report.cycles,
            complete: received.complete(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_produce_identical_results() {
        let sim = MegascaleSim::new();
        for seed in [1, 2] {
            let tree = sim.run_uniform(300, seed, Backend::BTree);
            let flat = sim.run_uniform(300, seed, Backend::Flat);
            assert_eq!(tree, flat, "uniform seed={seed}");
        }
        let graph = DegreeGraph::scale_free(300, 2, 7);
        let tree = sim.run_scale_free(&graph, 3, Backend::BTree);
        let flat = sim.run_scale_free(&graph, 3, Backend::Flat);
        assert_eq!(tree, flat, "scale-free");
    }

    #[test]
    fn epidemic_reaches_nearly_everyone() {
        let sim = MegascaleSim::new();
        let uniform = sim.run_uniform(500, 11, Backend::Flat);
        assert!(uniform.residue < 0.05, "residue {}", uniform.residue);
        assert!(uniform.cycles > 0 && uniform.t_last > 0.0);
        let graph = DegreeGraph::scale_free(500, 2, 11);
        let sf = sim.run_scale_free(&graph, 11, Backend::Flat);
        assert!(sf.residue < 0.20, "residue {}", sf.residue);
    }

    #[test]
    fn observed_run_matches_unobserved_and_aggregates() {
        use crate::engine::AggregateObserver;
        let sim = MegascaleSim::new();
        let plain = sim.run_uniform(300, 9, Backend::Flat);
        let mut obs = AggregateObserver::new();
        let observed = sim.run_uniform_observed(300, 9, Backend::Flat, &mut obs);
        assert_eq!(plain, observed, "observers must not perturb the run");
        let agg = obs.finish();
        assert_eq!(agg.sites(), 300);
        assert_eq!(agg.runs(), 1);
        assert!(
            agg.delay().count() >= 250,
            "nearly every site records a delay: {}",
            agg.delay().count()
        );
        assert!((agg.totals().sent as f64 / 300.0 - plain.traffic).abs() < 1e-12);
        assert_eq!(agg.max_cycle(), u64::from(plain.cycles));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let sim = MegascaleSim::new();
        let a = sim.run_uniform(200, 5, Backend::Flat);
        let b = sim.run_uniform(200, 5, Backend::Flat);
        assert_eq!(a, b);
        let c = sim.run_uniform(200, 6, Backend::Flat);
        assert_ne!(a, c, "different seeds explore different streams");
    }
}
