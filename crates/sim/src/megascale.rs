//! Million-site epidemic sweeps (the `fig-megascale` experiment).
//!
//! The paper validates rumor mongering at CIN scale (n ≈ 1000–3000). The
//! complex-networks literature that followed (Moreno–Nekovee–Vespignani)
//! shows residue and delay behave qualitatively differently at 10⁵–10⁶
//! sites on heterogeneous-degree topologies — hubs both accelerate spread
//! and concentrate fruitless contacts. This driver reruns the §1.4
//! single-update rumor epidemic at that scale:
//!
//! * **uniform** — complete mixing, the Tables 1–3 model, via
//!   [`UniformPartners`];
//! * **scale-free** — partners drawn uniformly from the initiator's
//!   neighbors on a Barabási–Albert [`DegreeGraph`], via
//!   [`NeighborPartners`].
//!
//! The protocol is fixed at the paper's workhorse variant — push, feedback,
//! coin removal with `k = 4` — so the sweep varies only scale, topology and
//! storage [`Backend`]. Replicas are constructed on an explicit backend
//! ([`Replica::with_backend`]); running the same `(n, topology, seed)`
//! point on both backends is the apples-to-apples comparison behind the
//! flat-storage claims, and the backends' observational equivalence means
//! the two runs produce identical results (only speed and footprint
//! differ).
//!
//! # The fast path
//!
//! The legacy runner above pays two costs proportional to `n` every run:
//! it materializes a full [`Replica`] per site before the first contact,
//! and the [`CycleEngine`]'s sequential RNG forces a full-roster walk
//! every cycle. Both are pure overhead for a single-update epidemic,
//! where a susceptible site holds no data and an idle site draws nothing.
//!
//! [`FastRumorProtocol`] + [`ActiveCycleEngine`] replace them:
//!
//! * per-site state is three bits (`has_entry`, `hot`, and their
//!   start-of-cycle snapshots) plus a [`LazyTable`] row materialized at
//!   first receipt — footprint follows *receipts*, not fleet size;
//! * contacts draw from the counter-based
//!   [`rand::rngs::ContactRng`], a pure function of
//!   `(seed, cycle, site)`, so the engine visits only the hot sites and
//!   shards the cycle across worker threads with byte-identical output
//!   at any worker count;
//! * contacts keep the legacy loop's *asynchronous* judgment — a push is
//!   useful iff the partner lacks the entry at execution time, so two
//!   pushes reaching the same susceptible site in one cycle score one
//!   useful and one fruitless-plus-coin-toss, exactly as before. The
//!   engine's draw/apply split makes that compatible with parallelism:
//!   random choices (partner, coin) are sampled in parallel from each
//!   contact's private stream, then executed sequentially in ascending
//!   initiator order. The one semantic deviation from the legacy runner
//!   is that order — ascending instead of shuffled — plus the RNG
//!   contract itself; the fast path is pinned exactly against
//!   [`mod@reference`] (same contract, naive eager loop) by the differential
//!   suites, and statistically (5σ) against the legacy runner where the
//!   contract legitimately differs.

use epidemic_core::rumor::{RumorConfig, RumorScratch};
use epidemic_core::{Direction, Feedback, Removal, Replica};
use epidemic_db::{Backend, LazyTable, SiteId};
use epidemic_net::DegreeGraph;
use rand::rngs::{ContactRng, StdRng};
use rand::{RngExt, SeedableRng};

use crate::bitset::BitSet;
use crate::engine::protocols::{MixingProtocol, ReceiveLog};
use crate::engine::{
    ActiveCycleEngine, ActiveSetProtocol, ContactStats, CycleEngine, EngineReport,
    NeighborPartners, Observer, PartnerPolicy, SirCounts, SirView, UniformPartners,
};
use crate::mixing::EpidemicResult;

/// The single key the megascale update spreads under.
const KEY: u32 = 0;

/// Single-update rumor epidemics at 10⁴–10⁶ sites; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct MegascaleSim {
    cfg: RumorConfig,
    max_cycles: u32,
    workers: Option<usize>,
}

impl Default for MegascaleSim {
    fn default() -> Self {
        MegascaleSim::new()
    }
}

impl MegascaleSim {
    /// The fixed sweep protocol: push, feedback, coin removal with
    /// `k = 4` — high-coverage and cheap per contact, so the interesting
    /// variation is scale and topology.
    pub fn new() -> Self {
        MegascaleSim {
            cfg: RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Coin { k: 4 }),
            max_cycles: 100_000,
            workers: None,
        }
    }

    /// Safety bound on simulated cycles.
    #[must_use]
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// Worker threads for the fast path's contact loop (default: the
    /// [`EPIDEMIC_THREADS`](crate::runner::THREADS_ENV_VAR) setting). Any
    /// value produces byte-identical results; the legacy runner ignores
    /// this.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// The coin-removal loss rate `k` of the fixed sweep protocol.
    fn coin_k(&self) -> u32 {
        match self.cfg.removal {
            Removal::Coin { k } => k,
            Removal::Counter { .. } => unreachable!("megascale protocol is coin removal"),
        }
    }

    /// One epidemic over `n` uniformly mixing sites on `backend` storage.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_uniform(&self, n: usize, seed: u64, backend: Backend) -> EpidemicResult {
        self.run_uniform_observed(n, seed, backend, &mut ())
    }

    /// As [`MegascaleSim::run_uniform`], streaming the run through
    /// `observer` (e.g. an
    /// [`AggregateObserver`](crate::engine::AggregateObserver), whose
    /// bounded memory is what makes observing n=10⁶ affordable).
    /// Observers never touch the RNG, so the [`EpidemicResult`] is
    /// identical to the unobserved run's.
    pub fn run_uniform_observed<O: Observer<MixingProtocol>>(
        &self,
        n: usize,
        seed: u64,
        backend: Backend,
        observer: &mut O,
    ) -> EpidemicResult {
        self.run_with_policy(n, &UniformPartners::new(n), seed, backend, observer)
    }

    /// One epidemic over the sites of `graph`, each initiator gossiping
    /// with a uniform random neighbor, on `backend` storage. The update
    /// starts at site 0 — a member of the Barabási–Albert seed clique, so
    /// scale-free runs start from the well-connected core.
    pub fn run_scale_free(
        &self,
        graph: &DegreeGraph,
        seed: u64,
        backend: Backend,
    ) -> EpidemicResult {
        self.run_scale_free_observed(graph, seed, backend, &mut ())
    }

    /// As [`MegascaleSim::run_scale_free`], streaming the run through
    /// `observer` (see [`MegascaleSim::run_uniform_observed`]).
    pub fn run_scale_free_observed<O: Observer<MixingProtocol>>(
        &self,
        graph: &DegreeGraph,
        seed: u64,
        backend: Backend,
        observer: &mut O,
    ) -> EpidemicResult {
        self.run_with_policy(
            graph.site_count(),
            &NeighborPartners::new(graph),
            seed,
            backend,
            observer,
        )
    }

    fn run_with_policy<L: PartnerPolicy + ?Sized, O: Observer<MixingProtocol>>(
        &self,
        n: usize,
        policy: &L,
        seed: u64,
        backend: Backend,
        observer: &mut O,
    ) -> EpidemicResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| {
                Replica::with_backend(
                    SiteId::new(u32::try_from(i).expect("site count fits u32")),
                    backend,
                )
            })
            .collect();
        sites[0].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(0, 0);

        let mut protocol = MixingProtocol {
            cfg: self.cfg,
            synchronous: false,
            sites,
            received,
            state0: BitSet::new(n),
            hot0: BitSet::new(n),
            scratch: RumorScratch::new(),
        };
        let report = CycleEngine::new().max_cycles(self.max_cycles).run(
            &mut protocol,
            policy,
            &mut rng,
            observer,
        );

        let received = protocol.received;
        EpidemicResult {
            n,
            residue: received.residue(),
            traffic: report.totals.sent as f64 / n as f64,
            t_ave: received.t_ave_received(),
            t_last: f64::from(received.t_last().unwrap_or(0)),
            cycles: report.cycles,
            complete: received.complete(),
        }
    }

    /// One epidemic over `n` uniformly mixing sites on the fast path —
    /// active-set iteration, counter-based RNG, lazy site rows; see the
    /// module docs. No storage backend is involved: per-site state is
    /// bits until a site's first receipt.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_uniform_fast(&self, n: usize, seed: u64) -> EpidemicResult {
        self.run_uniform_fast_observed(n, seed, &mut ())
    }

    /// As [`MegascaleSim::run_uniform_fast`], streaming the run through
    /// `observer`. Observers never touch the RNG, so the result is
    /// identical to the unobserved run's.
    pub fn run_uniform_fast_observed<O: Observer<FastRumorProtocol<'static>>>(
        &self,
        n: usize,
        seed: u64,
        observer: &mut O,
    ) -> EpidemicResult {
        let mut protocol = FastRumorProtocol::uniform(n, self.coin_k());
        let report = self.active_engine().run(&mut protocol, seed, observer);
        protocol.result(&report)
    }

    /// One epidemic over the sites of `graph` on the fast path, each
    /// initiator gossiping with a uniform random neighbor (see
    /// [`MegascaleSim::run_scale_free`] for the topology conventions).
    pub fn run_scale_free_fast(&self, graph: &DegreeGraph, seed: u64) -> EpidemicResult {
        self.run_scale_free_fast_observed(graph, seed, &mut ())
    }

    /// As [`MegascaleSim::run_scale_free_fast`], streaming the run
    /// through `observer`.
    pub fn run_scale_free_fast_observed<'g, O: Observer<FastRumorProtocol<'g>>>(
        &self,
        graph: &'g DegreeGraph,
        seed: u64,
        observer: &mut O,
    ) -> EpidemicResult {
        let mut protocol = FastRumorProtocol::scale_free(graph, self.coin_k());
        let report = self.active_engine().run(&mut protocol, seed, observer);
        protocol.result(&report)
    }

    fn active_engine(&self) -> ActiveCycleEngine {
        let engine = ActiveCycleEngine::new().max_cycles(self.max_cycles);
        match self.workers {
            Some(w) => engine.workers(w),
            None => engine,
        }
    }
}

/// Where the fast path's partners come from. Draw-for-draw identical to
/// [`UniformPartners`] / [`NeighborPartners`], but fed from a
/// [`ContactRng`] instead of the engine's sequential stream.
#[derive(Debug, Clone, Copy)]
enum Partners<'a> {
    Uniform { n: usize },
    Neighbors(&'a DegreeGraph),
}

impl Partners<'_> {
    fn draw(&self, i: usize, rng: &mut ContactRng) -> usize {
        match *self {
            Partners::Uniform { n } => {
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                j
            }
            Partners::Neighbors(graph) => {
                let neighbors = graph.neighbors(i);
                neighbors[rng.random_range(0..neighbors.len())] as usize
            }
        }
    }
}

/// The pure record of one fast-path contact's random choices (the
/// [`ActiveSetProtocol::Draw`] of [`FastRumorProtocol`]): where the push
/// goes, and how the feedback coin landed.
///
/// The coin is sampled *unconditionally* — each contact owns its private
/// stream, so over-drawing is free — and consulted at apply time only if
/// the push turns out fruitless. This is what lets usefulness be judged
/// sequentially against current state while the sampling runs in
/// parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastDraw {
    /// The drawn partner.
    to: u32,
    /// Whether the feedback coin toss came up "lose interest".
    coin: bool,
}

/// The single-update push/feedback/coin rumor epidemic, restated over
/// bitsets and a [`LazyTable`] for the [`ActiveCycleEngine`]; see the
/// module docs for the contract and its semantic deviations from the
/// legacy runner.
///
/// S/I/R is encoded exactly as in the paper's protocols: susceptible =
/// no entry, infective = entry and hot, removed = entry but not hot.
#[derive(Debug, Clone)]
pub struct FastRumorProtocol<'a> {
    partners: Partners<'a>,
    k: u32,
    /// Sites that hold the update (I ∪ R).
    has_entry: BitSet,
    /// Sites actively spreading the update (I).
    hot: BitSet,
    /// Start-of-cycle snapshot of `hot`: the cycle's roster.
    hot0: BitSet,
    /// Materialized rows: `(site, value, receipt cycle)`, write order.
    table: LazyTable<u32>,
}

impl<'a> FastRumorProtocol<'a> {
    /// An epidemic over `n` uniformly mixing sites with coin loss rate
    /// `k`, seeded with the update at site 0 (cycle 0).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn uniform(n: usize, k: u32) -> FastRumorProtocol<'static> {
        assert!(n >= 2, "uniform mixing needs at least two sites");
        FastRumorProtocol::with_partners(Partners::Uniform { n }, n, k)
    }

    /// An epidemic over the sites of `graph` with coin loss rate `k`,
    /// partners drawn uniformly from the initiator's neighbors, seeded
    /// with the update at site 0.
    ///
    /// # Panics
    ///
    /// Panics if any site of `graph` has no neighbors (same contract as
    /// [`NeighborPartners::new`]).
    pub fn scale_free(graph: &'a DegreeGraph, k: u32) -> FastRumorProtocol<'a> {
        let n = graph.site_count();
        for i in 0..n {
            assert!(
                !graph.neighbors(i).is_empty(),
                "site {i} has no neighbors to gossip with"
            );
        }
        FastRumorProtocol::with_partners(Partners::Neighbors(graph), n, k)
    }

    fn with_partners(partners: Partners<'_>, n: usize, k: u32) -> FastRumorProtocol<'_> {
        let mut protocol = FastRumorProtocol {
            partners,
            k,
            has_entry: BitSet::new(n),
            hot: BitSet::new(n),
            hot0: BitSet::new(n),
            table: LazyTable::new(n),
        };
        protocol.has_entry.set(0, true);
        protocol.hot.set(0, true);
        protocol.table.push(0, 1, 0);
        protocol
    }

    /// The materialized site rows: who received the update, what they
    /// hold, and when — one row per infected site, in receipt order.
    pub fn table(&self) -> &LazyTable<u32> {
        &self.table
    }

    /// Summarizes a finished run, mirroring the legacy runner's
    /// [`EpidemicResult`] conventions field for field (residue and
    /// `t_ave`/`t_last` come from the table, traffic from the engine
    /// totals).
    pub fn result(&self, report: &EngineReport) -> EpidemicResult {
        let n = self.table.site_count();
        let received = self.table.len();
        let t_ave = if received == 0 {
            0.0
        } else {
            let total: u64 = self.table.cycles().iter().map(|&c| u64::from(c)).sum();
            total as f64 / received as f64
        };
        EpidemicResult {
            n,
            residue: (n - received) as f64 / n as f64,
            traffic: report.totals.sent as f64 / n as f64,
            t_ave,
            t_last: f64::from(self.table.cycles().iter().copied().max().unwrap_or(0)),
            cycles: report.cycles,
            complete: received == n,
        }
    }
}

impl SirView for FastRumorProtocol<'_> {
    fn sir_counts(&self) -> SirCounts {
        let holders = self.has_entry.count_ones();
        let infective = self.hot.count_ones();
        SirCounts {
            susceptible: self.has_entry.len() - holders,
            infective,
            removed: holders - infective,
        }
    }
}

impl ActiveSetProtocol for FastRumorProtocol<'_> {
    type Draw = FastDraw;

    fn site_count(&self) -> usize {
        self.has_entry.len()
    }

    fn begin_cycle(&mut self, _cycle: u32) {
        self.hot0.copy_from(&self.hot);
    }

    fn active(&self) -> &BitSet {
        &self.hot0
    }

    fn contact(&self, _cycle: u32, i: usize, rng: &mut ContactRng) -> FastDraw {
        let to = self.partners.draw(i, rng) as u32;
        // Same draw as `rumor::record_feedback` under `Coin { k }`;
        // sampled whether or not the push turns out fruitless.
        let coin = rng.random_bool(1.0 / f64::from(self.k.max(1)));
        FastDraw { to, coin }
    }

    fn apply(&mut self, cycle: u32, i: usize, draw: &FastDraw) -> (usize, ContactStats) {
        let j = draw.to as usize;
        let useful = !self.has_entry.get(j);
        if useful {
            self.has_entry.set(j, true);
            self.hot.set(j, true);
            self.table.push(draw.to, 1, cycle);
        } else if draw.coin {
            // Feedback: a fruitless push costs the initiator its coin.
            self.hot.set(i, false);
        }
        (
            j,
            ContactStats {
                sent: 1,
                useful: u64::from(useful),
            },
        )
    }
}

pub mod reference {
    //! The executable specification of the fast path: the same
    //! counter-RNG, ascending-order asynchronous protocol, run as a
    //! naive eager loop over real [`Replica`]s with none of the fast
    //! path's machinery — no active-set iteration, no lazy rows, no
    //! draw/apply split, no threads. The differential suites pin
    //! [`FastRumorProtocol`](super::FastRumorProtocol) against this
    //! module exactly: equal [`EpidemicResult`]s, and a materialized
    //! [`LazyTable`](epidemic_db::LazyTable) row exactly where this loop
    //! records a receipt.

    use super::{Backend, ContactRng, DegreeGraph, EpidemicResult, Replica, RngExt, SiteId, KEY};
    use crate::engine::protocols::ReceiveLog;

    /// A finished reference run: the summary plus the per-site receipt
    /// log the differential suites compare against the fast path's
    /// materialized table.
    #[derive(Debug, Clone)]
    pub struct ReferenceRun {
        /// Result under the legacy runner's conventions.
        pub result: EpidemicResult,
        /// First-receipt cycle per site (site 0 at cycle 0).
        pub received: ReceiveLog<u32>,
    }

    /// Reference run over `n` uniformly mixing sites; see the module
    /// docs.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_uniform(n: usize, k: u32, seed: u64, backend: Backend) -> ReferenceRun {
        run(n, k, seed, backend, |i, rng| {
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            j
        })
    }

    /// Reference run over the sites of `graph`; see the module docs.
    pub fn run_scale_free(
        graph: &DegreeGraph,
        k: u32,
        seed: u64,
        backend: Backend,
    ) -> ReferenceRun {
        run(graph.site_count(), k, seed, backend, |i, rng| {
            let neighbors = graph.neighbors(i);
            neighbors[rng.random_range(0..neighbors.len())] as usize
        })
    }

    fn run<F: Fn(usize, &mut ContactRng) -> usize>(
        n: usize,
        k: u32,
        seed: u64,
        backend: Backend,
        partner: F,
    ) -> ReferenceRun {
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| {
                Replica::with_backend(
                    SiteId::new(u32::try_from(i).expect("site count fits u32")),
                    backend,
                )
            })
            .collect();
        sites[0].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(0, 0);

        let mut hot0 = vec![false; n];
        let mut cycle = 0u32;
        let mut sent = 0u64;
        loop {
            for (flag, site) in hot0.iter_mut().zip(sites.iter()) {
                *flag = site.is_infective(&KEY);
            }
            if !hot0.contains(&true) || cycle >= 100_000 {
                break;
            }
            cycle += 1;
            for i in 0..n {
                if !hot0[i] {
                    continue;
                }
                // The counter-RNG contract: partner first, then the
                // feedback coin, both drawn unconditionally from the
                // contact's private (seed, cycle, i) stream.
                let mut rng = ContactRng::new(seed, u64::from(cycle), i as u64);
                let j = partner(i, &mut rng);
                let coin = rng.random_bool(1.0 / f64::from(k.max(1)));
                sent += 1;
                let entry = sites[i]
                    .db()
                    .entry(&KEY)
                    .cloned()
                    .expect("hot implies entry");
                // Asynchronous judgment: useful iff the partner lacks the
                // entry right now, mid-cycle receipts included.
                let useful = sites[j].db().entry(&KEY).is_none();
                sites[j].receive_rumor(KEY, entry);
                if useful {
                    received.mark(j, cycle);
                } else if coin {
                    sites[i].hot_mut().remove(&KEY);
                }
            }
        }

        let result = EpidemicResult {
            n,
            residue: received.residue(),
            traffic: sent as f64 / n as f64,
            t_ave: received.t_ave_received(),
            t_last: f64::from(received.t_last().unwrap_or(0)),
            cycles: cycle,
            complete: received.complete(),
        };
        ReferenceRun { result, received }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_produce_identical_results() {
        let sim = MegascaleSim::new();
        for seed in [1, 2] {
            let tree = sim.run_uniform(300, seed, Backend::BTree);
            let flat = sim.run_uniform(300, seed, Backend::Flat);
            assert_eq!(tree, flat, "uniform seed={seed}");
        }
        let graph = DegreeGraph::scale_free(300, 2, 7);
        let tree = sim.run_scale_free(&graph, 3, Backend::BTree);
        let flat = sim.run_scale_free(&graph, 3, Backend::Flat);
        assert_eq!(tree, flat, "scale-free");
    }

    #[test]
    fn epidemic_reaches_nearly_everyone() {
        let sim = MegascaleSim::new();
        let uniform = sim.run_uniform(500, 11, Backend::Flat);
        assert!(uniform.residue < 0.05, "residue {}", uniform.residue);
        assert!(uniform.cycles > 0 && uniform.t_last > 0.0);
        let graph = DegreeGraph::scale_free(500, 2, 11);
        let sf = sim.run_scale_free(&graph, 11, Backend::Flat);
        assert!(sf.residue < 0.20, "residue {}", sf.residue);
    }

    #[test]
    fn observed_run_matches_unobserved_and_aggregates() {
        use crate::engine::AggregateObserver;
        let sim = MegascaleSim::new();
        let plain = sim.run_uniform(300, 9, Backend::Flat);
        let mut obs = AggregateObserver::new();
        let observed = sim.run_uniform_observed(300, 9, Backend::Flat, &mut obs);
        assert_eq!(plain, observed, "observers must not perturb the run");
        let agg = obs.finish();
        assert_eq!(agg.sites(), 300);
        assert_eq!(agg.runs(), 1);
        assert!(
            agg.delay().count() >= 250,
            "nearly every site records a delay: {}",
            agg.delay().count()
        );
        assert!((agg.totals().sent as f64 / 300.0 - plain.traffic).abs() < 1e-12);
        assert_eq!(agg.max_cycle(), u64::from(plain.cycles));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let sim = MegascaleSim::new();
        let a = sim.run_uniform(200, 5, Backend::Flat);
        let b = sim.run_uniform(200, 5, Backend::Flat);
        assert_eq!(a, b);
        let c = sim.run_uniform(200, 6, Backend::Flat);
        assert_ne!(a, c, "different seeds explore different streams");
    }

    #[test]
    fn fast_path_matches_the_reference_spec_exactly() {
        let sim = MegascaleSim::new().workers(1);
        for seed in [1, 2, 3] {
            let fast = sim.run_uniform_fast(400, seed);
            let spec = reference::run_uniform(400, 4, seed, Backend::Flat);
            assert_eq!(fast, spec.result, "uniform seed={seed}");
        }
        let graph = DegreeGraph::scale_free(400, 2, 7);
        let fast = sim.run_scale_free_fast(&graph, 5);
        let spec = reference::run_scale_free(&graph, 4, 5, Backend::Flat);
        assert_eq!(fast, spec.result, "scale-free");
    }

    #[test]
    fn fast_path_is_worker_count_invariant() {
        let sim = MegascaleSim::new();
        let sequential = sim.workers(1).run_uniform_fast(500, 11);
        for workers in [2, 8] {
            let parallel = sim.workers(workers).run_uniform_fast(500, 11);
            assert_eq!(sequential, parallel, "workers={workers}");
        }
    }

    #[test]
    fn fast_epidemic_reaches_nearly_everyone() {
        let sim = MegascaleSim::new().workers(1);
        let uniform = sim.run_uniform_fast(500, 11);
        assert!(uniform.residue < 0.05, "residue {}", uniform.residue);
        assert!(uniform.cycles > 0 && uniform.t_last > 0.0);
        let graph = DegreeGraph::scale_free(500, 2, 11);
        let sf = sim.run_scale_free_fast(&graph, 11);
        assert!(sf.residue < 0.20, "residue {}", sf.residue);
    }

    #[test]
    fn observed_fast_run_matches_unobserved_and_aggregates() {
        use crate::engine::AggregateObserver;
        let sim = MegascaleSim::new().workers(1);
        let plain = sim.run_uniform_fast(300, 9);
        let mut obs = AggregateObserver::new();
        let observed = sim.run_uniform_fast_observed(300, 9, &mut obs);
        assert_eq!(plain, observed, "observers must not perturb the run");
        let agg = obs.finish();
        assert_eq!(agg.sites(), 300);
        assert_eq!(agg.runs(), 1);
        assert!(
            agg.delay().count() >= 250,
            "nearly every site records a delay: {}",
            agg.delay().count()
        );
        assert!((agg.totals().sent as f64 / 300.0 - plain.traffic).abs() < 1e-12);
        assert_eq!(agg.max_cycle(), u64::from(plain.cycles));
    }

    /// The fast path's synchronous judgment is a semantic deviation from
    /// the legacy asynchronous runner, so the two are compared
    /// statistically: over many seeds, mean residue/traffic/t_ave must
    /// agree within 5σ (the house methodology from the sharded-engine
    /// equivalence suite).
    #[test]
    fn fast_path_statistically_matches_the_legacy_runner() {
        fn mean_and_var(samples: &[f64]) -> (f64, f64) {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / (samples.len() - 1) as f64;
            (mean, var)
        }
        fn assert_means_agree(name: &str, a: &[f64], b: &[f64]) {
            let (mean_a, var_a) = mean_and_var(a);
            let (mean_b, var_b) = mean_and_var(b);
            let stderr = (var_a / a.len() as f64 + var_b / b.len() as f64).sqrt();
            let diff = (mean_a - mean_b).abs();
            assert!(
                diff <= 5.0 * stderr + 1e-9,
                "{name}: |{mean_a} - {mean_b}| = {diff} > 5σ = {}",
                5.0 * stderr
            );
        }

        let sim = MegascaleSim::new().workers(1);
        let n = 256;
        let trials = 60;
        let legacy: Vec<EpidemicResult> = (0..trials)
            .map(|s| sim.run_uniform(n, 1000 + s, Backend::Flat))
            .collect();
        let fast: Vec<EpidemicResult> = (0..trials)
            .map(|s| sim.run_uniform_fast(n, 1000 + s))
            .collect();
        for (name, get) in [
            ("residue", (|r| r.residue) as fn(&EpidemicResult) -> f64),
            ("traffic", |r| r.traffic),
            ("t_ave", |r| r.t_ave),
            ("t_last", |r| r.t_last),
        ] {
            let a: Vec<f64> = legacy.iter().map(get).collect();
            let b: Vec<f64> = fast.iter().map(get).collect();
            assert_means_agree(name, &a, &b);
        }
    }
}
